#include "scbr/value.hpp"

#include <bit>

namespace securecloud::scbr {

void Value::serialize_to(Bytes& out) const {
  put_u8(out, static_cast<std::uint8_t>(type_));
  switch (type_) {
    case Type::kInt:
      put_u64(out, static_cast<std::uint64_t>(int_));
      break;
    case Type::kDouble:
      put_u64(out, std::bit_cast<std::uint64_t>(double_));
      break;
    case Type::kString:
      put_str(out, string_);
      break;
  }
}

Result<Value> Value::deserialize(ByteReader& reader) {
  std::uint8_t type_byte = 0;
  if (!reader.get_u8(type_byte) || type_byte > 2) {
    return Error::protocol("bad value type");
  }
  Value v;
  v.type_ = static_cast<Type>(type_byte);
  switch (v.type_) {
    case Type::kInt: {
      std::uint64_t raw = 0;
      if (!reader.get_u64(raw)) return Error::protocol("truncated int value");
      v.int_ = static_cast<std::int64_t>(raw);
      break;
    }
    case Type::kDouble: {
      std::uint64_t raw = 0;
      if (!reader.get_u64(raw)) return Error::protocol("truncated double value");
      v.double_ = std::bit_cast<double>(raw);
      break;
    }
    case Type::kString: {
      if (!reader.get_str(v.string_)) return Error::protocol("truncated string value");
      break;
    }
  }
  return v;
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kEq: return "=";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
  }
  return "?";
}

bool Constraint::matches(const Value& v) const {
  if (!v.comparable(value)) return false;
  switch (op) {
    case Op::kEq: return v == value;
    case Op::kNe: return !(v == value);
    case Op::kLt: return v < value;
    case Op::kLe: return v < value || v == value;
    case Op::kGt: return value < v;
    case Op::kGe: return value < v || v == value;
  }
  return false;
}

void Constraint::serialize_to(Bytes& out) const {
  put_str(out, attribute);
  put_u8(out, static_cast<std::uint8_t>(op));
  value.serialize_to(out);
}

Result<Constraint> Constraint::deserialize(ByteReader& reader) {
  Constraint c;
  std::uint8_t op_byte = 0;
  if (!reader.get_str(c.attribute) || !reader.get_u8(op_byte) || op_byte > 5) {
    return Error::protocol("truncated constraint");
  }
  c.op = static_cast<Op>(op_byte);
  auto v = Value::deserialize(reader);
  if (!v.ok()) return v.error();
  c.value = std::move(v).value();
  return c;
}

}  // namespace securecloud::scbr
