// Typed attribute values and constraint operators for content-based
// routing.
//
// Publications are sets of (attribute, value) pairs; subscriptions are
// conjunctions of (attribute, operator, value) constraints — the model of
// Siena-style CBR engines that SCBR builds on.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace securecloud::scbr {

class Value {
 public:
  enum class Type : std::uint8_t { kInt = 0, kDouble = 1, kString = 2 };

  Value() = default;
  static Value of(std::int64_t v) {
    Value x;
    x.type_ = Type::kInt;
    x.int_ = v;
    return x;
  }
  static Value of(double v) {
    Value x;
    x.type_ = Type::kDouble;
    x.double_ = v;
    return x;
  }
  static Value of(std::string v) {
    Value x;
    x.type_ = Type::kString;
    x.string_ = std::move(v);
    return x;
  }

  Type type() const { return type_; }
  std::int64_t as_int() const { return int_; }
  double as_double() const { return double_; }
  const std::string& as_string() const { return string_; }

  /// Numeric view: ints and doubles compare across types.
  bool is_numeric() const { return type_ != Type::kString; }
  double numeric() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }

  bool operator==(const Value& other) const {
    if (is_numeric() && other.is_numeric()) return numeric() == other.numeric();
    if (type_ != other.type_) return false;
    return string_ == other.string_;
  }
  /// Ordering defined for numeric pairs and same-type strings; callers
  /// guard with comparable().
  bool comparable(const Value& other) const {
    return (is_numeric() && other.is_numeric()) ||
           (type_ == Type::kString && other.type_ == Type::kString);
  }
  bool operator<(const Value& other) const {
    if (is_numeric() && other.is_numeric()) return numeric() < other.numeric();
    return string_ < other.string_;
  }

  void serialize_to(Bytes& out) const;
  static Result<Value> deserialize(ByteReader& reader);

 private:
  Type type_ = Type::kInt;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
};

enum class Op : std::uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

const char* to_string(Op op);

/// One constraint: attribute OP value.
struct Constraint {
  std::string attribute;
  Op op = Op::kEq;
  Value value;

  /// Whether an event value satisfies this constraint.
  bool matches(const Value& v) const;

  void serialize_to(Bytes& out) const;
  static Result<Constraint> deserialize(ByteReader& reader);
};

}  // namespace securecloud::scbr
