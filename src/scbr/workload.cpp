#include "scbr/workload.hpp"

#include <algorithm>

namespace securecloud::scbr {

Filter ScbrWorkload::fresh_filter() {
  Filter f;
  // Pick distinct attributes.
  std::vector<std::size_t> attrs(config_.attribute_universe);
  for (std::size_t i = 0; i < attrs.size(); ++i) attrs[i] = i;
  rng_.shuffle(attrs.begin(), attrs.end());
  const std::size_t n = std::min(config_.attributes_per_filter, attrs.size());

  for (std::size_t i = 0; i < n; ++i) {
    const auto width = static_cast<std::int64_t>(
        std::max(1.0, config_.width_fraction * static_cast<double>(config_.value_range)));
    const std::int64_t lo =
        rng_.uniform_in(0, std::max<std::int64_t>(0, config_.value_range - width));
    const std::int64_t hi = std::min<std::int64_t>(config_.value_range, lo + width);
    f.where(attribute_name(attrs[i]), Op::kGe, Value::of(lo));
    f.where(attribute_name(attrs[i]), Op::kLe, Value::of(hi));
  }
  return f;
}

Filter ScbrWorkload::narrowed_filter(const Filter& parent) {
  // Shrink each range constraint of the parent: the child is covered by
  // construction (child interval ⊆ parent interval).
  Filter f;
  for (const auto& c : parent.constraints()) {
    if (c.op == Op::kGe) {
      const std::int64_t lo = c.value.as_int();
      f.where(c.attribute, Op::kGe, Value::of(lo + rng_.uniform_in(0, 8)));
    } else if (c.op == Op::kLe) {
      const std::int64_t hi = c.value.as_int();
      f.where(c.attribute, Op::kLe, Value::of(std::max<std::int64_t>(0, hi - rng_.uniform_in(0, 8))));
    } else {
      f.where(c.attribute, c.op, c.value);
    }
  }
  return f;
}

Filter ScbrWorkload::next_filter() {
  Filter f;
  if (!recent_.empty() && rng_.chance(config_.hierarchy_fraction)) {
    const std::size_t pick = static_cast<std::size_t>(rng_.uniform(recent_.size()));
    f = narrowed_filter(recent_[pick]);
  } else {
    f = fresh_filter();
  }
  recent_.push_back(f);
  if (recent_.size() > config_.parent_pool) recent_.pop_front();
  return f;
}

Event ScbrWorkload::next_event() {
  Event e;
  for (std::size_t i = 0; i < config_.attribute_universe; ++i) {
    e.set(attribute_name(i), rng_.uniform_in(0, config_.value_range));
  }
  return e;
}

}  // namespace securecloud::scbr
