// Workload generator for CBR benchmarks (subscriptions + publications).
//
// Mirrors the synthetic workloads used to evaluate SCBR: range filters
// over a numeric attribute universe. A configurable fraction of
// subscriptions is derived by *narrowing* an existing one, producing the
// containment relations the poset engine exploits; the rest are
// independent, bounding how much pruning is possible.
#pragma once

#include <deque>

#include "common/rng.hpp"
#include "scbr/filter.hpp"

namespace securecloud::scbr {

struct WorkloadConfig {
  std::size_t attribute_universe = 16;      // attributes attr0..attrN-1
  std::size_t attributes_per_filter = 3;    // range constraints per filter
  std::int64_t value_range = 10'000;        // values in [0, value_range)
  double width_fraction = 0.3;              // range width as fraction of domain
  double hierarchy_fraction = 0.5;          // P(narrow an existing filter)
  std::size_t parent_pool = 4'096;          // candidates for narrowing
};

class ScbrWorkload {
 public:
  explicit ScbrWorkload(WorkloadConfig config, std::uint64_t seed = 1)
      : config_(config), rng_(seed) {}

  /// Generates the next subscription filter.
  Filter next_filter();

  /// Generates a publication with a value for every attribute.
  Event next_event();

  const WorkloadConfig& config() const { return config_; }

 private:
  std::string attribute_name(std::size_t i) const { return "attr" + std::to_string(i); }
  Filter fresh_filter();
  Filter narrowed_filter(const Filter& parent);

  WorkloadConfig config_;
  Rng rng_;
  std::deque<Filter> recent_;  // parent pool for hierarchical narrowing
};

}  // namespace securecloud::scbr
