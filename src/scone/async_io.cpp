#include "scone/async_io.hpp"

namespace securecloud::scone {

void AsyncIoRuntime::spawn_io(SyscallRequest request, Continuation next) {
  auto state = std::make_shared<IoState>();
  scheduler_.spawn([this, state, request = std::move(request),
                    next = std::move(next)]() mutable -> StepResult {
    // Phase 1: submit (the ring may be full; retry on later rounds).
    if (!state->submitted) {
      if (auto id = syscalls_.submit(request)) {
        state->id = *id;
        state->submitted = true;
      } else {
        return StepResult::kBlocked;
      }
    }

    // Phase 2: drain completions into the shared map, then check ours.
    // (Any task may drain; completions for other tasks are parked.)
    while (auto response = syscalls_.poll()) {
      completions_[response->id] = std::move(*response);
    }
    auto it = completions_.find(state->id);
    if (it == completions_.end()) return StepResult::kBlocked;

    next(it->second);
    completions_.erase(it);
    ++completed_;
    return StepResult::kDone;
  });
}

}  // namespace securecloud::scone
