// Cooperative async I/O: SCONE's two performance mechanisms composed.
//
// "SCONE ... provides acceptable performance by implementing tailored
//  threading and an asynchronous system call interface" (§IV). The
// composition is the point: an application thread that would block on a
// syscall instead *yields inside the enclave* (no AEX, no kernel
// switch), the untrusted worker services the call concurrently, and the
// in-enclave scheduler resumes the thread when its completion arrives.
// Compute-bound tasks keep running in the gaps.
#pragma once

#include <map>
#include <memory>

#include "scone/syscall.hpp"
#include "scone/uthread.hpp"

namespace securecloud::scone {

class AsyncIoRuntime {
 public:
  using Continuation = std::function<void(const SyscallResponse&)>;

  AsyncIoRuntime(UserScheduler& scheduler, AsyncSyscalls& syscalls)
      : scheduler_(scheduler), syscalls_(syscalls) {}

  /// Spawns a user-level task that issues `request` asynchronously and
  /// runs `next` with the (shielded) response once it completes. The
  /// task blocks cooperatively — other tasks run meanwhile.
  void spawn_io(SyscallRequest request, Continuation next);

  /// Spawns an ordinary compute task alongside the I/O tasks.
  void spawn_compute(UserScheduler::Task task) { scheduler_.spawn(std::move(task)); }

  /// Runs until every task (I/O and compute) has finished.
  std::uint64_t run() { return scheduler_.run(); }

  std::size_t completed_io() const { return completed_; }

 private:
  struct IoState {
    bool submitted = false;
    std::uint64_t id = 0;
  };

  UserScheduler& scheduler_;
  AsyncSyscalls& syscalls_;
  /// Completions polled from the ring but not yet claimed by their task.
  std::map<std::uint64_t, SyscallResponse> completions_;
  std::size_t completed_ = 0;
};

}  // namespace securecloud::scone
