#include "scone/file_handle.hpp"

namespace securecloud::scone {

Result<int> ShieldedFileTable::open(const std::string& path, std::uint32_t flags) {
  if ((flags & (kRead | kWrite)) == 0) {
    return Error::invalid_argument("open needs kRead and/or kWrite");
  }
  const bool exists = fs_.exists(path);
  if (!exists) {
    if ((flags & kCreate) == 0) return Error::not_found("no such file: " + path);
    SC_RETURN_IF_ERROR(fs_.create(path));
  } else if (flags & kTruncate) {
    if ((flags & kWrite) == 0) return Error::invalid_argument("kTruncate needs kWrite");
    SC_RETURN_IF_ERROR(fs_.write_all(path, {}));
  }

  const int fd = next_fd_++;
  table_[fd] = Handle{path, flags, 0};
  return fd;
}

Result<Bytes> ShieldedFileTable::read(int fd, std::size_t n) {
  auto it = table_.find(fd);
  if (it == table_.end()) return Error::invalid_argument("bad file descriptor");
  Handle& handle = it->second;
  if ((handle.flags & kRead) == 0) return Error::permission_denied("not open for reading");

  auto size = fs_.size_of(handle.path);
  if (!size.ok()) return size.error();
  if (handle.position >= *size) return Bytes{};  // EOF

  auto data = fs_.read(handle.path, handle.position, n);
  if (!data.ok()) return data.error();
  handle.position += data->size();
  return std::move(data).value();
}

Result<std::size_t> ShieldedFileTable::write(int fd, ByteView data) {
  auto it = table_.find(fd);
  if (it == table_.end()) return Error::invalid_argument("bad file descriptor");
  Handle& handle = it->second;
  if ((handle.flags & kWrite) == 0) return Error::permission_denied("not open for writing");

  std::uint64_t at = handle.position;
  if (handle.flags & kAppend) {
    auto size = fs_.size_of(handle.path);
    if (!size.ok()) return size.error();
    at = *size;
  }
  SC_RETURN_IF_ERROR(fs_.write(handle.path, at, data));
  handle.position = at + data.size();
  return data.size();
}

Result<std::uint64_t> ShieldedFileTable::seek(int fd, std::int64_t offset, Whence whence) {
  auto it = table_.find(fd);
  if (it == table_.end()) return Error::invalid_argument("bad file descriptor");
  Handle& handle = it->second;

  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCurrent:
      base = static_cast<std::int64_t>(handle.position);
      break;
    case Whence::kEnd: {
      auto size = fs_.size_of(handle.path);
      if (!size.ok()) return size.error();
      base = static_cast<std::int64_t>(*size);
      break;
    }
  }
  const std::int64_t target = base + offset;
  if (target < 0) return Error::invalid_argument("seek before start of file");
  handle.position = static_cast<std::uint64_t>(target);
  return handle.position;
}

Result<std::uint64_t> ShieldedFileTable::tell(int fd) const {
  auto it = table_.find(fd);
  if (it == table_.end()) return Error::invalid_argument("bad file descriptor");
  return it->second.position;
}

Status ShieldedFileTable::close(int fd) {
  if (table_.erase(fd) == 0) return Error::invalid_argument("bad file descriptor");
  return {};
}

}  // namespace securecloud::scone
