// POSIX-style file handles over the shielded file system.
//
// SCONE shields applications written against the libc file API; this
// layer provides the corresponding open/read/write/seek/close semantics
// (with positions, append mode, O_CREAT/O_TRUNC behaviour) on top of
// ShieldedFileSystem, so ported application code keeps its shape. All
// I/O inherits the chunk-level encrypt/verify guarantees.
#pragma once

#include <map>

#include "scone/fs_protection.hpp"

namespace securecloud::scone {

enum OpenFlags : std::uint32_t {
  kRead = 1 << 0,
  kWrite = 1 << 1,
  kCreate = 1 << 2,    // create if missing
  kTruncate = 1 << 3,  // clear on open
  kAppend = 1 << 4,    // writes go to EOF
};

enum class Whence { kSet, kCurrent, kEnd };

class ShieldedFileTable {
 public:
  explicit ShieldedFileTable(ShieldedFileSystem& fs) : fs_(fs) {}

  /// Opens `path`; returns a descriptor. kNotFound unless kCreate.
  Result<int> open(const std::string& path, std::uint32_t flags);

  /// Reads up to `n` bytes from the current position (may return fewer
  /// at EOF; empty at exact EOF). Requires kRead.
  Result<Bytes> read(int fd, std::size_t n);

  /// Writes at the current position (or EOF under kAppend); returns the
  /// number of bytes written. Requires kWrite.
  Result<std::size_t> write(int fd, ByteView data);

  /// Repositions; returns the new absolute offset. Seeking past EOF is
  /// allowed (subsequent writes create a zero-filled hole).
  Result<std::uint64_t> seek(int fd, std::int64_t offset, Whence whence);

  /// Current position.
  Result<std::uint64_t> tell(int fd) const;

  Status close(int fd);

  std::size_t open_files() const { return table_.size(); }

 private:
  struct Handle {
    std::string path;
    std::uint32_t flags = 0;
    std::uint64_t position = 0;
  };

  ShieldedFileSystem& fs_;
  std::map<int, Handle> table_;
  int next_fd_ = 3;  // 0-2 reserved, as tradition demands
};

}  // namespace securecloud::scone
