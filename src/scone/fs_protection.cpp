#include "scone/fs_protection.hpp"

namespace securecloud::scone {

namespace {

/// Nonce for (file, chunk, version): the version is globally fresh per
/// chunk write, and the chunk index separates positions, so nonces never
/// repeat under one file key.
crypto::GcmNonce chunk_nonce(std::uint64_t chunk_index, std::uint64_t version) {
  return crypto::nonce_from_counter(version, static_cast<std::uint32_t>(chunk_index));
}

Bytes chunk_aad(const std::string& path, std::uint64_t chunk_index,
                std::uint64_t version) {
  Bytes aad;
  put_str(aad, path);
  put_u64(aad, chunk_index);
  put_u64(aad, version);
  return aad;
}

std::string chunk_path(const std::string& path, std::size_t chunk_index) {
  return path + ".chunk." + std::to_string(chunk_index);
}

}  // namespace

Bytes FsProtection::serialize() const {
  Bytes b;
  put_str(b, "SCFSPF1");
  put_u32(b, static_cast<std::uint32_t>(files.size()));
  for (const auto& [path, fp] : files) {
    put_str(b, path);
    put_u64(b, fp.file_size);
    put_u32(b, fp.chunk_size);
    put_blob(b, fp.file_key);
    put_u32(b, static_cast<std::uint32_t>(fp.chunk_versions.size()));
    for (std::size_t i = 0; i < fp.chunk_versions.size(); ++i) {
      put_u64(b, fp.chunk_versions[i]);
      append(b, fp.chunk_tags[i]);
    }
  }
  return b;
}

Result<FsProtection> FsProtection::deserialize(ByteView wire) {
  ByteReader r(wire);
  std::string magic;
  if (!r.get_str(magic) || magic != "SCFSPF1") {
    return Error::protocol("bad FSPF magic");
  }
  std::uint32_t file_count = 0;
  if (!r.get_u32(file_count)) return Error::protocol("truncated FSPF");

  FsProtection out;
  for (std::uint32_t f = 0; f < file_count; ++f) {
    std::string path;
    FileProtection fp;
    std::uint32_t chunks = 0;
    if (!r.get_str(path) || !r.get_u64(fp.file_size) || !r.get_u32(fp.chunk_size) ||
        !r.get_blob(fp.file_key) || !r.get_u32(chunks)) {
      return Error::protocol("truncated FSPF entry");
    }
    if (fp.chunk_size == 0) return Error::protocol("zero chunk size");
    fp.chunk_versions.reserve(chunks);
    fp.chunk_tags.reserve(chunks);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      std::uint64_t version = 0;
      if (!r.get_u64(version)) return Error::protocol("truncated FSPF chunk");
      crypto::GcmTag tag;
      for (auto& byte : tag) {
        if (!r.get_u8(byte)) return Error::protocol("truncated FSPF tag");
      }
      fp.chunk_versions.push_back(version);
      fp.chunk_tags.push_back(tag);
    }
    out.files.emplace(std::move(path), std::move(fp));
  }
  if (!r.done()) return Error::protocol("trailing FSPF bytes");
  return out;
}

Status FsProtectionBuilder::protect_file(const std::string& path, ByteView plaintext) {
  if (protection_.files.count(path)) {
    return Error::invalid_argument("file already protected: " + path);
  }
  FileProtection fp;
  fp.file_size = plaintext.size();
  fp.chunk_size = chunk_size_;
  fp.file_key = entropy_.bytes(16);
  crypto::AesGcm gcm(fp.file_key);

  const std::size_t chunks = (plaintext.size() + chunk_size_ - 1) / chunk_size_;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t off = c * chunk_size_;
    const std::size_t take = std::min<std::size_t>(chunk_size_, plaintext.size() - off);
    const std::uint64_t version = 1;
    crypto::GcmTag tag;
    const Bytes ct = gcm.seal(chunk_nonce(c, version), chunk_aad(path, c, version),
                              plaintext.subspan(off, take), tag);
    SC_RETURN_IF_ERROR(fs_.write_file(chunk_path(path, c), ct));
    fp.chunk_versions.push_back(version);
    fp.chunk_tags.push_back(tag);
  }
  protection_.files.emplace(path, std::move(fp));
  return {};
}

Result<Bytes> ShieldedFileSystem::read_chunk(const std::string& path,
                                             const FileProtection& fp,
                                             std::size_t chunk_index) const {
  auto ct = fs_.read_file(chunk_path(path, chunk_index));
  if (!ct.ok()) {
    return Error::integrity("protected chunk missing from host FS: " + path);
  }
  crypto::AesGcm gcm(fp.file_key);
  const std::uint64_t version = fp.chunk_versions[chunk_index];
  auto plain = gcm.open(chunk_nonce(chunk_index, version),
                        chunk_aad(path, chunk_index, version), *ct,
                        fp.chunk_tags[chunk_index]);
  if (!plain.ok()) {
    return Error::integrity("chunk failed authentication (tampering or rollback): " +
                            path + "#" + std::to_string(chunk_index));
  }
  return std::move(plain).value();
}

Status ShieldedFileSystem::write_chunk(const std::string& path, FileProtection& fp,
                                       std::size_t chunk_index, ByteView chunk_plain) {
  crypto::AesGcm gcm(fp.file_key);
  // Fresh version per write: nonce uniqueness + rollback detection (the
  // expected version lives in the FSPF, which the enclave holds).
  const std::uint64_t version = fp.chunk_versions[chunk_index] + 1;
  crypto::GcmTag tag;
  const Bytes ct = gcm.seal(chunk_nonce(chunk_index, version),
                            chunk_aad(path, chunk_index, version), chunk_plain, tag);
  SC_RETURN_IF_ERROR(fs_.write_file(chunk_path(path, chunk_index), ct));
  fp.chunk_versions[chunk_index] = version;
  fp.chunk_tags[chunk_index] = tag;
  return {};
}

Result<Bytes> ShieldedFileSystem::read(const std::string& path, std::uint64_t offset,
                                       std::size_t length) const {
  auto it = protection_.files.find(path);
  if (it == protection_.files.end()) return Error::not_found("no such protected file: " + path);
  const FileProtection& fp = it->second;

  if (offset > fp.file_size) return Error::invalid_argument("read past EOF");
  length = std::min<std::size_t>(length, fp.file_size - offset);

  Bytes out;
  out.reserve(length);
  std::uint64_t pos = offset;
  while (out.size() < length) {
    const std::size_t chunk_index = pos / fp.chunk_size;
    const std::size_t within = pos % fp.chunk_size;
    auto chunk = read_chunk(path, fp, chunk_index);
    if (!chunk.ok()) return chunk.error();
    // A chunk may be stored shorter than its logical extent when a later
    // write grew the file past it (sparse region): the gap reads as zeros.
    const std::size_t take =
        std::min<std::size_t>(fp.chunk_size - within, length - out.size());
    if (chunk->size() < within + take) chunk->resize(within + take, 0);
    out.insert(out.end(), chunk->begin() + static_cast<std::ptrdiff_t>(within),
               chunk->begin() + static_cast<std::ptrdiff_t>(within + take));
    pos += take;
  }
  return out;
}

Result<Bytes> ShieldedFileSystem::read_all(const std::string& path) const {
  auto it = protection_.files.find(path);
  if (it == protection_.files.end()) return Error::not_found("no such protected file: " + path);
  return read(path, 0, it->second.file_size);
}

Status ShieldedFileSystem::write(const std::string& path, std::uint64_t offset,
                                 ByteView data) {
  auto it = protection_.files.find(path);
  if (it == protection_.files.end()) return Error::not_found("no such protected file: " + path);
  FileProtection& fp = it->second;

  const std::uint64_t end = offset + data.size();
  const std::size_t needed_chunks =
      end == 0 ? 0 : static_cast<std::size_t>((end + fp.chunk_size - 1) / fp.chunk_size);

  // Grow the file with zero-filled chunks if writing past EOF.
  while (fp.chunk_count() < needed_chunks) {
    fp.chunk_versions.push_back(0);
    fp.chunk_tags.push_back({});
    const std::size_t new_index = fp.chunk_count() - 1;
    SC_RETURN_IF_ERROR(write_chunk(path, fp, new_index, Bytes{}));
  }

  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::size_t chunk_index = static_cast<std::size_t>(pos / fp.chunk_size);
    const std::size_t within = static_cast<std::size_t>(pos % fp.chunk_size);
    const std::size_t take =
        std::min<std::size_t>(fp.chunk_size - within, data.size() - consumed);

    // Read-modify-write the chunk (unless fully overwritten).
    Bytes chunk_plain;
    if (within == 0 && take == fp.chunk_size) {
      chunk_plain.assign(data.begin() + static_cast<std::ptrdiff_t>(consumed),
                         data.begin() + static_cast<std::ptrdiff_t>(consumed + take));
    } else {
      auto existing = read_chunk(path, fp, chunk_index);
      if (!existing.ok()) return existing.error();
      chunk_plain = std::move(existing).value();
      // The stored chunk may physically extend past the logical EOF
      // (a previous truncation kept the chunk but shrank file_size);
      // those stale bytes are not file content and must not leak back.
      const std::uint64_t chunk_start =
          static_cast<std::uint64_t>(chunk_index) * fp.chunk_size;
      const std::uint64_t logical_in_chunk =
          fp.file_size > chunk_start
              ? std::min<std::uint64_t>(fp.file_size - chunk_start, fp.chunk_size)
              : 0;
      if (chunk_plain.size() > logical_in_chunk) chunk_plain.resize(logical_in_chunk);
      if (chunk_plain.size() < within + take) chunk_plain.resize(within + take, 0);
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(consumed),
                data.begin() + static_cast<std::ptrdiff_t>(consumed + take),
                chunk_plain.begin() + static_cast<std::ptrdiff_t>(within));
    }
    SC_RETURN_IF_ERROR(write_chunk(path, fp, chunk_index, chunk_plain));
    pos += take;
    consumed += take;
  }

  fp.file_size = std::max<std::uint64_t>(fp.file_size, end);
  return {};
}

Status ShieldedFileSystem::write_all(const std::string& path, ByteView data) {
  auto it = protection_.files.find(path);
  if (it == protection_.files.end()) return Error::not_found("no such protected file: " + path);
  FileProtection& fp = it->second;

  // Truncate: drop surplus chunks from both metadata and host FS.
  const std::size_t new_chunks =
      data.empty() ? 0 : (data.size() + fp.chunk_size - 1) / fp.chunk_size;
  for (std::size_t c = new_chunks; c < fp.chunk_count(); ++c) {
    (void)fs_.remove(chunk_path(path, c));
  }
  // Shrink only: growth is handled (with host-FS backing) by write().
  const std::size_t keep = std::min(new_chunks, fp.chunk_count());
  fp.chunk_versions.resize(keep);
  fp.chunk_tags.resize(keep);
  fp.file_size = 0;
  if (data.empty()) return {};
  return write(path, 0, data);
}

Status ShieldedFileSystem::create(const std::string& path, std::uint32_t chunk_size) {
  if (protection_.files.count(path)) {
    return Error::invalid_argument("protected file exists: " + path);
  }
  if (chunk_size == 0) return Error::invalid_argument("zero chunk size");
  FileProtection fp;
  fp.chunk_size = chunk_size;
  fp.file_key = entropy_.bytes(16);
  protection_.files.emplace(path, std::move(fp));
  return {};
}

Status ShieldedFileSystem::remove(const std::string& path) {
  auto it = protection_.files.find(path);
  if (it == protection_.files.end()) return Error::not_found("no such protected file: " + path);
  for (std::size_t c = 0; c < it->second.chunk_count(); ++c) {
    (void)fs_.remove(chunk_path(path, c));
  }
  protection_.files.erase(it);
  return {};
}

Result<std::uint64_t> ShieldedFileSystem::size_of(const std::string& path) const {
  auto it = protection_.files.find(path);
  if (it == protection_.files.end()) return Error::not_found("no such protected file: " + path);
  return it->second.file_size;
}

std::vector<std::string> ShieldedFileSystem::list() const {
  std::vector<std::string> out;
  out.reserve(protection_.files.size());
  for (const auto& [path, _] : protection_.files) out.push_back(path);
  return out;
}

Bytes seal_protection_file(const FsProtection& protection, ByteView key,
                           crypto::EntropySource& entropy) {
  crypto::AesGcm gcm(key);
  crypto::GcmNonce nonce;
  entropy.fill(MutableByteView(nonce.data(), nonce.size()));
  Bytes out;
  put_str(out, "SCFSPF-ENC1");
  append(out, gcm.seal_combined(nonce, to_bytes("fspf"), protection.serialize()));
  return out;
}

Result<FsProtection> open_protection_file(ByteView sealed, ByteView key) {
  ByteReader r(sealed);
  std::string magic;
  if (!r.get_str(magic) || magic != "SCFSPF-ENC1") {
    return Error::protocol("not an encrypted FSPF");
  }
  Bytes rest(sealed.begin() + static_cast<std::ptrdiff_t>(sealed.size() - r.remaining()),
             sealed.end());
  crypto::AesGcm gcm(key);
  auto plain = gcm.open_combined(to_bytes("fspf"), rest);
  if (!plain.ok()) {
    return Error::integrity("FSPF decryption failed (wrong key or tampering)");
  }
  return FsProtection::deserialize(*plain);
}

Bytes sign_protection_file(const FsProtection& protection,
                           const crypto::Ed25519KeyPair& signer) {
  const Bytes payload = protection.serialize();
  const auto sig = crypto::ed25519_sign(signer, payload);
  Bytes out;
  put_str(out, "SCFSPF-SIG1");
  put_blob(out, payload);
  append(out, sig);
  return out;
}

Result<FsProtection> verify_protection_file(ByteView signed_blob,
                                            const crypto::Ed25519PublicKey& signer) {
  ByteReader r(signed_blob);
  std::string magic;
  Bytes payload;
  if (!r.get_str(magic) || magic != "SCFSPF-SIG1" || !r.get_blob(payload)) {
    return Error::protocol("not a signed FSPF");
  }
  crypto::Ed25519Signature sig;
  if (r.remaining() != sig.size()) return Error::protocol("bad FSPF signature length");
  for (auto& b : sig) {
    if (!r.get_u8(b)) return Error::protocol("truncated FSPF signature");
  }
  if (!crypto::ed25519_verify(signer, payload, sig)) {
    return Error::integrity("FSPF signature verification failed");
  }
  return FsProtection::deserialize(payload);
}

}  // namespace securecloud::scone
