// SCONE file-system protection (§V-A).
//
// An image creator, in a trusted environment, encrypts the files that
// must be protected with per-file keys, chunk by chunk, and records the
// per-chunk authentication tags plus the keys in an *FS protection file*
// (FSPF). The FSPF itself is then either
//   * encrypted under a protection key (confidential images), or
//   * signed by the image creator (integrity-only images that end users
//     may still customize, per the paper).
// At runtime the enclave receives the FSPF key/hash via the startup
// configuration file (SCF) and mounts a ShieldedFileSystem that
// transparently decrypts/verifies on read and encrypts/re-MACs on write.
// All bytes that reach the untrusted host FS are ciphertext.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/entropy.hpp"
#include "crypto/gcm.hpp"
#include "crypto/sha256.hpp"
#include "scone/untrusted_fs.hpp"

namespace securecloud::scone {

/// Protection metadata for one file.
struct FileProtection {
  std::uint64_t file_size = 0;
  std::uint32_t chunk_size = 4096;
  Bytes file_key;  // 16-byte AES key, unique per file
  /// Per-chunk monotonically increasing versions; bumped on every write
  /// so (key, nonce) pairs never repeat and stale chunks are rejected.
  std::vector<std::uint64_t> chunk_versions;
  std::vector<crypto::GcmTag> chunk_tags;

  std::size_t chunk_count() const {
    return chunk_versions.size();
  }
};

/// The FS protection file: all protected files' metadata.
struct FsProtection {
  std::map<std::string, FileProtection> files;

  Bytes serialize() const;
  static Result<FsProtection> deserialize(ByteView wire);
};

/// Trusted-environment builder: encrypts `plaintext` as `path` into the
/// untrusted FS and records its protection entry. (SCONE client, image
/// build time.)
class FsProtectionBuilder {
 public:
  FsProtectionBuilder(UntrustedFileSystem& fs, crypto::EntropySource& entropy,
                      std::uint32_t chunk_size = 4096)
      : fs_(fs), entropy_(entropy), chunk_size_(chunk_size) {}

  Status protect_file(const std::string& path, ByteView plaintext);

  FsProtection take() && { return std::move(protection_); }
  const FsProtection& protection() const { return protection_; }

 private:
  UntrustedFileSystem& fs_;
  crypto::EntropySource& entropy_;
  std::uint32_t chunk_size_;
  FsProtection protection_;
};

/// Enclave-side shielded file system over the untrusted host FS.
///
/// Random-access reads and writes at any offset; chunk-granular
/// encrypt/verify. Tampered or rolled-back chunks surface as
/// kIntegrityViolation, never as silent corruption.
class ShieldedFileSystem {
 public:
  ShieldedFileSystem(UntrustedFileSystem& fs, FsProtection protection,
                     crypto::EntropySource& entropy)
      : fs_(fs), protection_(std::move(protection)), entropy_(entropy) {}

  Result<Bytes> read(const std::string& path, std::uint64_t offset,
                     std::size_t length) const;
  Result<Bytes> read_all(const std::string& path) const;

  Status write(const std::string& path, std::uint64_t offset, ByteView data);
  Status write_all(const std::string& path, ByteView data);

  /// Creates a new empty protected file (runtime-created state).
  Status create(const std::string& path, std::uint32_t chunk_size = 4096);
  Status remove(const std::string& path);

  bool exists(const std::string& path) const { return protection_.files.count(path) > 0; }
  Result<std::uint64_t> size_of(const std::string& path) const;
  std::vector<std::string> list() const;

  /// The (mutated) protection state — persisted by the runtime on
  /// shutdown so writes survive restarts.
  const FsProtection& protection() const { return protection_; }

 private:
  Result<Bytes> read_chunk(const std::string& path, const FileProtection& fp,
                           std::size_t chunk_index) const;
  Status write_chunk(const std::string& path, FileProtection& fp,
                     std::size_t chunk_index, ByteView chunk_plain);

  UntrustedFileSystem& fs_;
  FsProtection protection_;
  crypto::EntropySource& entropy_;
};

// ---- FSPF packaging (§V-A: encrypt for confidentiality, or sign only so
// ---- end users can customize the image) -----------------------------------

/// Encrypts a serialized FSPF under `key` (32 bytes recommended).
Bytes seal_protection_file(const FsProtection& protection, ByteView key,
                           crypto::EntropySource& entropy);
Result<FsProtection> open_protection_file(ByteView sealed, ByteView key);

/// Signs a serialized FSPF (integrity without confidentiality).
Bytes sign_protection_file(const FsProtection& protection,
                           const crypto::Ed25519KeyPair& signer);
Result<FsProtection> verify_protection_file(ByteView signed_blob,
                                            const crypto::Ed25519PublicKey& signer);

}  // namespace securecloud::scone
