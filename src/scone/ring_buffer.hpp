// Lock-free single-producer/single-consumer ring buffer.
//
// The data path of SCONE's asynchronous system-call interface: the
// enclave-side thread produces syscall requests into one ring and
// consumes responses from another, while an untrusted worker thread does
// the reverse — no enclave transition on either side.
//
// The implementation now lives in common/lockfree (one SPSC ring for
// the whole repo — the MPSC fabric ingress builds on the same type);
// this header keeps the historical securecloud::scone::SpscRing name.
#pragma once

#include "common/lockfree/spsc_ring.hpp"

namespace securecloud::scone {

template <typename T>
using SpscRing = lockfree::SpscRing<T>;

}  // namespace securecloud::scone
