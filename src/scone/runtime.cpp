#include "scone/runtime.hpp"

#include "common/log.hpp"
#include "sgx/platform.hpp"

namespace securecloud::scone {

Result<RunOutcome> SconeRuntime::run(sgx::Enclave& enclave,
                                     UntrustedFileSystem& host_fs,
                                     ConfigurationService& config_service,
                                     const Application& app,
                                     const std::vector<Bytes>& stdin_records) {
  // 1. Attested SCF fetch. The enclave's platform entropy seeds the
  //    channel keys (inside the enclave, invisible to the host).
  auto scf = fetch_scf(enclave, config_service, enclave.platform().entropy());
  if (!scf.ok()) return scf.error();
  log_info("scone", "SCF received for enclave '" + enclave.name() + "'");

  // 2. Load + authenticate the FS protection file.
  auto fspf_raw = host_fs.read_file(kFspfPath);
  if (!fspf_raw.ok()) {
    return Error::integrity("FSPF missing from image");
  }
  const auto fspf_hash = crypto::Sha256::hash(*fspf_raw);
  if (!crypto::constant_time_equal(fspf_hash, scf->fs_protection_hash)) {
    return Error::integrity("FSPF hash mismatch: image substituted or rolled back");
  }
  auto protection = open_protection_file(*fspf_raw, scf->fs_protection_key);
  if (!protection.ok()) return protection.error();

  // 3. Mount the shielded FS.
  ShieldedFileSystem fs(host_fs, std::move(protection).value(),
                        enclave.platform().entropy());

  // 4. Run the application with shielded handles only. Entering the
  //    enclave costs one transition.
  enclave.platform().clock().advance_cycles(enclave.platform().cost().ecall_cycles);
  ProtectedStdin in(scf->stdin_key, stdin_records);
  ProtectedStdout out(scf->stdout_key);
  AppContext context{fs, in, out, scf->args, scf->env, enclave};
  auto result = app(context);
  if (!result.ok()) return result.error();

  // 5. Persist: re-seal the FSPF (reflecting writes) and store it back.
  RunOutcome outcome;
  outcome.app_result = std::move(result).value();
  outcome.stdout_records = std::move(out).take_records();
  const Bytes new_fspf = seal_protection_file(fs.protection(), scf->fs_protection_key,
                                              enclave.platform().entropy());
  SC_RETURN_IF_ERROR(host_fs.write_file(kFspfPath, new_fspf));
  outcome.new_fspf_hash = crypto::Sha256::hash(new_fspf);
  return outcome;
}

}  // namespace securecloud::scone
