// SCONE runtime: hosts a micro-service's application logic inside an
// enclave with shielded FS, protected stdio, and attested configuration.
//
// Startup sequence (§V-A):
//   1. attest + fetch the SCF over a bound secure channel;
//   2. load the FS protection file from the untrusted FS, check its hash
//      against the SCF, decrypt it with the SCF key;
//   3. mount the shielded file system;
//   4. run the application with shielded handles.
// On shutdown the (possibly mutated) FSPF is re-sealed; the new hash is
// returned so the image owner can refresh the configuration service —
// this is the freshness anchor across container restarts.
#pragma once

#include <functional>
#include <optional>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "scone/fs_protection.hpp"
#include "scone/scf.hpp"
#include "scone/stdio.hpp"
#include "scone/untrusted_fs.hpp"
#include "sgx/enclave.hpp"

namespace securecloud::scone {

/// Decrypting stdin source handed to applications: the SCONE client
/// encrypts input records with the SCF stdin key; the enclave consumes
/// them in order (tampered or reordered records end the stream with an
/// error rather than delivering attacker-controlled input).
class ProtectedStdin {
 public:
  ProtectedStdin(ByteView key, const std::vector<Bytes>& records)
      : reader_(key), records_(records) {}

  /// Next plaintext record; nullopt at end of input.
  Result<std::optional<Bytes>> read() {
    if (cursor_ >= records_.size()) return std::optional<Bytes>{};
    auto plain = reader_.read(records_[cursor_]);
    if (!plain.ok()) return plain.error();
    ++cursor_;
    return std::optional<Bytes>{std::move(plain).value()};
  }

 private:
  ProtectedStreamReader reader_;
  const std::vector<Bytes>& records_;
  std::size_t cursor_ = 0;
};

/// Collecting encrypted-stdout sink handed to applications.
class ProtectedStdout {
 public:
  explicit ProtectedStdout(ByteView key) : writer_(key) {}

  void print(std::string_view line) { records_.push_back(writer_.write(to_bytes(line))); }
  void write(ByteView data) { records_.push_back(writer_.write(data)); }

  std::vector<Bytes> take_records() && { return std::move(records_); }

 private:
  ProtectedStreamWriter writer_;
  std::vector<Bytes> records_;
};

/// Everything an application sees: shielded handles only. There is no
/// way to reach the untrusted FS or plaintext stdio from here.
struct AppContext {
  ShieldedFileSystem& fs;
  ProtectedStdin& in;
  ProtectedStdout& out;
  const std::vector<std::string>& args;
  const std::map<std::string, std::string>& env;
  sgx::Enclave& enclave;
};

struct RunOutcome {
  Bytes app_result;
  /// Re-sealed FSPF reflecting all writes, already stored back to the
  /// untrusted FS; `new_fspf_hash` must be pushed to the configuration
  /// service to keep restart freshness.
  crypto::Sha256Digest new_fspf_hash{};
  /// Encrypted stdout records produced during the run.
  std::vector<Bytes> stdout_records;
};

class SconeRuntime {
 public:
  using Application = std::function<Result<Bytes>(AppContext&)>;

  /// Conventional location of the FSPF inside an image.
  static constexpr const char* kFspfPath = "/image/.fspf";

  /// Runs `app` inside `enclave` against the untrusted FS. All failures
  /// (attestation, FSPF hash mismatch, tampered files) abort startup.
  /// `stdin_records` (optional) are encrypted input records produced by
  /// the SCONE client with the SCF stdin key.
  static Result<RunOutcome> run(sgx::Enclave& enclave, UntrustedFileSystem& host_fs,
                                ConfigurationService& config_service,
                                const Application& app,
                                const std::vector<Bytes>& stdin_records = {});
};

}  // namespace securecloud::scone
