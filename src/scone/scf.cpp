#include "scone/scf.hpp"

#include "crypto/sha256.hpp"
#include "sgx/platform.hpp"

namespace securecloud::scone {

Bytes StartupConfig::serialize() const {
  Bytes b;
  put_str(b, "SCSCF1");
  put_blob(b, fs_protection_key);
  put_blob(b, fs_protection_hash);
  put_blob(b, stdin_key);
  put_blob(b, stdout_key);
  put_u32(b, static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) put_str(b, a);
  put_u32(b, static_cast<std::uint32_t>(env.size()));
  for (const auto& [k, v] : env) {
    put_str(b, k);
    put_str(b, v);
  }
  return b;
}

Result<StartupConfig> StartupConfig::deserialize(ByteView wire) {
  ByteReader r(wire);
  std::string magic;
  if (!r.get_str(magic) || magic != "SCSCF1") return Error::protocol("bad SCF magic");

  StartupConfig scf;
  Bytes hash;
  std::uint32_t arg_count = 0, env_count = 0;
  if (!r.get_blob(scf.fs_protection_key) || !r.get_blob(hash) ||
      !r.get_blob(scf.stdin_key) || !r.get_blob(scf.stdout_key) ||
      hash.size() != scf.fs_protection_hash.size()) {
    return Error::protocol("truncated SCF");
  }
  std::copy(hash.begin(), hash.end(), scf.fs_protection_hash.begin());
  if (!r.get_u32(arg_count)) return Error::protocol("truncated SCF");
  for (std::uint32_t i = 0; i < arg_count; ++i) {
    std::string a;
    if (!r.get_str(a)) return Error::protocol("truncated SCF arg");
    scf.args.push_back(std::move(a));
  }
  if (!r.get_u32(env_count)) return Error::protocol("truncated SCF");
  for (std::uint32_t i = 0; i < env_count; ++i) {
    std::string k, v;
    if (!r.get_str(k) || !r.get_str(v)) return Error::protocol("truncated SCF env");
    scf.env.emplace(std::move(k), std::move(v));
  }
  if (!r.done()) return Error::protocol("trailing SCF bytes");
  return scf;
}

void ConfigurationService::register_scf(const sgx::Measurement& mrenclave,
                                        StartupConfig scf) {
  scfs_[Bytes(mrenclave.begin(), mrenclave.end())] = std::move(scf);
}

Result<ConfigurationService::Response> ConfigurationService::request_scf(
    ByteView quote_wire, const crypto::X25519Key& client_public_key) {
  // 1. The quote must be genuine (signed by a provisioned platform).
  auto report = attestation_.verify_wire(quote_wire);
  if (!report.ok()) return report.error();

  // 2. The quote must bind the channel key: report_data == H(client_epk).
  //    Without this, a man in the middle could splice its own channel
  //    onto someone else's valid quote.
  const auto expected = sgx::report_data_from_hash(
      crypto::Sha256::hash(client_public_key));
  if (!crypto::constant_time_equal(report->report_data, expected)) {
    return Error::attestation("quote does not bind the channel key");
  }

  // 3. Only registered enclave identities receive an SCF.
  auto it = scfs_.find(Bytes(report->mrenclave.begin(), report->mrenclave.end()));
  if (it == scfs_.end()) {
    return Error::permission_denied("no SCF registered for this MRENCLAVE");
  }

  // 4. Complete the channel and send the SCF through it.
  crypto::ChannelHandshake handshake(crypto::ChannelHandshake::Role::kResponder,
                                     entropy_);
  Response response;
  response.server_public_key = handshake.local_public_key();
  auto channel = std::move(handshake).complete(client_public_key);
  if (!channel.ok()) return channel.error();
  response.encrypted_scf = channel->seal(it->second.serialize());
  return response;
}

Result<StartupConfig> fetch_scf(sgx::Enclave& enclave, ConfigurationService& service,
                                crypto::EntropySource& entropy) {
  // Enclave startup: handshake + quote binding the ephemeral key.
  crypto::ChannelHandshake handshake(crypto::ChannelHandshake::Role::kInitiator,
                                     entropy);
  const crypto::X25519Key epk = handshake.local_public_key();

  const auto report = enclave.create_report(
      sgx::report_data_from_hash(crypto::Sha256::hash(epk)));
  auto quote = enclave.platform().quote(report);
  if (!quote.ok()) return quote.error();

  auto response = service.request_scf(quote->serialize(), epk);
  if (!response.ok()) return response.error();

  auto channel = std::move(handshake).complete(response->server_public_key);
  if (!channel.ok()) return channel.error();
  auto scf_bytes = channel->open(response->encrypted_scf);
  if (!scf_bytes.ok()) return scf_bytes.error();
  return StartupConfig::deserialize(*scf_bytes);
}

}  // namespace securecloud::scone
