// Startup Configuration File (SCF) and its attested delivery (§V-A).
//
// "Each secure container requires a startup configuration file (SCF). The
//  SCF contains keys to encrypt standard I/O streams, the hash and
//  encryption key of the FS protection file, application arguments, as
//  well as environment variables. Only an enclave whose identity has been
//  verified can access the SCF, which is received through a TLS-protected
//  connection that is established during enclave startup."
//
// ConfigurationService implements exactly that flow:
//   1. the enclave opens a channel handshake and binds its ephemeral key
//      into an attestation quote (report_data = SHA-256(epk));
//   2. the service verifies the quote with the attestation service,
//      checks MRENCLAVE against the SCF registry, completes the
//      handshake, and sends the SCF over the encrypted channel.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/secure_channel.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"

namespace securecloud::scone {

struct StartupConfig {
  Bytes fs_protection_key;                 // decrypts the FSPF
  crypto::Sha256Digest fs_protection_hash{};  // expected FSPF ciphertext hash
  Bytes stdin_key;                         // 16-byte stream keys
  Bytes stdout_key;
  std::vector<std::string> args;
  std::map<std::string, std::string> env;

  Bytes serialize() const;
  static Result<StartupConfig> deserialize(ByteView wire);
};

/// Trusted configuration service (runs in the image owner's domain, not
/// in the cloud). Releases SCFs only to attested enclaves.
class ConfigurationService {
 public:
  explicit ConfigurationService(const sgx::AttestationService& attestation,
                                crypto::EntropySource& entropy)
      : attestation_(attestation), entropy_(entropy) {}

  /// Registers the SCF an enclave with this MRENCLAVE may receive.
  void register_scf(const sgx::Measurement& mrenclave, StartupConfig scf);

  /// Server side of the startup protocol. `quote_wire` must embed
  /// SHA-256(client_epk) in report_data. On success returns the service's
  /// ephemeral public key and the SCF encrypted on the established
  /// channel.
  struct Response {
    crypto::X25519Key server_public_key;
    Bytes encrypted_scf;
  };
  Result<Response> request_scf(ByteView quote_wire,
                               const crypto::X25519Key& client_public_key);

 private:
  const sgx::AttestationService& attestation_;
  crypto::EntropySource& entropy_;
  std::map<Bytes, StartupConfig> scfs_;  // key: mrenclave bytes
};

/// Client (enclave) side: performs the full startup exchange against a
/// service and returns the SCF. `enclave` signs the channel into its
/// quote via the platform's quoting enclave.
Result<StartupConfig> fetch_scf(sgx::Enclave& enclave,
                                ConfigurationService& service,
                                crypto::EntropySource& entropy);

}  // namespace securecloud::scone
