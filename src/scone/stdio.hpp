// Protected standard I/O streams (§V-A: "keys to encrypt standard I/O
// streams" live in the SCF).
//
// A ProtectedStream is a unidirectional encrypted pipe: the writer seals
// records with a sequence-counter nonce, the reader opens them in order.
// stdin/stdout of a secure container are two such streams whose keys only
// the SCF holder and the attested enclave know — the container runtime
// and `docker logs` only ever see ciphertext.
#pragma once

#include <deque>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/gcm.hpp"

namespace securecloud::scone {

/// Writer endpoint: turns plaintext records into wire records.
class ProtectedStreamWriter {
 public:
  explicit ProtectedStreamWriter(ByteView key) : gcm_(key) {}

  Bytes write(ByteView plaintext) {
    const std::uint64_t seq = seq_++;
    std::uint8_t aad[8];
    store_be64(aad, seq);
    crypto::GcmTag tag;
    Bytes ct = gcm_.seal(crypto::nonce_from_counter(seq, kStreamDomain),
                         ByteView(aad, 8), plaintext, tag);
    Bytes wire;
    wire.reserve(8 + ct.size() + tag.size());
    wire.insert(wire.end(), aad, aad + 8);
    wire.insert(wire.end(), ct.begin(), ct.end());
    wire.insert(wire.end(), tag.begin(), tag.end());
    return wire;
  }

 private:
  static constexpr std::uint32_t kStreamDomain = 0x53494f00;  // "SIO"
  crypto::AesGcm gcm_;
  std::uint64_t seq_ = 0;
};

/// Reader endpoint: verifies order and integrity.
class ProtectedStreamReader {
 public:
  explicit ProtectedStreamReader(ByteView key) : gcm_(key) {}

  Result<Bytes> read(ByteView wire) {
    if (wire.size() < 8 + crypto::kGcmTagSize) {
      return Error::protocol("stream record too short");
    }
    const std::uint64_t seq = load_be64(wire.subspan(0, 8));
    if (seq != expected_seq_) {
      return Error::protocol("stream record out of order (drop/replay)");
    }
    crypto::GcmTag tag;
    std::memcpy(tag.data(), wire.data() + wire.size() - tag.size(), tag.size());
    auto plain = gcm_.open(crypto::nonce_from_counter(seq, kStreamDomain),
                           wire.subspan(0, 8),
                           wire.subspan(8, wire.size() - 8 - tag.size()), tag);
    if (!plain.ok()) return plain.error();
    ++expected_seq_;
    return std::move(plain).value();
  }

 private:
  static constexpr std::uint32_t kStreamDomain = 0x53494f00;
  crypto::AesGcm gcm_;
  std::uint64_t expected_seq_ = 0;
};

/// An in-memory pipe carrying protected records between two endpoints
/// (e.g. the SCONE client's terminal and a secure container's stdin).
class ProtectedPipe {
 public:
  void push(Bytes wire_record) { records_.push_back(std::move(wire_record)); }
  std::optional<Bytes> pop() {
    if (records_.empty()) return std::nullopt;
    Bytes r = std::move(records_.front());
    records_.pop_front();
    return r;
  }
  std::size_t pending() const { return records_.size(); }

 private:
  std::deque<Bytes> records_;
};

}  // namespace securecloud::scone
