#include "scone/syscall.hpp"

namespace securecloud::scone {

namespace {
constexpr std::int32_t kOk = 0;
constexpr std::int32_t kNoEnt = 2;    // ENOENT
constexpr std::int32_t kInval = 22;   // EINVAL
constexpr std::int32_t kNoSys = 38;   // ENOSYS
}  // namespace

SyscallResponse SyscallBackend::execute(const SyscallRequest& request) const {
  SyscallResponse response;
  response.id = request.id;
  switch (request.op) {
    case SyscallOp::kNop:
      break;
    case SyscallOp::kRead: {
      auto r = fs_.read_at(request.path, request.offset, request.length);
      if (!r.ok()) {
        response.error = r.error().code == ErrorCode::kNotFound ? kNoEnt : kInval;
        break;
      }
      response.data = std::move(r).value();
      response.value = response.data.size();
      break;
    }
    case SyscallOp::kWrite: {
      auto s = fs_.write_at(request.path, request.offset, request.data);
      if (!s.ok()) {
        response.error = kInval;
        break;
      }
      response.value = request.data.size();
      break;
    }
    case SyscallOp::kRemove: {
      auto s = fs_.remove(request.path);
      if (!s.ok()) response.error = kNoEnt;
      break;
    }
    case SyscallOp::kExists:
      response.value = fs_.exists(request.path) ? 1 : 0;
      break;
    case SyscallOp::kFileSize: {
      auto r = fs_.size_of(request.path);
      if (!r.ok()) {
        response.error = kNoEnt;
        break;
      }
      response.value = *r;
      break;
    }
    default:
      response.error = kNoSys;
  }
  return response;
}

SyscallResponse SyscallInterface::shield(const SyscallRequest& request,
                                         SyscallResponse response) {
  // The OS controls `response`; never trust it blindly.
  response.id = request.id;  // a confused/malicious kernel cannot re-route
  if (response.error < 0) response.error = kInval;
  if (request.op == SyscallOp::kRead && response.data.size() > request.length) {
    // Never copy more into the enclave than the caller asked for.
    response.data.resize(request.length);
    response.value = response.data.size();
  }
  if (request.op != SyscallOp::kRead && !response.data.empty()) {
    response.data.clear();  // no op besides read returns payload bytes
  }
  return response;
}

SyscallResponse SyncSyscalls::call(SyscallRequest request) {
  ++calls_;
  // OCALL: exit the enclave, run the kernel, re-enter.
  clock_.advance_cycles(cost_.ocall_cycles);
  SyscallResponse response = backend_.execute(request);
  return shield(request, std::move(response));
}

AsyncSyscalls::AsyncSyscalls(SyscallBackend& backend, SimClock& clock,
                             std::size_t ring_capacity)
    : backend_(backend),
      clock_(clock),
      requests_(ring_capacity),
      responses_(ring_capacity),
      worker_([this] { worker_loop(); }) {}

AsyncSyscalls::~AsyncSyscalls() {
  stop_.store(true, std::memory_order_release);
  worker_.join();
}

void AsyncSyscalls::worker_loop() {
  // The untrusted syscall thread: drains the request ring, executes each
  // call against the host, and pushes the response. Spins briefly, then
  // yields to stay polite under low load.
  int idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    auto request = requests_.try_pop();
    if (!request) {
      if (++idle_spins > 64) {
        std::this_thread::yield();
        idle_spins = 0;
      }
      continue;
    }
    idle_spins = 0;
    const SyscallResponse response = backend_.execute(*request);
    // Copy-push so a full ring (transient) can simply be retried.
    while (!responses_.try_push(response)) {
      std::this_thread::yield();
    }
  }
}

SyscallResponse AsyncSyscalls::call(SyscallRequest request) {
  ++calls_;
  clock_.advance_cycles(kPerCallCycles);
  request.id = next_id_++;
  const std::uint64_t want = request.id;
  const SyscallRequest shadow = request;  // for shield() after the wait

  while (!requests_.try_push(shadow)) {
    std::this_thread::yield();
  }

  for (;;) {
    auto response = responses_.try_pop();
    if (response && response->id == want) {
      return shield(shadow, std::move(*response));
    }
    // With the blocking call() API and SPSC rings there are no other
    // outstanding ids; spin until the worker finishes.
    std::this_thread::yield();
  }
}

std::optional<std::uint64_t> AsyncSyscalls::submit(SyscallRequest request) {
  request.id = next_id_++;
  const std::uint64_t id = request.id;
  clock_.advance_cycles(kPerCallCycles);
  if (!requests_.try_push(std::move(request))) return std::nullopt;
  ++calls_;
  return id;
}

std::optional<SyscallResponse> AsyncSyscalls::poll() {
  return responses_.try_pop();
}

}  // namespace securecloud::scone
