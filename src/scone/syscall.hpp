// Shielded system-call interfaces: synchronous vs. asynchronous.
//
// SCONE's external interface (§IV): system calls issued by enclave code
// must leave the enclave. Two strategies:
//
//  * SyncSyscalls — the classic SDK approach: every call is an OCALL,
//    paying the full enclave-transition round trip (~8,000 cycles).
//
//  * AsyncSyscalls — SCONE's approach: requests are placed into a
//    lock-free ring shared with an *untrusted worker thread* that
//    executes them and pushes responses into a second ring. The enclave
//    thread never exits; it pays only the cache-coherence cost of the
//    shared rings (~hundreds of cycles), and can keep computing while
//    calls are in flight (submit/poll).
//
// Both paths perform SCONE's shielding: request arguments are copied out
// of, and responses copied back into, enclave memory, with basic sanity
// checks on untrusted return values (a malicious OS must not be able to
// corrupt enclave state through syscall results).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"
#include "scone/ring_buffer.hpp"
#include "scone/untrusted_fs.hpp"
#include "sgx/cost_model.hpp"

namespace securecloud::scone {

enum class SyscallOp : std::uint8_t {
  kNop = 0,      // measurement baseline
  kRead,         // path, offset, length -> data
  kWrite,        // path, offset, data
  kRemove,       // path
  kExists,       // path -> value (0/1)
  kFileSize,     // path -> value
};

struct SyscallRequest {
  std::uint64_t id = 0;
  SyscallOp op = SyscallOp::kNop;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  Bytes data;
};

struct SyscallResponse {
  std::uint64_t id = 0;
  std::int32_t error = 0;  // 0 = success; otherwise an errno-like code
  std::uint64_t value = 0; // op-specific scalar result
  Bytes data;
};

/// Executes syscalls against the untrusted host FS. This is "the kernel".
class SyscallBackend {
 public:
  explicit SyscallBackend(UntrustedFileSystem& fs) : fs_(fs) {}
  SyscallResponse execute(const SyscallRequest& request) const;

 private:
  UntrustedFileSystem& fs_;
};

/// Common interface so the shielded FS can run over either strategy.
class SyscallInterface {
 public:
  virtual ~SyscallInterface() = default;

  /// Issues one call and waits for its response.
  virtual SyscallResponse call(SyscallRequest request) = 0;

  std::uint64_t calls_issued() const { return calls_; }

 protected:
  /// Shield: validate a response produced by untrusted code before it
  /// reaches the caller. Clamps data to the requested length (the OS
  /// must not be able to overflow an enclave buffer) and normalizes
  /// error codes.
  static SyscallResponse shield(const SyscallRequest& request, SyscallResponse response);

  std::uint64_t calls_ = 0;
};

/// One OCALL per syscall; charges the transition cost to the clock.
class SyncSyscalls final : public SyscallInterface {
 public:
  SyncSyscalls(SyscallBackend& backend, SimClock& clock, const sgx::CostModel& cost)
      : backend_(backend), clock_(clock), cost_(cost) {}

  SyscallResponse call(SyscallRequest request) override;

 private:
  SyscallBackend& backend_;
  SimClock& clock_;
  const sgx::CostModel& cost_;
};

/// SCONE-style asynchronous interface with a real worker thread.
///
/// Single application thread per instance (SPSC rings). Also exposes the
/// split submit/poll API used for overlapping I/O with computation.
class AsyncSyscalls final : public SyscallInterface {
 public:
  /// Cycles charged per async call on the enclave side: two ring
  /// operations crossing core caches (SCONE reports sub-microsecond
  /// per-call overhead; ~600 cycles at 2.6 GHz).
  static constexpr std::uint64_t kPerCallCycles = 600;

  AsyncSyscalls(SyscallBackend& backend, SimClock& clock, std::size_t ring_capacity = 256);
  ~AsyncSyscalls() override;

  AsyncSyscalls(const AsyncSyscalls&) = delete;
  AsyncSyscalls& operator=(const AsyncSyscalls&) = delete;

  SyscallResponse call(SyscallRequest request) override;

  /// Fire-and-poll API: returns the request id, or nullopt if the ring
  /// is full (caller should poll and retry).
  std::optional<std::uint64_t> submit(SyscallRequest request);
  /// Non-blocking: returns a completed response if one is available.
  std::optional<SyscallResponse> poll();

 private:
  void worker_loop();

  SyscallBackend& backend_;
  SimClock& clock_;
  SpscRing<SyscallRequest> requests_;
  SpscRing<SyscallResponse> responses_;
  std::atomic<bool> stop_{false};
  std::uint64_t next_id_ = 1;
  std::thread worker_;
};

}  // namespace securecloud::scone
