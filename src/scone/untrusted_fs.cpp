#include "scone/untrusted_fs.hpp"

namespace securecloud::scone {

Status UntrustedFileSystem::write_file(const std::string& path, ByteView content) {
  if (path.empty()) return Error::invalid_argument("empty path");
  if (faults_ != nullptr && faults_->should_fire(common::FaultKind::kIoError)) {
    // Torn write: the old content is already gone and only half the new
    // bytes landed before the "failure" — the worst case a caller that
    // overwrites in place must survive.
    files_[path] = Bytes(content.begin(), content.begin() + content.size() / 2);
    return Error::unavailable("I/O error writing " + path);
  }
  files_[path] = Bytes(content.begin(), content.end());
  return {};
}

Result<Bytes> UntrustedFileSystem::read_file(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Error::not_found("no such file: " + path);
  return it->second;
}

bool UntrustedFileSystem::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status UntrustedFileSystem::remove(const std::string& path) {
  if (faults_ != nullptr && faults_->should_fire(common::FaultKind::kIoError)) {
    return Error::unavailable("I/O error removing " + path);
  }
  if (files_.erase(path) == 0) return Error::not_found("no such file: " + path);
  return {};
}

Status UntrustedFileSystem::rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Error::not_found("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return {};
}

std::vector<std::string> UntrustedFileSystem::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

Status UntrustedFileSystem::write_at(const std::string& path, std::size_t offset,
                                     ByteView data) {
  Bytes& file = files_[path];
  if (file.size() < offset + data.size()) file.resize(offset + data.size(), 0);
  std::copy(data.begin(), data.end(), file.begin() + static_cast<std::ptrdiff_t>(offset));
  return {};
}

Result<Bytes> UntrustedFileSystem::read_at(const std::string& path, std::size_t offset,
                                           std::size_t length) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Error::not_found("no such file: " + path);
  const Bytes& file = it->second;
  if (offset > file.size()) return Error::invalid_argument("read past EOF");
  const std::size_t take = std::min(length, file.size() - offset);
  return Bytes(file.begin() + static_cast<std::ptrdiff_t>(offset),
               file.begin() + static_cast<std::ptrdiff_t>(offset + take));
}

Result<std::size_t> UntrustedFileSystem::size_of(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Error::not_found("no such file: " + path);
  return it->second.size();
}

Bytes* UntrustedFileSystem::raw(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::size_t UntrustedFileSystem::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [_, content] : files_) n += content.size();
  return n;
}

}  // namespace securecloud::scone
