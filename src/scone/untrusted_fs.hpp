// In-memory "host" file system — the untrusted substrate under SCONE.
//
// Models the cloud host's file system: the enclave never trusts its
// contents (they may be read, modified, or rolled back by the operator).
// SCONE's shielded file system layers encryption + MACs on top of this.
// In-memory rather than on-disk so tests and benchmarks are hermetic and
// an "attacker" can be expressed as a direct mutation of stored bytes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/fault_injector.hpp"
#include "common/result.hpp"

namespace securecloud::scone {

class UntrustedFileSystem {
 public:
  /// Routes write_file/remove through `injector`'s kIoError stream. A
  /// fired write fault models a *torn* write — the target ends up holding
  /// a truncated copy of the new content (a power cut mid-write, the
  /// classic host-side failure) — and returns kUnavailable. A fired
  /// remove fault leaves the file in place and returns kUnavailable.
  void set_fault_injector(common::FaultInjector* injector) { faults_ = injector; }

  Status write_file(const std::string& path, ByteView content);
  Result<Bytes> read_file(const std::string& path) const;
  bool exists(const std::string& path) const;
  Status remove(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  std::vector<std::string> list(const std::string& prefix = "") const;

  /// Partial update (used by chunked writers). Extends the file with
  /// zeros when the range lies past EOF.
  Status write_at(const std::string& path, std::size_t offset, ByteView data);
  Result<Bytes> read_at(const std::string& path, std::size_t offset,
                        std::size_t length) const;
  Result<std::size_t> size_of(const std::string& path) const;

  /// Attacker's handle: direct mutable access to stored bytes.
  Bytes* raw(const std::string& path);

  std::size_t file_count() const { return files_.size(); }
  std::size_t total_bytes() const;

 private:
  std::map<std::string, Bytes> files_;
  common::FaultInjector* faults_ = nullptr;
};

}  // namespace securecloud::scone
