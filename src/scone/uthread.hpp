// User-level (in-enclave) threading — SCONE's "tailored threading".
//
// Blocking on a kernel futex from inside an enclave forces an expensive
// enclave exit (AEX + re-entry). SCONE instead multiplexes M application
// threads over N enclave TCSs with an in-enclave scheduler so that
// blocking and switching never leave the enclave.
//
// This module models that scheduler: cooperative tasks expressed as
// step functions. step() returns:
//   kDone     — task finished,
//   kYield    — made progress, reschedule,
//   kBlocked  — waiting (e.g. on an async syscall); reschedule later.
// The scheduler round-robins runnable tasks and charges the documented
// cost per switch: ~50 cycles for an in-enclave switch vs. a full AEX +
// kernel context switch (~12,000 cycles) for the OS-thread baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/sim_clock.hpp"

namespace securecloud::scone {

enum class StepResult { kDone, kYield, kBlocked };

class UserScheduler {
 public:
  /// In-enclave context switch (register save/restore, no kernel).
  static constexpr std::uint64_t kUserSwitchCycles = 50;
  /// OS-thread baseline: AEX, kernel switch, enclave re-entry.
  static constexpr std::uint64_t kKernelSwitchCycles = 12'000;

  explicit UserScheduler(SimClock& clock, bool in_enclave = true)
      : clock_(clock), in_enclave_(in_enclave) {}

  using Task = std::function<StepResult()>;

  void spawn(Task task) { ready_.push_back(std::move(task)); }

  /// Runs until every task completes. Returns the number of scheduling
  /// decisions taken.
  std::uint64_t run() {
    std::uint64_t switches = 0;
    while (!ready_.empty()) {
      Task task = std::move(ready_.front());
      ready_.pop_front();
      ++switches;
      clock_.advance_cycles(in_enclave_ ? kUserSwitchCycles : kKernelSwitchCycles);
      switch (task()) {
        case StepResult::kDone:
          break;
        case StepResult::kYield:
        case StepResult::kBlocked:
          ready_.push_back(std::move(task));
          break;
      }
    }
    return switches;
  }

  std::size_t runnable() const { return ready_.size(); }

 private:
  SimClock& clock_;
  bool in_enclave_;
  std::deque<Task> ready_;
};

}  // namespace securecloud::scone
