#include "sgx/attestation.hpp"

namespace securecloud::sgx {

Bytes Report::body_bytes() const {
  Bytes b;
  put_blob(b, mrenclave);
  put_blob(b, mrsigner);
  put_u64(b, isv_prod_id);
  put_u64(b, isv_svn);
  put_blob(b, report_data);
  return b;
}

Bytes Quote::serialize() const {
  Bytes b;
  put_str(b, "SCQUOTE1");
  put_blob(b, report.mrenclave);
  put_blob(b, report.mrsigner);
  put_u64(b, report.isv_prod_id);
  put_u64(b, report.isv_svn);
  put_blob(b, report.report_data);
  put_str(b, platform_id);
  put_blob(b, signature);
  return b;
}

Result<Quote> Quote::deserialize(ByteView wire) {
  ByteReader r(wire);
  std::string magic;
  if (!r.get_str(magic) || magic != "SCQUOTE1") {
    return Error::protocol("bad quote magic");
  }
  Quote q;
  Bytes mrenclave, mrsigner, report_data, signature;
  if (!r.get_blob(mrenclave) || !r.get_blob(mrsigner) ||
      !r.get_u64(q.report.isv_prod_id) || !r.get_u64(q.report.isv_svn) ||
      !r.get_blob(report_data) || !r.get_str(q.platform_id) ||
      !r.get_blob(signature) || !r.done()) {
    return Error::protocol("truncated or trailing quote bytes");
  }
  if (mrenclave.size() != q.report.mrenclave.size() ||
      mrsigner.size() != q.report.mrsigner.size() ||
      report_data.size() != q.report.report_data.size() ||
      signature.size() != q.signature.size()) {
    return Error::protocol("quote field size mismatch");
  }
  std::copy(mrenclave.begin(), mrenclave.end(), q.report.mrenclave.begin());
  std::copy(mrsigner.begin(), mrsigner.end(), q.report.mrsigner.begin());
  std::copy(report_data.begin(), report_data.end(), q.report.report_data.begin());
  std::copy(signature.begin(), signature.end(), q.signature.begin());
  return q;
}

QuotingEnclave::QuotingEnclave(std::string platform_id, ByteView report_key,
                               const crypto::Ed25519KeyPair& attestation_key)
    : platform_id_(std::move(platform_id)),
      report_key_(report_key.begin(), report_key.end()),
      attestation_key_(attestation_key) {}

Result<Quote> QuotingEnclave::quote(const Report& report) const {
  const auto expected_mac = crypto::HmacSha256::mac(report_key_, report.body_bytes());
  if (!crypto::constant_time_equal(expected_mac, report.mac)) {
    return Error::attestation("report MAC invalid: not produced on this platform");
  }
  Quote q;
  q.report = report;
  q.report.mac = {};  // the MAC is platform-local; not part of the quote
  q.platform_id = platform_id_;
  q.signature = crypto::ed25519_sign(attestation_key_, q.report.body_bytes());
  return q;
}

void AttestationService::register_platform(const std::string& platform_id,
                                           const crypto::Ed25519PublicKey& key) {
  platforms_[platform_id] = key;
}

void AttestationService::revoke_platform(const std::string& platform_id) {
  platforms_.erase(platform_id);
}

Result<Report> AttestationService::verify(const Quote& quote) const {
  auto it = platforms_.find(quote.platform_id);
  if (it == platforms_.end()) {
    return Error::attestation("unknown or revoked platform: " + quote.platform_id);
  }
  if (!crypto::ed25519_verify(it->second, quote.report.body_bytes(), quote.signature)) {
    return Error::attestation("quote signature invalid");
  }
  return quote.report;
}

Result<Report> AttestationService::verify_wire(ByteView quote_wire) const {
  auto q = Quote::deserialize(quote_wire);
  if (!q.ok()) return q.error();
  return verify(*q);
}

ReportData report_data_from_hash(const crypto::Sha256Digest& digest) {
  ReportData rd{};
  std::copy(digest.begin(), digest.end(), rd.begin());
  return rd;
}

bool report_data_matches_hash(const ReportData& rd, const crypto::Sha256Digest& digest) {
  const ReportData expected = report_data_from_hash(digest);
  return crypto::constant_time_equal(rd, expected);
}

}  // namespace securecloud::sgx
