// Attestation: reports, quotes, and an IAS-like verification service.
//
// Flow (mirrors Intel's EPID-based remote attestation, with Ed25519
// standing in for EPID group signatures):
//
//   1. An application enclave produces a *Report* for local verification:
//      (MRENCLAVE, MRSIGNER, report_data) MAC'd with a platform report
//      key only enclaves on the same platform can check.
//   2. The platform's *Quoting Enclave* verifies the report MAC and signs
//      the body with the platform attestation key, producing a *Quote*
//      that can be verified off-platform.
//   3. The *AttestationService* (playing Intel's IAS) knows which
//      attestation public keys belong to genuine platforms and verifies
//      quotes for relying parties, returning the quote body.
//
// Relying parties then check MRENCLAVE/MRSIGNER against their policy and
// use report_data (e.g. a secure-channel transcript hash) to bind the
// attestation to a live session.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hmac.hpp"
#include "sgx/measurement.hpp"

namespace securecloud::sgx {

inline constexpr std::size_t kReportDataSize = 64;
using ReportData = std::array<std::uint8_t, kReportDataSize>;

/// Locally verifiable attestation evidence (EREPORT output).
struct Report {
  Measurement mrenclave{};
  Measurement mrsigner{};
  std::uint64_t isv_prod_id = 0;
  std::uint64_t isv_svn = 0;  // security version number
  ReportData report_data{};
  crypto::Sha256Digest mac{};  // HMAC under the platform report key

  Bytes body_bytes() const;  // serialization without the MAC
};

/// Remotely verifiable attestation evidence.
struct Quote {
  Report report;             // MAC field unused once quoted
  std::string platform_id;   // which platform's attestation key signed
  crypto::Ed25519Signature signature{};

  Bytes serialize() const;
  static Result<Quote> deserialize(ByteView wire);
};

/// The platform-resident quoting enclave: turns Reports into Quotes.
class QuotingEnclave {
 public:
  QuotingEnclave(std::string platform_id, ByteView report_key,
                 const crypto::Ed25519KeyPair& attestation_key);

  /// Verifies the report's platform MAC, then signs. Reports from other
  /// platforms (wrong MAC) are rejected.
  Result<Quote> quote(const Report& report) const;

  const crypto::Ed25519PublicKey& attestation_public_key() const {
    return attestation_key_.public_key;
  }
  const std::string& platform_id() const { return platform_id_; }

 private:
  std::string platform_id_;
  Bytes report_key_;
  crypto::Ed25519KeyPair attestation_key_;
};

/// IAS-like quote verification service.
class AttestationService {
 public:
  /// Registers a genuine platform's attestation public key (in EPID terms:
  /// the group public key provisioned by Intel).
  void register_platform(const std::string& platform_id,
                         const crypto::Ed25519PublicKey& key);
  void revoke_platform(const std::string& platform_id);

  /// Verifies quote authenticity. Returns the verified Report body.
  Result<Report> verify(const Quote& quote) const;
  Result<Report> verify_wire(ByteView quote_wire) const;

 private:
  std::unordered_map<std::string, crypto::Ed25519PublicKey> platforms_;
};

/// Convenience: report_data carrying a SHA-256 (e.g. channel transcript
/// hash) in the first 32 bytes, zero-padded.
ReportData report_data_from_hash(const crypto::Sha256Digest& digest);

/// True iff `rd` equals report_data_from_hash(digest) (constant-time).
/// The relying-party check that binds an attestation to a live secure
/// channel: the quoted enclave must have embedded THIS session's
/// transcript hash, or the quote was lifted from another session.
bool report_data_matches_hash(const ReportData& rd, const crypto::Sha256Digest& digest);

}  // namespace securecloud::sgx
