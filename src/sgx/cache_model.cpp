#include "sgx/cache_model.hpp"

#include <cassert>

namespace securecloud::sgx {

CacheModel::CacheModel(std::size_t size_bytes, std::size_t line_bytes, std::size_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  assert(line_bytes > 0 && ways > 0);
  assert(size_bytes % (line_bytes * ways) == 0);
  num_sets_ = size_bytes / (line_bytes * ways);
  assert(num_sets_ > 0);
  ways_storage_.resize(num_sets_ * ways_);
}

bool CacheModel::access(std::uint64_t addr) {
  const std::uint64_t line = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  Way* base = &ways_storage_[set * ways_];
  ++tick_;

  Way* victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid slot
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }

  ++misses_;
  victim->tag = line;
  victim->valid = true;
  victim->lru = tick_;
  return false;
}

void CacheModel::invalidate_range(std::uint64_t base, std::uint64_t len) {
  const std::uint64_t first_line = base / line_bytes_;
  const std::uint64_t last_line = (base + len - 1) / line_bytes_;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    const std::size_t set = static_cast<std::size_t>(line % num_sets_);
    Way* ways = &ways_storage_[set * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
      if (ways[w].valid && ways[w].tag == line) {
        ways[w].valid = false;
      }
    }
  }
}

void CacheModel::clear() {
  for (auto& w : ways_storage_) w.valid = false;
  hits_ = misses_ = 0;
}

}  // namespace securecloud::sgx
