// Set-associative LLC model.
//
// Tracks which cache lines are resident so the memory models can decide
// whether an access is a hit, a plain miss, or an MEE-protected miss.
// True-LRU within each set; tags are full line addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace securecloud::sgx {

class CacheModel {
 public:
  /// Precondition: size/line/ways describe a valid geometry
  /// (size % (line * ways) == 0, all nonzero).
  CacheModel(std::size_t size_bytes, std::size_t line_bytes, std::size_t ways);

  /// Looks up (and on miss, fills) the line containing `addr`.
  /// Returns true on hit. Evicts LRU within the set when full.
  bool access(std::uint64_t addr);

  /// Drops all lines whose address is within [base, base+len). Used when
  /// an EPC page is evicted: its lines leave the cache with it.
  void invalidate_range(std::uint64_t base, std::uint64_t len);

  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t line_size() const { return line_bytes_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use tick; smaller = older
    bool valid = false;
  };

  std::size_t line_bytes_;
  std::size_t ways_;
  std::size_t num_sets_;
  std::vector<Way> ways_storage_;  // num_sets_ x ways_
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace securecloud::sgx
