// Cycle-cost model for the simulated SGX platform.
//
// The paper's quantitative observations (§V-B, Fig. 3) are memory-system
// effects of SGX1 hardware:
//   1. crossing the enclave boundary (EENTER/EEXIT, AEX) costs thousands
//      of cycles — motivating SCONE's asynchronous syscalls (§IV);
//   2. an LLC miss inside the enclave is served through the Memory
//      Encryption Engine (MEE), which decrypts the line and walks an
//      integrity tree — several times the cost of a plain miss;
//   3. once an enclave's working set exceeds the Enclave Page Cache, the
//      (untrusted) OS pages 4 KiB pages in and out with EWB/ELDU, paying
//      page-granular encryption + MAC + version-tree updates plus a trap
//      into the kernel — orders of magnitude above a cache miss, which is
//      why Fig. 3 degrades to ~18x at 200 MB.
//
// Magnitudes below are taken from the SGX literature (SCONE, OSDI'16;
// Costan & Devadas, "Intel SGX Explained"; Orenbach et al., Eleos,
// EuroSys'17) for the Skylake generation the paper used. They are
// configurable so ablations can sweep them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace securecloud::sgx {

struct CostModel {
  // --- enclave transitions -------------------------------------------------
  /// Synchronous ECALL round trip (EENTER + EEXIT + TLB flush effects).
  std::uint64_t ecall_cycles = 8'000;
  /// Synchronous OCALL round trip issued from inside an enclave.
  std::uint64_t ocall_cycles = 8'000;
  /// Asynchronous exit + resume (interrupt while in enclave).
  std::uint64_t aex_cycles = 7'000;

  // --- cache hierarchy ------------------------------------------------------
  /// Hit anywhere in L1/L2 (averaged; we model a single cache level).
  std::uint64_t cache_hit_cycles = 4;
  /// LLC miss served from plain DRAM.
  std::uint64_t llc_miss_plain_cycles = 200;
  /// LLC miss served through the MEE (decrypt + integrity-tree walk).
  std::uint64_t llc_miss_mee_cycles = 1'000;

  // --- EPC paging -----------------------------------------------------------
  /// Full cost of an EPC page fault: #PF trap, EWB of a victim page
  /// (AES-GCM over 4 KiB + version-array update) and ELDU of the target.
  std::uint64_t epc_fault_cycles = 40'000;
  /// Extra cost per page on the eviction path when the victim is dirty.
  std::uint64_t epc_writeback_cycles = 12'000;

  // --- geometry -------------------------------------------------------------
  std::size_t page_size = 4096;
  std::size_t cache_line_size = 64;
  /// Modeled LLC capacity (per-socket, as seen by one application).
  std::size_t llc_size_bytes = 8ull * 1024 * 1024;
  /// Raw EPC size. SGX1 shipped 128 MiB.
  std::size_t epc_size_bytes = 128ull * 1024 * 1024;
  /// EPC consumed by SGX metadata (EPCM entries, SECS/TCS/SSA/version
  /// arrays). Fig. 3's caption notes degradation begins *before* the
  /// 128 MB line "due to the use of protected memory for SGX internal
  /// data structures"; ~27% overhead leaves ~93.5 MiB usable, matching
  /// the Linux SGX driver's effective capacity on those parts.
  std::size_t epc_metadata_bytes = 34ull * 1024 * 1024 + 512ull * 1024;

  std::size_t usable_epc_bytes() const { return epc_size_bytes - epc_metadata_bytes; }
};

}  // namespace securecloud::sgx
