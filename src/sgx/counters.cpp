#include "sgx/counters.hpp"

#include "sgx/enclave.hpp"

namespace securecloud::sgx {

namespace {
Bytes owner_key(const Measurement& owner) {
  return Bytes(owner.begin(), owner.end());
}
}  // namespace

std::uint32_t MonotonicCounterService::create(const Measurement& owner) {
  std::lock_guard<std::mutex> lock(mu_);
  const Bytes key = owner_key(owner);
  const std::uint32_t id = next_id_[key]++;
  counters_[{key, id}] = 0;
  return id;
}

Result<std::uint64_t> MonotonicCounterService::read(const Measurement& owner,
                                                    std::uint32_t counter_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find({owner_key(owner), counter_id});
  if (it == counters_.end()) return Error::not_found("no such counter");
  return it->second;
}

Result<std::uint64_t> MonotonicCounterService::increment(const Measurement& owner,
                                                         std::uint32_t counter_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find({owner_key(owner), counter_id});
  if (it == counters_.end()) return Error::not_found("no such counter");
  return ++it->second;
}

Status MonotonicCounterService::destroy(const Measurement& owner,
                                        std::uint32_t counter_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.erase({owner_key(owner), counter_id}) == 0) {
    return Error::not_found("no such counter");
  }
  return {};
}

VersionedSealedState::VersionedSealedState(const Enclave& enclave,
                                           MonotonicCounterService& counters)
    : enclave_(enclave),
      counters_(counters),
      counter_id_(counters.create(enclave.mrenclave())) {}

Result<Bytes> VersionedSealedState::persist(ByteView state) {
  const auto version = counters_.increment(enclave_.mrenclave(), counter_id_);
  if (!version.ok()) return version.error();
  Bytes payload;
  put_u64(payload, *version);
  put_blob(payload, state);
  return enclave_.seal(payload, SealPolicy::kMrEnclave);
}

Result<Bytes> VersionedSealedState::restore(ByteView blob) const {
  auto payload = enclave_.unseal(blob);
  if (!payload.ok()) return payload.error();

  ByteReader reader(*payload);
  std::uint64_t recorded = 0;
  Bytes state;
  if (!reader.get_u64(recorded) || !reader.get_blob(state) || !reader.done()) {
    return Error::protocol("malformed versioned state");
  }
  auto current = counters_.read(enclave_.mrenclave(), counter_id_);
  if (!current.ok()) return current.error();
  if (recorded != *current) {
    return Error::protocol("stale sealed state (rollback attack detected)");
  }
  return state;
}

}  // namespace securecloud::sgx
