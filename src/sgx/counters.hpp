// Monotonic counter service (rollback protection across restarts).
//
// Sealed state alone cannot prevent the host from restarting an enclave
// with an older (validly sealed) snapshot. SGX platforms expose
// monotonic counters for this: state is sealed together with the counter
// value, the counter is incremented on every persist, and on restart the
// enclave rejects snapshots whose recorded value does not match the
// live counter. SCONE relies on the same mechanism for its FSPF across
// container restarts.
//
// Counters are platform-resident and namespaced by enclave identity
// (MRENCLAVE) so one enclave cannot consume or advance another's.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sgx/measurement.hpp"

namespace securecloud::sgx {

class MonotonicCounterService {
 public:
  /// Creates a counter for `owner`; returns its id (per-owner sequence).
  std::uint32_t create(const Measurement& owner);

  /// Reads the current value. Unknown counters are kNotFound.
  Result<std::uint64_t> read(const Measurement& owner, std::uint32_t counter_id) const;

  /// Increments and returns the new value. Only the owner identity may
  /// advance its counters — enforced by keying on the measurement.
  Result<std::uint64_t> increment(const Measurement& owner, std::uint32_t counter_id);

  Status destroy(const Measurement& owner, std::uint32_t counter_id);

 private:
  using Key = std::pair<Bytes, std::uint32_t>;  // (mrenclave, id)
  /// Guards both maps: enclaves on pool workers may persist/restore
  /// concurrently, and real SGX counters are likewise a shared platform
  /// facility. Each operation is atomic under the lock, so increments
  /// never tear and ids are never double-issued.
  mutable std::mutex mu_;
  std::map<Key, std::uint64_t> counters_;
  std::map<Bytes, std::uint32_t> next_id_;
};

/// Rollback-protected sealed state: couples Enclave::seal with a
/// monotonic counter. persist() seals `state` together with the counter
/// value it increments to; restore() unseals and rejects snapshots whose
/// recorded value is not the current counter value (stale snapshot =>
/// rollback attempt).
class VersionedSealedState {
 public:
  VersionedSealedState(const class Enclave& enclave, MonotonicCounterService& counters);

  /// Seals `state`, advancing the counter. Returns the blob to store on
  /// untrusted media. Fails if the counter cannot be advanced: sealing
  /// anyway would record a bogus version and defeat rollback detection.
  Result<Bytes> persist(ByteView state);

  /// Restores the latest persisted state; detects stale blobs.
  Result<Bytes> restore(ByteView blob) const;

 private:
  const Enclave& enclave_;
  MonotonicCounterService& counters_;
  std::uint32_t counter_id_;
};

}  // namespace securecloud::sgx
