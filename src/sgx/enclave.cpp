#include "sgx/enclave.hpp"

#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "sgx/platform.hpp"

namespace securecloud::sgx {

namespace {

Measurement measure_image(const EnclaveImage& image) {
  // Page-granular measurement, 4 KiB pages, mirroring the loader.
  constexpr std::size_t kPage = 4096;
  const std::uint64_t total =
      ((image.code.size() + kPage - 1) / kPage + (image.initial_data.size() + kPage - 1) / kPage) * kPage +
      image.heap_size;
  MeasurementBuilder builder(total);

  std::uint64_t offset = 0;
  auto add_section = [&](ByteView section, PageType type) {
    for (std::size_t pos = 0; pos < section.size(); pos += kPage) {
      Bytes page(kPage, 0);
      const std::size_t take = std::min(kPage, section.size() - pos);
      std::copy(section.begin() + static_cast<std::ptrdiff_t>(pos),
                section.begin() + static_cast<std::ptrdiff_t>(pos + take), page.begin());
      builder.add_page(offset, type, page);
      offset += kPage;
    }
  };
  add_section(image.code, PageType::kCode);
  add_section(image.initial_data, PageType::kData);
  // Heap pages are added zero-initialized but (as with SGX1) part of the
  // measured layout: only their count matters, so fold in the size.
  return std::move(builder).finalize();
}

}  // namespace

Measurement EnclaveImage::expected_measurement() const {
  return measure_image(*this);
}

void sign_image(EnclaveImage& image, const crypto::Ed25519KeyPair& key) {
  image.signer = key.public_key;
  image.sigstruct = crypto::ed25519_sign(key, image.expected_measurement());
}

Enclave::Enclave(Platform& platform, std::uint64_t id, const EnclaveImage& image,
                 Measurement mrenclave, std::uint64_t heap_base)
    : platform_(platform),
      id_(id),
      name_(image.name),
      mrenclave_(mrenclave),
      mrsigner_(mrsigner_of(image.signer)),
      isv_prod_id_(image.isv_prod_id),
      isv_svn_(image.isv_svn),
      heap_base_(heap_base),
      heap_size_(image.heap_size) {}

void Enclave::register_ecall(std::uint32_t ecall_id, EcallHandler handler) {
  ecalls_[ecall_id] = std::move(handler);
}

Result<Bytes> Enclave::ecall(std::uint32_t ecall_id, ByteView arg) {
  auto it = ecalls_.find(ecall_id);
  if (it == ecalls_.end()) {
    return Error::invalid_argument("unknown ECALL id " + std::to_string(ecall_id));
  }
  platform_.clock().advance_cycles(platform_.cost().ecall_cycles);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  return it->second(arg);
}

void Enclave::ocall(const std::function<void()>& fn) {
  platform_.clock().advance_cycles(platform_.cost().ocall_cycles);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  fn();
}

Bytes Enclave::derive_seal_key(SealPolicy policy) const {
  // KEYREQUEST semantics: the key depends on the platform's fuse key and
  // the enclave identity selected by the policy; MRSIGNER keys also bind
  // prod id + svn so a newer version can read (and re-seal) old data.
  Bytes info;
  put_str(info, "sgx-seal-key");
  put_u8(info, static_cast<std::uint8_t>(policy));
  if (policy == SealPolicy::kMrEnclave) {
    put_blob(info, mrenclave_);
  } else {
    put_blob(info, mrsigner_);
    put_u64(info, isv_prod_id_);
  }
  return crypto::hkdf(/*salt=*/{}, platform_.sealing_root_key(), info, 16);
}

Bytes Enclave::seal(ByteView data, SealPolicy policy) const {
  const Bytes key = derive_seal_key(policy);
  crypto::AesGcm gcm(key);

  crypto::GcmNonce nonce;
  platform_.entropy().fill(MutableByteView(nonce.data(), nonce.size()));

  Bytes aad;
  put_u8(aad, static_cast<std::uint8_t>(policy));

  Bytes blob;
  put_u8(blob, static_cast<std::uint8_t>(policy));
  crypto::GcmTag tag;
  Bytes ct = gcm.seal(nonce, aad, data, tag);
  append(blob, nonce);
  put_blob(blob, ct);
  append(blob, tag);
  return blob;
}

Result<Bytes> Enclave::unseal(ByteView blob) const {
  ByteReader r(blob);
  std::uint8_t policy_byte = 0;
  if (!r.get_u8(policy_byte) || policy_byte > 1) {
    return Error::protocol("malformed sealed blob header");
  }
  if (r.remaining() < crypto::kGcmNonceSize + 4 + crypto::kGcmTagSize) {
    return Error::protocol("sealed blob truncated");
  }
  crypto::GcmNonce nonce;
  for (auto& b : nonce) {
    if (!r.get_u8(b)) return Error::protocol("sealed blob truncated");
  }
  Bytes ct;
  if (!r.get_blob(ct)) return Error::protocol("sealed blob truncated");
  crypto::GcmTag tag;
  for (auto& b : tag) {
    if (!r.get_u8(b)) return Error::protocol("sealed blob truncated");
  }

  const auto policy = static_cast<SealPolicy>(policy_byte);
  const Bytes key = derive_seal_key(policy);
  crypto::AesGcm gcm(key);
  Bytes aad;
  put_u8(aad, policy_byte);
  auto plain = gcm.open(nonce, aad, ct, tag);
  if (!plain.ok()) {
    return Error::integrity(
        "unseal failed: wrong enclave identity, wrong platform, or tampering");
  }
  return std::move(plain).value();
}

Report Enclave::create_report(const ReportData& report_data) const {
  Report report;
  report.mrenclave = mrenclave_;
  report.mrsigner = mrsigner_;
  report.isv_prod_id = isv_prod_id_;
  report.isv_svn = isv_svn_;
  report.report_data = report_data;
  report.mac = crypto::HmacSha256::mac(platform_.report_key(), report.body_bytes());
  return report;
}

namespace {
Bytes local_report_key(ByteView platform_report_key, const Measurement& target) {
  Bytes info;
  put_str(info, "sgx-local-report-key");
  put_blob(info, target);
  return crypto::hkdf(/*salt=*/{}, platform_report_key, info, 32);
}
}  // namespace

Report Enclave::create_report_for(const Measurement& target_mrenclave,
                                  const ReportData& report_data) const {
  Report report;
  report.mrenclave = mrenclave_;
  report.mrsigner = mrsigner_;
  report.isv_prod_id = isv_prod_id_;
  report.isv_svn = isv_svn_;
  report.report_data = report_data;
  const Bytes key = local_report_key(platform_.report_key(), target_mrenclave);
  report.mac = crypto::HmacSha256::mac(key, report.body_bytes());
  return report;
}

Result<Report> Enclave::verify_local_report(const Report& report) const {
  const Bytes key = local_report_key(platform_.report_key(), mrenclave_);
  const auto expected = crypto::HmacSha256::mac(key, report.body_bytes());
  if (!crypto::constant_time_equal(expected, report.mac)) {
    return Error::attestation(
        "local report MAC invalid (wrong target, platform, or tampering)");
  }
  return report;
}

EnclaveMemory& Enclave::memory() { return platform_.memory(); }

}  // namespace securecloud::sgx
