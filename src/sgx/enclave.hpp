// Enclave: a measured, isolated execution compartment.
//
// The simulator preserves SGX's programming model:
//  * an enclave is created from a signed image; the platform measures
//    every page and refuses images whose SIGSTRUCT does not verify;
//  * calls cross the boundary through registered ECALLs (and OCALLs back
//    out), each charged the documented transition cost;
//  * data sealed by an enclave can only be unsealed by an enclave with
//    the same identity (MRENCLAVE policy) or the same signer (MRSIGNER
//    policy) on the same platform;
//  * reports produced via EREPORT are MAC'd with the platform report key
//    and can be turned into remotely verifiable quotes by the platform's
//    quoting enclave.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ed25519.hpp"
#include "sgx/attestation.hpp"
#include "sgx/measurement.hpp"
#include "sgx/memory_model.hpp"

namespace securecloud::sgx {

class Platform;

/// A loadable enclave image (the statically linked binary SCONE builds).
struct EnclaveImage {
  std::string name;
  Bytes code;                 // measured as executable pages
  Bytes initial_data;         // measured as writable data pages
  std::size_t heap_size = 1ull << 20;
  std::uint64_t isv_prod_id = 0;
  std::uint64_t isv_svn = 1;
  crypto::Ed25519PublicKey signer{};        // SIGSTRUCT public key
  crypto::Ed25519Signature sigstruct{};     // signature over the measurement

  /// The measurement this image will have when loaded.
  Measurement expected_measurement() const;
};

/// Computes the image's measurement and signs it (done by the image
/// creator in a trusted environment; fills signer/sigstruct).
void sign_image(EnclaveImage& image, const crypto::Ed25519KeyPair& key);

enum class SealPolicy : std::uint8_t {
  kMrEnclave = 0,  // only the exact same enclave can unseal
  kMrSigner = 1,   // any enclave from the same signer can unseal
};

class Enclave {
 public:
  using EcallHandler = std::function<Result<Bytes>(ByteView)>;

  // Created by Platform::create_enclave only.
  Enclave(Platform& platform, std::uint64_t id, const EnclaveImage& image,
          Measurement mrenclave, std::uint64_t heap_base);

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // --- identity ------------------------------------------------------------
  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Measurement& mrenclave() const { return mrenclave_; }
  const Measurement& mrsigner() const { return mrsigner_; }

  // --- boundary crossings ----------------------------------------------------
  /// Registers application logic reachable from the untrusted side.
  void register_ecall(std::uint32_t ecall_id, EcallHandler handler);

  /// Crosses into the enclave (charging transition cost) and runs the
  /// handler. Unknown ECALL ids are rejected — the boundary is an
  /// explicit, audited interface.
  Result<Bytes> ecall(std::uint32_t ecall_id, ByteView arg);

  /// Calls untrusted code from inside the enclave (charging the OCALL
  /// round trip). Used by the SCONE runtime's synchronous syscall path.
  void ocall(const std::function<void()>& fn);

  /// Number of boundary crossings so far (for benchmarks).
  std::uint64_t transition_count() const {
    return transitions_.load(std::memory_order_relaxed);
  }

  // --- sealing ----------------------------------------------------------------
  /// Encrypts `data` so only an enclave matching `policy` on this
  /// platform can recover it.
  Bytes seal(ByteView data, SealPolicy policy) const;
  Result<Bytes> unseal(ByteView blob) const;

  // --- attestation -------------------------------------------------------------
  /// EREPORT: report about this enclave with caller-chosen report_data,
  /// MAC'd with the platform report key (verifiable by the quoting
  /// enclave for remote attestation).
  Report create_report(const ReportData& report_data) const;

  /// Local attestation: EREPORT targeted at `target_mrenclave`. The MAC
  /// key is derived from the platform report key and the *target's*
  /// identity, so only that enclave (on this platform) can verify it.
  Report create_report_for(const Measurement& target_mrenclave,
                           const ReportData& report_data) const;

  /// Target-side verification of a local report addressed to this
  /// enclave. Rejects reports targeted elsewhere or from other platforms.
  Result<Report> verify_local_report(const Report& report) const;

  // --- memory -------------------------------------------------------------------
  /// The enclave's heap range in the platform's simulated EPC space.
  std::uint64_t heap_base() const { return heap_base_; }
  std::size_t heap_size() const { return heap_size_; }
  /// Memory model all enclave data accesses should be charged against.
  EnclaveMemory& memory();

  Platform& platform() { return platform_; }

 private:
  Bytes derive_seal_key(SealPolicy policy) const;

  Platform& platform_;
  std::uint64_t id_;
  std::string name_;
  Measurement mrenclave_;
  Measurement mrsigner_;
  std::uint64_t isv_prod_id_;
  std::uint64_t isv_svn_;
  std::uint64_t heap_base_;
  std::size_t heap_size_;
  std::unordered_map<std::uint32_t, EcallHandler> ecalls_;
  /// Relaxed atomic: pool workers may cross the boundary concurrently
  /// (SGX allows multi-threaded enclave entry); the total stays exact.
  std::atomic<std::uint64_t> transitions_{0};
};

}  // namespace securecloud::sgx
