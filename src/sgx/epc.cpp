#include "sgx/epc.hpp"

namespace securecloud::sgx {

EpcManager::EpcManager(const CostModel& cost, SimClock& clock)
    : cost_(cost), clock_(clock), capacity_pages_(cost.usable_epc_bytes() / cost.page_size) {}

bool EpcManager::touch(std::uint64_t vaddr, bool write) {
  const std::uint64_t page = vaddr / cost_.page_size;
  ++stats_.accesses;
  if (obs_accesses_ != nullptr) obs_accesses_->inc();
  last_evicted_.clear();

  auto it = map_.find(page);
  if (it != map_.end()) {
    // Resident: refresh LRU position.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    if (write) it->second.dirty = true;
    return false;
  }

  // Page fault: make room, then load.
  ++stats_.faults;
  if (obs_faults_ != nullptr) obs_faults_->inc();
  if (flight_ != nullptr && stats_.faults % flight_burst_every_ == 0) {
    flight_->record("epc_fault_burst",
                    "faults=" + std::to_string(stats_.faults) +
                        " resident=" + std::to_string(map_.size()));
  }
  clock_.advance_cycles(cost_.epc_fault_cycles);

  while (map_.size() >= capacity_pages_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto vit = map_.find(victim);
    if (vit->second.dirty) {
      ++stats_.dirty_writebacks;
      if (obs_writebacks_ != nullptr) obs_writebacks_->inc();
      clock_.advance_cycles(cost_.epc_writeback_cycles);
    }
    map_.erase(vit);
    ++stats_.evictions;
    if (obs_evictions_ != nullptr) obs_evictions_->inc();
    last_evicted_.push_back(victim);
  }

  lru_.push_front(page);
  map_.emplace(page, PageInfo{lru_.begin(), write});
  if (obs_resident_ != nullptr) {
    obs_resident_->set(static_cast<std::int64_t>(map_.size()));
  }
  return true;
}

void EpcManager::set_obs(obs::Registry* registry) {
  if (registry == nullptr) {
    obs_accesses_ = obs_faults_ = obs_evictions_ = obs_writebacks_ = nullptr;
    obs_resident_ = nullptr;
    return;
  }
  obs_accesses_ = &registry->counter("sgx_epc_accesses_total");
  obs_faults_ = &registry->counter("sgx_epc_faults_total");
  obs_evictions_ = &registry->counter("sgx_epc_evictions_total");
  obs_writebacks_ = &registry->counter("sgx_epc_dirty_writebacks_total");
  obs_resident_ = &registry->gauge("sgx_epc_resident_pages");
}

void EpcManager::remove_range(std::uint64_t base, std::uint64_t len) {
  const std::uint64_t first = base / cost_.page_size;
  const std::uint64_t last = (base + len - 1) / cost_.page_size;
  for (std::uint64_t page = first; page <= last; ++page) {
    auto it = map_.find(page);
    if (it != map_.end()) {
      lru_.erase(it->second.lru_it);
      map_.erase(it);
    }
  }
}

SecurePageStore::SecurePageStore(ByteView paging_key) : gcm_(paging_key) {}

std::uint64_t SecurePageStore::evict(std::uint64_t page_number, ByteView page) {
  const std::uint64_t version = next_version_++;

  // AAD binds page identity and version; the nonce is derived from the
  // globally unique version, so (key, nonce) pairs never repeat.
  Bytes aad;
  put_u64(aad, page_number);
  put_u64(aad, version);

  StoredPage& slot = store_[page_number];
  if (!slot.ciphertext.empty()) {
    slot.prev_ciphertext = std::move(slot.ciphertext);
    slot.prev_tag = slot.tag;
    slot.prev_version = slot.version;
    slot.has_prev = true;
  }
  slot.ciphertext = gcm_.seal(crypto::nonce_from_counter(version), aad, page, slot.tag);
  slot.version = version;
  version_array_[page_number] = version;
  return version;
}

Result<Bytes> SecurePageStore::load(std::uint64_t page_number) {
  auto vit = version_array_.find(page_number);
  auto sit = store_.find(page_number);
  if (vit == version_array_.end() || sit == store_.end()) {
    return Error::not_found("page was never evicted");
  }
  const StoredPage& slot = sit->second;

  // Freshness: the untrusted copy must carry exactly the version the
  // trusted version array expects.
  if (slot.version != vit->second) {
    return Error::protocol("stale page version (rollback attack detected)");
  }

  Bytes aad;
  put_u64(aad, page_number);
  put_u64(aad, slot.version);
  auto plain = gcm_.open(crypto::nonce_from_counter(slot.version), aad,
                         slot.ciphertext, slot.tag);
  if (!plain.ok()) {
    return Error::integrity("evicted page failed authentication");
  }
  return std::move(plain).value();
}

bool SecurePageStore::tamper_with(std::uint64_t page_number, std::size_t byte_offset) {
  auto it = store_.find(page_number);
  if (it == store_.end() || byte_offset >= it->second.ciphertext.size()) return false;
  it->second.ciphertext[byte_offset] ^= 0x01;
  return true;
}

bool SecurePageStore::rollback_to_previous(std::uint64_t page_number) {
  auto it = store_.find(page_number);
  if (it == store_.end() || !it->second.has_prev) return false;
  StoredPage& slot = it->second;
  slot.ciphertext = slot.prev_ciphertext;
  slot.tag = slot.prev_tag;
  slot.version = slot.prev_version;
  slot.has_prev = false;
  return true;
}

}  // namespace securecloud::sgx
