// Enclave Page Cache (EPC) residency manager and secure paging store.
//
// Two cooperating pieces:
//
//  * EpcManager — fast residency/cost simulation. Tracks which 4 KiB
//    enclave pages are resident in the (size-limited) EPC, evicts LRU on
//    pressure, and counts faults/evictions. This is what the Fig. 3
//    benchmark exercises millions of times.
//
//  * SecurePageStore — a real implementation of EWB/ELDU semantics:
//    evicted page *contents* are AES-GCM encrypted with a per-eviction
//    monotonic version (freshness), stored in untrusted memory, and
//    verified on reload. Tampering and rollback of evicted pages are
//    detected, as SGX guarantees. Used by the sealing/paging tests and by
//    enclaves running in ShieldedHeap "full" mode.
#pragma once

#include <list>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/sim_clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "sgx/cost_model.hpp"
#include "crypto/gcm.hpp"

namespace securecloud::sgx {

/// Statistics accumulated by an EpcManager.
struct EpcStats {
  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;
};

/// LRU-managed EPC residency simulation. Pages are identified by page
/// number (vaddr / page_size); the manager is shared by all enclaves on a
/// platform, as real EPC is.
class EpcManager {
 public:
  EpcManager(const CostModel& cost, SimClock& clock);

  /// Touches the page containing `vaddr`. Charges fault costs to the
  /// clock when the page is not resident (including the eviction of a
  /// victim when the EPC is full). `write` marks the page dirty, making
  /// its later eviction more expensive (EWB writeback).
  /// Returns true when the access was a fault.
  bool touch(std::uint64_t vaddr, bool write = false);

  /// Removes all pages in [base, base+len) (enclave teardown, EREMOVE).
  void remove_range(std::uint64_t base, std::uint64_t len);

  /// Number of pages the EPC can hold (after metadata overhead).
  std::size_t capacity_pages() const { return capacity_pages_; }
  std::size_t resident_pages() const { return map_.size(); }
  const EpcStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Victim page numbers evicted by the most recent touch() — consumers
  /// (cache model, page store) react to these.
  const std::vector<std::uint64_t>& last_evicted() const { return last_evicted_; }

  /// Mirrors EpcStats into `sgx_epc_*` metrics (EPC pressure is exactly
  /// what an SGX-aware scheduler wants exported — Vaucher et al., 2018).
  void set_obs(obs::Registry* registry);

  /// Flight recorder notified of EPC fault bursts: one "epc_fault_burst"
  /// event per `burst_every` cumulative faults (thrash trail for
  /// postmortems without logging every fault).
  void set_flight(obs::FlightRecorder* flight,
                  std::uint64_t burst_every = 256) {
    flight_ = flight;
    flight_burst_every_ = burst_every == 0 ? 1 : burst_every;
  }

 private:
  const CostModel& cost_;
  SimClock& clock_;
  std::size_t capacity_pages_;

  struct PageInfo {
    std::list<std::uint64_t>::iterator lru_it;
    bool dirty = false;
  };
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, PageInfo> map_;
  EpcStats stats_;
  std::vector<std::uint64_t> last_evicted_;

  obs::FlightRecorder* flight_ = nullptr;
  std::uint64_t flight_burst_every_ = 256;

  obs::Counter* obs_accesses_ = nullptr;
  obs::Counter* obs_faults_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_writebacks_ = nullptr;
  obs::Gauge* obs_resident_ = nullptr;
};

/// Real encrypt-on-evict page store (EWB/ELDU semantics).
///
/// The "EPC" side holds plaintext pages; evict() moves a page to the
/// untrusted side under AES-GCM with a fresh version counter, and load()
/// brings it back, failing with kIntegrityViolation on any tampering and
/// kProtocolError on rollback (stale version replayed).
class SecurePageStore {
 public:
  /// `paging_key` plays the role of the CPU's paging key (derived from
  /// the platform's fuse key at boot; never leaves the package).
  explicit SecurePageStore(ByteView paging_key);

  /// Encrypts `page` (page-sized plaintext) out to untrusted storage
  /// under `page_number` identity. Returns the version assigned.
  std::uint64_t evict(std::uint64_t page_number, ByteView page);

  /// Decrypts + verifies the current copy of `page_number`.
  Result<Bytes> load(std::uint64_t page_number);

  /// Untrusted-side mutators used by tests to emulate an attacker.
  bool tamper_with(std::uint64_t page_number, std::size_t byte_offset);
  bool rollback_to_previous(std::uint64_t page_number);

  std::size_t stored_pages() const { return store_.size(); }

 private:
  struct StoredPage {
    Bytes ciphertext;  // nonce-less; nonce derived from version
    crypto::GcmTag tag;
    std::uint64_t version = 0;
    // Previous copy retained to emulate a rollback attacker.
    Bytes prev_ciphertext;
    crypto::GcmTag prev_tag;
    std::uint64_t prev_version = 0;
    bool has_prev = false;
  };

  crypto::AesGcm gcm_;
  std::uint64_t next_version_ = 1;
  // Trusted version array (lives in EPC on real hardware): the version a
  // page must decrypt under. This is what defeats rollback.
  std::unordered_map<std::uint64_t, std::uint64_t> version_array_;
  std::unordered_map<std::uint64_t, StoredPage> store_;
};

}  // namespace securecloud::sgx
