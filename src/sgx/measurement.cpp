#include "sgx/measurement.hpp"

namespace securecloud::sgx {

MeasurementBuilder::MeasurementBuilder(std::uint64_t enclave_size) {
  Bytes header;
  put_str(header, "ECREATE");
  put_u64(header, enclave_size);
  hash_.update(header);
}

void MeasurementBuilder::add_page(std::uint64_t page_offset, PageType type,
                                  ByteView content) {
  Bytes meta;
  put_str(meta, "EADD");
  put_u64(meta, page_offset);
  put_u8(meta, static_cast<std::uint8_t>(type));
  hash_.update(meta);
  // EEXTEND measures the page content itself.
  hash_.update(content);
}

Measurement MeasurementBuilder::finalize() && {
  Bytes footer;
  put_str(footer, "EINIT");
  hash_.update(footer);
  return hash_.finish();
}

Measurement mrsigner_of(ByteView signer_public_key) {
  return crypto::Sha256::hash(signer_public_key);
}

}  // namespace securecloud::sgx
