// Enclave measurement (MRENCLAVE / MRSIGNER).
//
// Mirrors the SGX build sequence: ECREATE fixes the enclave's size,
// each EADD+EEXTEND folds a page's content and its location/permissions
// into a running SHA-256, and EINIT finalizes the digest. Any change to
// the enclave's initial code, data, or layout changes MRENCLAVE, which is
// what attestation and sealing key derivation bind to.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace securecloud::sgx {

using Measurement = crypto::Sha256Digest;

enum class PageType : std::uint8_t {
  kTcs = 0,   // thread control structure
  kCode = 1,  // executable
  kData = 2,  // writable initial data
};

class MeasurementBuilder {
 public:
  /// ECREATE: begins a measurement for an enclave of `size` bytes.
  explicit MeasurementBuilder(std::uint64_t enclave_size);

  /// EADD + EEXTEND: measures one page at `page_offset` (bytes from the
  /// enclave base; page-aligned by contract) with its type/permissions.
  void add_page(std::uint64_t page_offset, PageType type, ByteView content);

  /// EINIT: finalizes and returns MRENCLAVE. The builder is exhausted.
  Measurement finalize() &&;

 private:
  crypto::Sha256 hash_;
};

/// MRSIGNER: identity of the sealing authority = hash of the public key
/// that signed the enclave (SIGSTRUCT).
Measurement mrsigner_of(ByteView signer_public_key);

}  // namespace securecloud::sgx
