#include "sgx/memory_model.hpp"

namespace securecloud::sgx {

PlainMemory::PlainMemory(const CostModel& cost, SimClock& clock)
    : cost_(cost), clock_(clock), llc_(cost.llc_size_bytes, cost.cache_line_size, 16) {}

void PlainMemory::access(std::uint64_t vaddr, std::size_t size, bool /*write*/) {
  const std::uint64_t first = vaddr / cost_.cache_line_size;
  const std::uint64_t last = (vaddr + (size ? size : 1) - 1) / cost_.cache_line_size;
  for (std::uint64_t line = first; line <= last; ++line) {
    ++stats_.accesses;
    if (llc_.access(line * cost_.cache_line_size)) {
      ++stats_.cache_hits;
      clock_.advance_cycles(cost_.cache_hit_cycles);
    } else {
      ++stats_.cache_misses;
      clock_.advance_cycles(cost_.llc_miss_plain_cycles);
    }
  }
}

EnclaveMemory::EnclaveMemory(const CostModel& cost, SimClock& clock)
    : cost_(cost),
      clock_(clock),
      llc_(cost.llc_size_bytes, cost.cache_line_size, 16),
      epc_(cost, clock) {}

void EnclaveMemory::access(std::uint64_t vaddr, std::size_t size, bool write) {
  // Page residency first: an access to a non-resident page traps and the
  // OS swaps it in (EpcManager charges the fault/eviction cycles).
  const std::uint64_t first_page = vaddr / cost_.page_size;
  const std::uint64_t last_page = (vaddr + (size ? size : 1) - 1) / cost_.page_size;
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    const bool faulted = epc_.touch(page * cost_.page_size, write);
    if (faulted) {
      // Lines of evicted victims leave the cache with their pages, and
      // the freshly loaded page arrives cold.
      for (const std::uint64_t victim : epc_.last_evicted()) {
        llc_.invalidate_range(victim * cost_.page_size, cost_.page_size);
      }
      llc_.invalidate_range(page * cost_.page_size, cost_.page_size);
    }
  }

  const std::uint64_t first = vaddr / cost_.cache_line_size;
  const std::uint64_t last = (vaddr + (size ? size : 1) - 1) / cost_.cache_line_size;
  for (std::uint64_t line = first; line <= last; ++line) {
    ++stats_.accesses;
    if (llc_.access(line * cost_.cache_line_size)) {
      ++stats_.cache_hits;
      clock_.advance_cycles(cost_.cache_hit_cycles);
    } else {
      ++stats_.cache_misses;
      // Misses inside the protected region are served through the MEE.
      clock_.advance_cycles(cost_.llc_miss_mee_cycles);
    }
  }
}

}  // namespace securecloud::sgx
