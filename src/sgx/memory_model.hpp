// Memory access cost models: plain DRAM vs. inside-enclave (MEE + EPC).
//
// Data-structure code that wants its memory behaviour simulated (the SCBR
// matching engine, the shielded heap) calls MemoryModel::access for each
// logical memory touch. The model charges cycles to a SimClock:
//
//   PlainMemory    — LLC hit/miss against ordinary DRAM; this is the
//                    "outside the enclave" execution of Fig. 3.
//   EnclaveMemory  — the same LLC, but misses pay the MEE penalty and
//                    page-granular residency is enforced by an EpcManager,
//                    so working sets beyond the EPC page-fault; this is
//                    the "inside the enclave" execution of Fig. 3.
//
// Identical application code runs against either model, exactly as the
// paper runs "the same code inside and outside secure enclaves".
#pragma once

#include <memory>

#include "common/sim_clock.hpp"
#include "sgx/cache_model.hpp"
#include "sgx/cost_model.hpp"
#include "sgx/epc.hpp"

namespace securecloud::sgx {

struct MemoryStats {
  std::uint64_t accesses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class MemoryModel {
 public:
  virtual ~MemoryModel() = default;

  /// Simulates touching [vaddr, vaddr + size). Charges the clock.
  virtual void access(std::uint64_t vaddr, std::size_t size, bool write = false) = 0;

  /// Charges pure compute (no memory) cycles — used by engines to model
  /// per-comparison ALU work identically inside and outside.
  virtual void compute(std::uint64_t cycles) = 0;

  virtual const MemoryStats& stats() const = 0;
  virtual SimClock& clock() = 0;
};

/// Ordinary process memory: LLC-modeled, no encryption penalties.
class PlainMemory final : public MemoryModel {
 public:
  PlainMemory(const CostModel& cost, SimClock& clock);

  void access(std::uint64_t vaddr, std::size_t size, bool write = false) override;
  void compute(std::uint64_t cycles) override { clock_.advance_cycles(cycles); }
  const MemoryStats& stats() const override { return stats_; }
  SimClock& clock() override { return clock_; }

 private:
  const CostModel& cost_;
  SimClock& clock_;
  CacheModel llc_;
  MemoryStats stats_;
};

/// Enclave memory: EPC residency + MEE-protected cache misses.
class EnclaveMemory final : public MemoryModel {
 public:
  EnclaveMemory(const CostModel& cost, SimClock& clock);

  void access(std::uint64_t vaddr, std::size_t size, bool write = false) override;
  void compute(std::uint64_t cycles) override { clock_.advance_cycles(cycles); }
  const MemoryStats& stats() const override { return stats_; }
  SimClock& clock() override { return clock_; }

  const EpcStats& epc_stats() const { return epc_.stats(); }
  EpcManager& epc() { return epc_; }

  /// Forwards to the EPC manager (`sgx_epc_*` metrics).
  void set_obs(obs::Registry* registry) { epc_.set_obs(registry); }

 private:
  const CostModel& cost_;
  SimClock& clock_;
  CacheModel llc_;
  EpcManager epc_;
  MemoryStats stats_;
};

}  // namespace securecloud::sgx
