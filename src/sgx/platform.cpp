#include "sgx/platform.hpp"

namespace securecloud::sgx {

namespace {

crypto::Ed25519KeyPair make_attestation_key(crypto::EntropySource& entropy) {
  return crypto::ed25519_keypair(entropy.array<32>());
}

}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      clock_(config_.cpu_ghz),
      entropy_(config_.entropy_seed),
      sealing_root_key_(entropy_.bytes(32)),
      report_key_(entropy_.bytes(32)),
      attestation_key_(make_attestation_key(entropy_)),
      quoting_enclave_(config_.platform_id, report_key_, attestation_key_),
      memory_(std::make_unique<EnclaveMemory>(config_.cost, clock_)) {}

Result<Enclave*> Platform::create_enclave(const EnclaveImage& image) {
  // EINIT: reject images whose SIGSTRUCT does not match the measurement.
  const Measurement measured = image.expected_measurement();
  if (!crypto::ed25519_verify(image.signer, measured, image.sigstruct)) {
    return Error::attestation("SIGSTRUCT verification failed for image '" +
                              image.name + "'");
  }

  // Serializes id/heap allocation and the EPC loads below; concurrent
  // creations from pool workers see disjoint address ranges and ids.
  std::lock_guard<std::mutex> lock(enclaves_mu_);
  const std::uint64_t heap_base = next_heap_base_;
  const std::size_t measured_bytes = image.code.size() + image.initial_data.size();
  const std::uint64_t total_span =
      ((measured_bytes + config_.cost.page_size - 1) / config_.cost.page_size) *
          config_.cost.page_size +
      image.heap_size;
  next_heap_base_ += ((total_span / config_.cost.page_size) + 16) * config_.cost.page_size;

  // EADD: loading measured pages populates the EPC (and can evict).
  for (std::uint64_t off = 0; off < measured_bytes; off += config_.cost.page_size) {
    memory_->epc().touch(heap_base + off, /*write=*/true);
  }

  enclaves_.push_back(std::make_unique<Enclave>(*this, next_enclave_id_++, image,
                                                measured, heap_base));
  return enclaves_.back().get();
}

void Platform::destroy_enclave(std::uint64_t enclave_id) {
  std::lock_guard<std::mutex> lock(enclaves_mu_);
  for (auto it = enclaves_.begin(); it != enclaves_.end(); ++it) {
    if ((*it)->id() == enclave_id) {
      const std::uint64_t base = (*it)->heap_base();
      memory_->epc().remove_range(base, (*it)->heap_size());
      enclaves_.erase(it);
      return;
    }
  }
}

Enclave* Platform::find_enclave(std::uint64_t enclave_id) {
  std::lock_guard<std::mutex> lock(enclaves_mu_);
  for (auto& e : enclaves_) {
    if (e->id() == enclave_id) return e.get();
  }
  return nullptr;
}

void Platform::provision(AttestationService& service) const {
  service.register_platform(config_.platform_id, quoting_enclave_.attestation_public_key());
}

}  // namespace securecloud::sgx
