// Platform: one SGX-capable machine.
//
// Owns the hardware-rooted secrets (sealing fuse key, report key,
// attestation key), the shared EPC, the simulated clock, and the quoting
// enclave. Enclaves are created from signed images; the platform measures
// them and enforces SIGSTRUCT verification (EINIT).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sim_clock.hpp"
#include "crypto/entropy.hpp"
#include "sgx/attestation.hpp"
#include "sgx/cost_model.hpp"
#include "sgx/enclave.hpp"

namespace securecloud::sgx {

struct PlatformConfig {
  std::string platform_id = "platform-0";
  CostModel cost;
  /// Seed for the platform's deterministic entropy (fuse keys, nonces).
  std::uint64_t entropy_seed = 1;
  double cpu_ghz = 2.6;
};

class Platform {
 public:
  explicit Platform(PlatformConfig config = {});

  /// ECREATE/EADD/EEXTEND/EINIT: verifies the image signature, measures
  /// all pages (charging EPC load costs), and returns the running
  /// enclave. Fails with kAttestationFailure when SIGSTRUCT does not
  /// match the measured content.
  Result<Enclave*> create_enclave(const EnclaveImage& image);

  /// EREMOVE: destroys an enclave and frees its EPC pages.
  void destroy_enclave(std::uint64_t enclave_id);

  Enclave* find_enclave(std::uint64_t enclave_id);

  /// Produces a remotely verifiable quote from a local report.
  Result<Quote> quote(const Report& report) const { return quoting_enclave_.quote(report); }

  /// Registers this platform with an attestation service (models EPID
  /// provisioning at manufacturing time).
  void provision(AttestationService& service) const;

  const std::string& platform_id() const { return config_.platform_id; }
  const CostModel& cost() const { return config_.cost; }
  SimClock& clock() { return clock_; }
  EnclaveMemory& memory() { return *memory_; }
  crypto::EntropySource& entropy() { return entropy_; }

  /// Exports the platform's EPC pressure as `sgx_epc_*` metrics.
  void set_obs(obs::Registry* registry) { memory_->set_obs(registry); }

  // Used by Enclave for sealing/report generation.
  ByteView sealing_root_key() const { return sealing_root_key_; }
  ByteView report_key() const { return report_key_; }

 private:
  PlatformConfig config_;
  SimClock clock_;
  crypto::DeterministicEntropy entropy_;
  Bytes sealing_root_key_;
  Bytes report_key_;
  crypto::Ed25519KeyPair attestation_key_;
  QuotingEnclave quoting_enclave_;
  std::unique_ptr<EnclaveMemory> memory_;
  /// Guards the enclave table and the id/heap allocators: pool workers
  /// may create/destroy/look up enclaves concurrently. Enclave objects
  /// themselves are not covered — callers must not race a destroy
  /// against use of the same enclave (same contract as real EREMOVE).
  std::mutex enclaves_mu_;
  std::vector<std::unique_ptr<Enclave>> enclaves_;
  std::uint64_t next_enclave_id_ = 1;
  std::uint64_t next_heap_base_ = 1ull << 32;  // enclave ranges, disjoint
};

}  // namespace securecloud::sgx
