#include "sgx/policy.hpp"

#include <algorithm>

namespace securecloud::sgx {

Status AttestationPolicy::check(const Report& report) const {
  if (required_prod_id_ && report.isv_prod_id != *required_prod_id_) {
    return Error::attestation("enclave is from a different product line");
  }
  if (report.isv_svn < min_svn_) {
    return Error::attestation(
        "enclave security version below policy floor (vulnerable build?)");
  }

  const bool enclave_ok =
      std::find(allowed_enclaves_.begin(), allowed_enclaves_.end(),
                report.mrenclave) != allowed_enclaves_.end();
  const bool signer_ok =
      std::find(allowed_signers_.begin(), allowed_signers_.end(), report.mrsigner) !=
      allowed_signers_.end();

  if (allowed_enclaves_.empty() && allowed_signers_.empty()) {
    return Error::attestation("policy allows no identities");
  }
  if (!enclave_ok && !signer_ok) {
    return Error::attestation("enclave identity not allowed by policy");
  }
  return {};
}

Result<Report> verify_with_policy(const AttestationService& service,
                                  const Quote& quote,
                                  const AttestationPolicy& policy) {
  auto report = service.verify(quote);
  if (!report.ok()) return report.error();
  SC_RETURN_IF_ERROR(policy.check(*report));
  return report;
}

}  // namespace securecloud::sgx
