// Relying-party attestation policy.
//
// Verifying a quote's signature (AttestationService) only proves the
// report came from a genuine platform; whether the attested enclave is
// *trusted* is the relying party's decision. A policy captures that
// decision declaratively: which enclave identities (MRENCLAVE) and/or
// signers (MRSIGNER) are acceptable, and the minimum security version
// (ISV SVN) — the knob that implements TCB recovery, where a patched
// enclave bumps its SVN and relying parties raise the floor to exclude
// vulnerable builds.
#pragma once

#include <vector>

#include "common/result.hpp"
#include "sgx/attestation.hpp"

namespace securecloud::sgx {

class AttestationPolicy {
 public:
  /// Accepts exactly this enclave identity.
  AttestationPolicy& allow_enclave(const Measurement& mrenclave) {
    allowed_enclaves_.push_back(mrenclave);
    return *this;
  }
  /// Accepts any enclave from this signer.
  AttestationPolicy& allow_signer(const Measurement& mrsigner) {
    allowed_signers_.push_back(mrsigner);
    return *this;
  }
  /// Rejects reports below this security version (TCB recovery floor).
  AttestationPolicy& require_min_svn(std::uint64_t svn) {
    min_svn_ = svn;
    return *this;
  }
  /// Restricts to a product line (ISV product id).
  AttestationPolicy& require_product(std::uint64_t prod_id) {
    required_prod_id_ = prod_id;
    return *this;
  }

  /// Evaluates a (signature-verified) report against the policy.
  Status check(const Report& report) const;

 private:
  std::vector<Measurement> allowed_enclaves_;
  std::vector<Measurement> allowed_signers_;
  std::uint64_t min_svn_ = 0;
  std::optional<std::uint64_t> required_prod_id_;
};

/// Convenience: verify a quote with `service` and evaluate `policy`.
Result<Report> verify_with_policy(const AttestationService& service,
                                  const Quote& quote, const AttestationPolicy& policy);

}  // namespace securecloud::sgx
