#include "smartgrid/fault.hpp"

#include <algorithm>
#include <vector>

namespace securecloud::smartgrid {

double FaultDetector::median_of(const std::deque<double>& window) const {
  std::vector<double> sorted(window.begin(), window.end());
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2),
                   sorted.end());
  return sorted[sorted.size() / 2];
}

std::optional<FaultAlert> FaultDetector::observe(const std::string& feeder_id,
                                                 std::uint64_t t_s,
                                                 double aggregate_power_w) {
  FeederState& state = feeders_[feeder_id];
  const std::uint64_t cycles_before = clock_.cycles();
  clock_.advance_cycles(config_.process_cycles);

  std::optional<FaultAlert> alert;
  if (state.window.size() >= config_.min_samples) {
    const double median = median_of(state.window);
    const bool collapsed = aggregate_power_w < config_.drop_fraction * median;
    if (collapsed && !state.faulted) {
      state.faulted = true;
      FaultAlert a;
      a.feeder_id = feeder_id;
      a.detected_at_s = t_s;
      a.before_w = median;
      a.after_w = aggregate_power_w;
      // Latency: cycles spent between sample arrival and the decision.
      const std::uint64_t cycles = clock_.cycles() - cycles_before;
      a.detection_latency_ns = static_cast<std::uint64_t>(
          static_cast<double>(cycles) / clock_.frequency_ghz());
      alert = a;
    } else if (!collapsed && state.faulted &&
               aggregate_power_w > 0.5 * median) {
      state.faulted = false;  // recovered; re-arm
    }
  }

  // Faulted samples do not poison the baseline window.
  if (!state.faulted) {
    state.window.push_back(aggregate_power_w);
    if (state.window.size() > config_.window) state.window.pop_front();
  }
  return alert;
}

void Orchestrator::on_fault(const FaultAlert& alert) {
  isolated_.insert(alert.feeder_id);
  boosted_.insert(alert.feeder_id);
  ++actions_;
}

void Orchestrator::on_recovery(const std::string& feeder_id) {
  isolated_.erase(feeder_id);
  boosted_.erase(feeder_id);
  ++actions_;
}

}  // namespace securecloud::smartgrid
