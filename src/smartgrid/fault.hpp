// Fault detection and responsive orchestration (§VI use case 2).
//
// "Applications that affect energy delivery and fault detection ...
//  processing tasks that trigger actions in the smart grid must be
//  executed in a timely fashion. ... Orchestration services detect
//  anomalies within milliseconds."
//
// FaultDetector: streaming anomaly detector over feeder power telemetry —
// a feeder whose aggregate flow collapses relative to its rolling median
// signals an outage. Detection latency is measured on the simulated
// clock.
//
// Orchestrator: reacts to faults by reconfiguring the virtual
// infrastructure (isolating the feeder, boosting the QoS class of the
// analytics services for the affected region) — state transitions that
// tests assert on.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/sim_clock.hpp"
#include "smartgrid/meter.hpp"

namespace securecloud::smartgrid {

struct FaultAlert {
  std::string feeder_id;
  std::uint64_t detected_at_s = 0;        // grid-time of the triggering sample
  std::uint64_t detection_latency_ns = 0; // simulated processing latency
  double before_w = 0;
  double after_w = 0;
};

struct FaultDetectorConfig {
  std::size_t window = 16;       // rolling window of per-feeder samples
  double drop_fraction = 0.15;   // alert when flow < fraction * median
  std::size_t min_samples = 8;   // warmup before alerts are possible
  /// Simulated per-sample processing cost (enclave-resident filtering).
  std::uint64_t process_cycles = 2'000;
};

class FaultDetector {
 public:
  FaultDetector(FaultDetectorConfig config, SimClock& clock)
      : config_(config), clock_(clock) {}

  /// Feeds the aggregate power flow of a feeder at time t. Returns an
  /// alert the moment the collapse is detected. Re-alerts only after the
  /// feeder recovers.
  std::optional<FaultAlert> observe(const std::string& feeder_id, std::uint64_t t_s,
                                    double aggregate_power_w);

 private:
  struct FeederState {
    std::deque<double> window;
    bool faulted = false;
  };
  double median_of(const std::deque<double>& window) const;

  FaultDetectorConfig config_;
  SimClock& clock_;
  std::map<std::string, FeederState> feeders_;
};

/// Infrastructure reactions triggered by faults.
class Orchestrator {
 public:
  void on_fault(const FaultAlert& alert);
  void on_recovery(const std::string& feeder_id);

  bool is_isolated(const std::string& feeder_id) const {
    return isolated_.count(feeder_id) > 0;
  }
  /// QoS boost for analytics serving an affected region.
  bool is_boosted(const std::string& feeder_id) const {
    return boosted_.count(feeder_id) > 0;
  }
  std::size_t actions_taken() const { return actions_; }

 private:
  std::set<std::string> isolated_;
  std::set<std::string> boosted_;
  std::size_t actions_ = 0;
};

}  // namespace securecloud::smartgrid
