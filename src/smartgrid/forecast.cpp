#include "smartgrid/forecast.hpp"

#include <cmath>
#include <numeric>

namespace securecloud::smartgrid {

void LoadForecaster::observe(double load_w) {
  const std::size_t m = config_.season_length;

  // Bootstrap: collect one full season, then initialize level/seasonals.
  if (observations_ < m) {
    first_season_.push_back(load_w);
    ++observations_;
    if (observations_ == m) {
      level_ = std::accumulate(first_season_.begin(), first_season_.end(), 0.0) /
               static_cast<double>(m);
      trend_ = 0;
      for (std::size_t i = 0; i < m; ++i) {
        seasonal_[i] = first_season_[i] - level_;
      }
    }
    return;
  }

  // Score the one-step forecast made before seeing this value.
  if (auto predicted = forecast(1); predicted && std::abs(load_w) > 1e-9) {
    abs_pct_error_sum_ += std::abs((*predicted - load_w) / load_w);
    ++forecast_count_;
  }

  const std::size_t season_index = observations_ % m;
  const double previous_level = level_;
  level_ = config_.alpha * (load_w - seasonal_[season_index]) +
           (1 - config_.alpha) * (level_ + trend_);
  trend_ = config_.beta * (level_ - previous_level) + (1 - config_.beta) * trend_;
  seasonal_[season_index] = config_.gamma * (load_w - level_) +
                            (1 - config_.gamma) * seasonal_[season_index];
  ++observations_;
}

std::optional<double> LoadForecaster::forecast(std::size_t steps_ahead) const {
  if (observations_ < config_.season_length || steps_ahead == 0) return std::nullopt;
  const std::size_t m = config_.season_length;
  const std::size_t season_index = (observations_ + steps_ahead - 1) % m;
  return level_ + static_cast<double>(steps_ahead) * trend_ + seasonal_[season_index];
}

}  // namespace securecloud::smartgrid
