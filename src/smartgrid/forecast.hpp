// Short-term load forecasting (§VI: analyses that "trigger reactions that
// interfere with the physical world (load control or consumer
// notifications)").
//
// Holt–Winters additive triple exponential smoothing with a daily
// seasonal cycle — the standard short-term load forecasting baseline.
// Runs inside the analytics enclave over the decrypted feed; only the
// forecasts (aggregated, non-sensitive) leave.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace securecloud::smartgrid {

struct ForecastConfig {
  std::size_t season_length = 96;  // samples per day (15-minute readings)
  double alpha = 0.25;  // level smoothing
  double beta = 0.02;   // trend smoothing
  double gamma = 0.15;  // seasonal smoothing
};

class LoadForecaster {
 public:
  explicit LoadForecaster(ForecastConfig config = {}) : config_(config) {
    seasonal_.assign(config_.season_length, 0.0);
  }

  /// Feeds the next observation (fixed cadence assumed).
  void observe(double load_w);

  /// Forecast `steps_ahead` samples into the future (>=1). Unavailable
  /// until one full season has been observed.
  std::optional<double> forecast(std::size_t steps_ahead = 1) const;

  /// Mean absolute percentage error of the one-step forecasts so far
  /// (computed online against each arriving observation).
  double mape() const {
    return forecast_count_ == 0 ? 0.0
                                : 100.0 * abs_pct_error_sum_ / static_cast<double>(forecast_count_);
  }

  bool warmed_up() const { return observations_ >= 2 * config_.season_length; }
  std::size_t observations() const { return observations_; }

 private:
  ForecastConfig config_;
  double level_ = 0;
  double trend_ = 0;
  std::vector<double> seasonal_;
  std::size_t observations_ = 0;
  // First-season bootstrap buffer.
  std::vector<double> first_season_;
  // Online forecast-accuracy tracking.
  double abs_pct_error_sum_ = 0;
  std::size_t forecast_count_ = 0;
};

}  // namespace securecloud::smartgrid
