#include "smartgrid/meter.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace securecloud::smartgrid {

Bytes MeterReading::serialize() const {
  Bytes b;
  put_str(b, meter_id);
  put_str(b, feeder_id);
  put_u64(b, timestamp_s);
  put_u64(b, std::bit_cast<std::uint64_t>(power_w));
  put_u64(b, std::bit_cast<std::uint64_t>(voltage_v));
  return b;
}

Result<MeterReading> MeterReading::deserialize(ByteView wire) {
  ByteReader r(wire);
  MeterReading reading;
  std::uint64_t power_raw = 0, voltage_raw = 0;
  if (!r.get_str(reading.meter_id) || !r.get_str(reading.feeder_id) ||
      !r.get_u64(reading.timestamp_s) || !r.get_u64(power_raw) ||
      !r.get_u64(voltage_raw) || !r.done()) {
    return Error::protocol("malformed meter reading");
  }
  reading.power_w = std::bit_cast<double>(power_raw);
  reading.voltage_v = std::bit_cast<double>(voltage_raw);
  return reading;
}

MeterFleet::MeterFleet(GridConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  Rng rng(seed);
  household_scale_.reserve(config_.households);
  household_phase_.reserve(config_.households);
  for (std::size_t h = 0; h < config_.households; ++h) {
    household_scale_.push_back(0.5 + rng.uniform01() * 1.5);
    household_phase_.push_back(rng.uniform01() * 2.0 * std::numbers::pi);
  }
}

std::string MeterFleet::meter_id(std::size_t household) const {
  return "meter-" + std::to_string(household);
}

std::string MeterFleet::feeder_id(std::size_t household) const {
  return "feeder-" + std::to_string(household % config_.feeders);
}

bool MeterFleet::is_thief(std::size_t household) const {
  for (const auto& theft : config_.thefts) {
    if (theft.household == household) return true;
  }
  return false;
}

double MeterFleet::true_load(std::size_t household, std::uint64_t t) const {
  // Diurnal double-peak profile: morning (~7h) and evening (~19h) peaks.
  const double day_fraction =
      static_cast<double>(t % 86'400) / 86'400.0 * 2.0 * std::numbers::pi;
  const double diurnal =
      0.5 + 0.3 * std::sin(day_fraction - std::numbers::pi / 2 +
                           household_phase_[household] * 0.1) +
      0.2 * std::sin(2 * day_fraction + household_phase_[household]);
  const double level = config_.base_load_w +
                       (config_.peak_load_w - config_.base_load_w) *
                           std::max(0.0, diurnal) * household_scale_[household];
  return level;
}

std::vector<MeterReading> MeterFleet::household_series(std::size_t household) const {
  // Deterministic per-(household) stream independent of call order.
  Rng rng(seed_ ^ (0x9e3779b9ull * (household + 1)));
  std::vector<MeterReading> series;
  series.reserve(config_.horizon_s / config_.interval_s);

  // Active injections for this household / its feeder.
  const TheftInjection* theft = nullptr;
  for (const auto& t : config_.thefts) {
    if (t.household == household) theft = &t;
  }
  const std::size_t feeder = household % config_.feeders;

  for (std::uint64_t t = 0; t < config_.horizon_s; t += config_.interval_s) {
    MeterReading reading;
    reading.meter_id = meter_id(household);
    reading.feeder_id = feeder_id(household);
    reading.timestamp_s = t;

    double load = true_load(household, t) + rng.normal(0, config_.noise_w);
    load = std::max(10.0, load);
    if (theft != nullptr && t >= theft->start_s) {
      load *= theft->reported_fraction;  // bypassed meter under-reports
    }
    reading.power_w = load;

    double voltage = 230.0 + rng.normal(0, 1.0);
    for (const auto& q : config_.quality_events) {
      if (q.feeder == feeder && t >= q.start_s && t < q.start_s + q.duration_s) {
        voltage *= q.voltage_factor;
      }
    }
    reading.voltage_v = voltage;
    series.push_back(std::move(reading));
  }
  return series;
}

std::vector<std::vector<MeterReading>> MeterFleet::all_series() const {
  std::vector<std::vector<MeterReading>> all;
  all.reserve(config_.households);
  for (std::size_t h = 0; h < config_.households; ++h) {
    all.push_back(household_series(h));
  }
  return all;
}

}  // namespace securecloud::smartgrid
