// Smart-meter data generator (§VI use case 1 substrate).
//
// "Smart meters collect detailed power consumption data from residential
// and industrial consumers. Collecting data at sub-minute granularities
// enables sophisticated applications, such as power theft prevention and
// early detection of power quality issues."
//
// The generator produces deterministic per-household consumption series:
// a base load, a diurnal pattern (morning/evening peaks), appliance
// events, and Gaussian noise. Anomalies can be injected:
//   * theft      — a sustained drop in *reported* consumption (meter
//                  bypass) from a start time onward;
//   * quality    — voltage sags/swells on a feeder during a window.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace securecloud::smartgrid {

struct MeterReading {
  std::string meter_id;
  std::string feeder_id;
  std::uint64_t timestamp_s = 0;
  double power_w = 0;     // instantaneous consumption
  double voltage_v = 230; // supply voltage at the meter

  Bytes serialize() const;
  static Result<MeterReading> deserialize(ByteView wire);
};

struct TheftInjection {
  std::size_t household = 0;       // index of the dishonest household
  std::uint64_t start_s = 0;       // bypass active from here on
  double reported_fraction = 0.3;  // fraction of real usage still reported
};

struct QualityInjection {
  std::size_t feeder = 0;
  std::uint64_t start_s = 0;
  std::uint64_t duration_s = 600;
  double voltage_factor = 0.85;  // 0.85 = sag, 1.1 = swell
};

struct GridConfig {
  std::size_t households = 100;
  std::size_t feeders = 4;                // households round-robin on feeders
  std::uint64_t interval_s = 30;          // sub-minute granularity
  std::uint64_t horizon_s = 24 * 3600;
  double base_load_w = 200;
  double peak_load_w = 2'000;
  double noise_w = 50;
  std::vector<TheftInjection> thefts;
  std::vector<QualityInjection> quality_events;
};

class MeterFleet {
 public:
  MeterFleet(GridConfig config, std::uint64_t seed);

  /// All readings of one household over the horizon, in time order.
  std::vector<MeterReading> household_series(std::size_t household) const;

  /// Every reading of every household (grouped by household).
  std::vector<std::vector<MeterReading>> all_series() const;

  /// Ground truth for evaluating detectors.
  bool is_thief(std::size_t household) const;
  std::string meter_id(std::size_t household) const;
  std::string feeder_id(std::size_t household) const;

  const GridConfig& config() const { return config_; }

 private:
  double true_load(std::size_t household, std::uint64_t t) const;

  GridConfig config_;
  std::uint64_t seed_;
  std::vector<double> household_scale_;  // per-household consumption level
  std::vector<double> household_phase_;  // diurnal phase shift
};

}  // namespace securecloud::smartgrid
