#include "smartgrid/quality.hpp"

#include <cmath>

namespace securecloud::smartgrid {

const char* to_string(QualityIssue issue) {
  switch (issue) {
    case QualityIssue::kSag: return "sag";
    case QualityIssue::kSwell: return "swell";
  }
  return "unknown";
}

std::optional<QualityAlert> QualityMonitor::observe(const MeterReading& reading) {
  FeederState& state = feeders_[reading.feeder_id];
  const double lo = config_.nominal_v * (1.0 - config_.band_fraction);
  const double hi = config_.nominal_v * (1.0 + config_.band_fraction);
  const bool out = reading.voltage_v < lo || reading.voltage_v > hi;

  if (!out) {
    state.out_of_band_streak = 0;
    if (state.open) {
      state.open->end_s = reading.timestamp_s;
      closed_.push_back(*state.open);
      state.open.reset();
    }
    return std::nullopt;
  }

  ++state.out_of_band_streak;
  if (state.open) {
    // Track the extreme within the event.
    if (state.open->issue == QualityIssue::kSag) {
      state.open->worst_voltage_v = std::min(state.open->worst_voltage_v, reading.voltage_v);
    } else {
      state.open->worst_voltage_v = std::max(state.open->worst_voltage_v, reading.voltage_v);
    }
    return std::nullopt;
  }
  if (state.out_of_band_streak < config_.debounce) return std::nullopt;

  QualityAlert alert;
  alert.feeder_id = reading.feeder_id;
  alert.issue = reading.voltage_v < lo ? QualityIssue::kSag : QualityIssue::kSwell;
  alert.start_s = reading.timestamp_s;
  alert.worst_voltage_v = reading.voltage_v;
  state.open = alert;
  return alert;
}

std::vector<QualityAlert> QualityMonitor::open_alerts() const {
  std::vector<QualityAlert> out;
  for (const auto& [feeder, state] : feeders_) {
    if (state.open) out.push_back(*state.open);
  }
  return out;
}

}  // namespace securecloud::smartgrid
