// Power-quality monitoring (§VI use case 1: "early detection of power
// quality issues").
//
// Streaming detector over voltage readings: per feeder, an alert opens
// when voltage leaves the nominal band (EN 50160: ±10% of 230 V) for a
// debounce count of consecutive readings, and closes when it returns.
// Runs inside the analytics enclave as part of the ingest pipeline.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "smartgrid/meter.hpp"

namespace securecloud::smartgrid {

enum class QualityIssue : std::uint8_t { kSag = 0, kSwell = 1 };

const char* to_string(QualityIssue issue);

struct QualityAlert {
  std::string feeder_id;
  QualityIssue issue = QualityIssue::kSag;
  std::uint64_t start_s = 0;
  std::uint64_t end_s = 0;  // 0 while still open
  double worst_voltage_v = 230;
};

struct QualityMonitorConfig {
  double nominal_v = 230.0;
  double band_fraction = 0.10;  // alert outside nominal * (1 ± band)
  /// Consecutive out-of-band readings before opening an alert (debounce
  /// against measurement noise).
  std::size_t debounce = 3;
};

class QualityMonitor {
 public:
  explicit QualityMonitor(QualityMonitorConfig config = {}) : config_(config) {}

  /// Feeds one reading. Returns an alert when one *opens* (so operators
  /// are notified immediately, not at the end of the event).
  std::optional<QualityAlert> observe(const MeterReading& reading);

  /// Alerts that have both opened and closed.
  const std::vector<QualityAlert>& closed_alerts() const { return closed_; }
  /// Currently open alerts per feeder.
  std::vector<QualityAlert> open_alerts() const;

 private:
  struct FeederState {
    std::size_t out_of_band_streak = 0;
    std::optional<QualityAlert> open;
  };

  QualityMonitorConfig config_;
  std::map<std::string, FeederState> feeders_;
  std::vector<QualityAlert> closed_;
};

}  // namespace securecloud::smartgrid
