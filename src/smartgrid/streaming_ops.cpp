#include "smartgrid/streaming_ops.hpp"

#include <map>
#include <memory>

namespace securecloud::smartgrid {

streams::SourceFn meter_stream_source(const MeterFleet& fleet) {
  struct State {
    std::vector<std::vector<MeterReading>> series;  // [household][tick]
    std::size_t tick = 0;
    std::size_t household = 0;
  };
  auto state = std::make_shared<State>();
  state->series = fleet.all_series();

  // Every household samples on the same tick grid, so time-major
  // iteration (tick outer, household inner) is nondecreasing event time.
  return [state]() -> std::optional<streams::Record> {
    while (state->tick <
           (state->series.empty() ? 0 : state->series.front().size())) {
      if (state->household >= state->series.size()) {
        state->household = 0;
        ++state->tick;
        continue;
      }
      const MeterReading& reading = state->series[state->household][state->tick];
      ++state->household;
      streams::Record record;
      record.key = reading.meter_id;
      record.timestamp_s = reading.timestamp_s;
      record.value = reading.power_w;
      return record;
    }
    return std::nullopt;
  };
}

namespace {
constexpr const char* kFlagPrefix = "flag/";
constexpr const char* kBillPrefix = "bill/";

bool strip_prefix(const std::string& key, const char* prefix,
                  std::string& meter_id) {
  const std::string_view p(prefix);
  if (key.size() <= p.size() || key.compare(0, p.size(), p) != 0) return false;
  meter_id = key.substr(p.size());
  return true;
}
}  // namespace

bool is_flag_record(const streams::Record& record, std::string& meter_id) {
  return strip_prefix(record.key, kFlagPrefix, meter_id);
}

bool is_bill_record(const streams::Record& record, std::string& meter_id) {
  return strip_prefix(record.key, kBillPrefix, meter_id);
}

StageOps streaming_theft_stage(StreamingTheftConfig config) {
  struct Aggregate {
    double base_sum = 0, base_count = 0;
    double recent_sum = 0, recent_count = 0;
  };
  struct State {
    StreamingTheftConfig config;
    std::map<std::string, Aggregate> by_meter;  // ordered: deterministic flush
  };
  auto state = std::make_shared<State>();
  state->config = config;

  StageOps ops;
  ops.process = [state](const streams::Record& record) {
    streams::WindowPayload window;
    if (streams::get_window_payload(record, window)) {
      // Whole-window attribution by window start; with the window size
      // dividing split_s this matches the batch per-reading split.
      Aggregate& agg = state->by_meter[record.key];
      if (window.window_start_s < state->config.split_s) {
        agg.base_sum += window.sum;
        agg.base_count += static_cast<double>(window.count);
      } else {
        agg.recent_sum += window.sum;
        agg.recent_count += static_cast<double>(window.count);
      }
    }
    return std::vector<streams::Record>{record};  // pass-through
  };
  ops.flush = [state]() {
    std::vector<streams::Record> flags;
    for (const auto& [meter, agg] : state->by_meter) {
      if (agg.base_count <= 0 || agg.recent_count <= 0) continue;
      const double baseline = agg.base_sum / agg.base_count;
      const double recent = agg.recent_sum / agg.recent_count;
      const double ratio = baseline > 0 ? recent / baseline : 1.0;
      if (ratio >= state->config.ratio_threshold) continue;
      streams::Record flag;
      flag.key = kFlagPrefix + meter;
      flag.value = ratio;
      flags.push_back(std::move(flag));
    }
    return flags;
  };
  return ops;
}

StageOps streaming_billing_stage(StreamingBillingConfig config) {
  struct State {
    StreamingBillingConfig config;
    std::map<std::string, double> owed;  // meter -> accumulated cost
  };
  auto state = std::make_shared<State>();
  state->config = config;

  StageOps ops;
  ops.process = [state](const streams::Record& record) {
    streams::WindowPayload window;
    if (streams::get_window_payload(record, window) && window.count > 0) {
      // Mean power over the window times its duration = energy billed.
      const double mean_w = window.sum / static_cast<double>(window.count);
      const double hours =
          static_cast<double>(window.window_end_s - window.window_start_s) /
          3600.0;
      const double kwh = mean_w * hours / 1000.0;
      const std::uint64_t hour = (window.window_start_s / 3600) % 24;
      const bool peak = hour >= state->config.peak_start_hour &&
                        hour < state->config.peak_end_hour;
      const double rate = peak ? state->config.peak_rate_per_kwh
                               : state->config.offpeak_rate_per_kwh;
      state->owed[record.key] += kwh * rate;
    }
    return std::vector<streams::Record>{record};  // pass-through
  };
  ops.flush = [state]() {
    std::vector<streams::Record> bills;
    for (const auto& [meter, cost] : state->owed) {
      streams::Record bill;
      bill.key = kBillPrefix + meter;
      bill.value = cost;
      bills.push_back(std::move(bill));
    }
    return bills;
  };
  return ops;
}

}  // namespace securecloud::smartgrid
