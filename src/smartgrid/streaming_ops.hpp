// Smart-grid operators for the SecureStreams pipeline (§VI use case 1,
// streamed).
//
// The batch plane runs theft detection as a secure MapReduce job over a
// day of encrypted readings; this adapter set runs the *same analysis*
// as streaming operators so a city-scale fleet can be processed
// continuously:
//
//   meter_stream_source  — interleaves the fleet's readings time-major
//                          (all meters at t, then t+interval, ...), the
//                          arrival order a concentrator would produce.
//   streaming_theft_stage— a process stage over *window* records: sums
//                          per-meter baseline/recent consumption from
//                          closed windows, passes every record through,
//                          and emits one "flag/<meter>" record per
//                          detected thief at end of stream. With a
//                          window size dividing split_s, the flagged
//                          set equals the batch TheftDetector's exactly
//                          (tests/streams_test.cpp golden test).
//   streaming_billing_stage — prices each meter's window energy under a
//                          peak/off-peak tariff and emits one
//                          "bill/<meter>" record at end of stream.
//
// Both stages are pass-through: window records continue downstream, so
// theft and billing stack in one pipeline and the sink sees aggregates,
// flags, and bills on one stream.
#pragma once

#include "smartgrid/meter.hpp"
#include "streams/pipeline.hpp"

namespace securecloud::smartgrid {

/// Source over `fleet`'s full horizon, time-major, nondecreasing in
/// event time (the order the pipeline's watermark generator assumes).
/// Copies the series out of the fleet, so the fleet may be discarded.
streams::SourceFn meter_stream_source(const MeterFleet& fleet);

struct StreamingTheftConfig {
  /// Readings before this timestamp form the baseline. Must be a
  /// multiple of the upstream window size, so no window straddles the
  /// split — the invariant that makes streaming sums equal batch sums.
  std::uint64_t split_s = 12 * 3600;
  double ratio_threshold = 0.65;
};

/// A stateful stage as its operator pair (state shared between them).
struct StageOps {
  streams::ProcessFn process;
  streams::ProcessFlushFn flush;
};

StageOps streaming_theft_stage(StreamingTheftConfig config);

struct StreamingBillingConfig {
  double offpeak_rate_per_kwh = 0.10;
  double peak_rate_per_kwh = 0.25;
  std::uint64_t peak_start_hour = 17;  // [start, end) in local wall hours
  std::uint64_t peak_end_hour = 21;
};

StageOps streaming_billing_stage(StreamingBillingConfig config);

/// True when `record` is a theft flag ("flag/<meter>"); extracts the
/// meter id. Same shape for bills with "bill/".
bool is_flag_record(const streams::Record& record, std::string& meter_id);
bool is_bill_record(const streams::Record& record, std::string& meter_id);

}  // namespace securecloud::smartgrid
