#include "smartgrid/theft_detection.hpp"

#include <algorithm>

namespace securecloud::smartgrid {

std::vector<std::vector<Bytes>> TheftDetector::prepare_partitions(
    const MeterFleet& fleet, std::size_t partitions) {
  partitions = std::max<std::size_t>(1, partitions);
  std::vector<std::vector<Bytes>> plain(partitions);
  for (std::size_t h = 0; h < fleet.config().households; ++h) {
    auto& target = plain[h % partitions];
    for (const auto& reading : fleet.household_series(h)) {
      target.push_back(reading.serialize());
    }
  }
  std::vector<std::vector<Bytes>> encrypted;
  encrypted.reserve(partitions);
  for (auto& p : plain) {
    encrypted.push_back(mapreduce_.encrypt_partition(p));
  }
  return encrypted;
}

Result<TheftReport> TheftDetector::run(
    const TheftDetectionConfig& config,
    const std::vector<std::vector<Bytes>>& partitions) {
  const std::uint64_t split = config.split_s;

  // Map: each reading contributes its power to (meter, window) sums.
  // Emitting sum and count under distinct keys lets a mean-reduce stay a
  // pure fold.
  auto map_fn = [split](ByteView record) -> std::vector<bigdata::KeyValue> {
    auto reading = MeterReading::deserialize(record);
    if (!reading.ok()) return {};
    const char* window = reading->timestamp_s < split ? "base" : "recent";
    return {
        {reading->meter_id + "|" + window + "|sum", reading->power_w},
        {reading->meter_id + "|" + window + "|cnt", 1.0},
    };
  };
  auto reduce_fn = [](const std::string&, const std::vector<double>& values) {
    double total = 0;
    for (const double v : values) total += v;
    return total;
  };

  auto job = mapreduce_.run(config.job, partitions, map_fn, reduce_fn);
  if (!job.ok()) return job.error();

  // Post-processing (runs in the data owner's trusted domain): combine
  // the per-window sums and counts into per-meter means and ratios.
  struct Aggregate {
    double base_sum = 0, base_count = 0;
    double recent_sum = 0, recent_count = 0;
  };
  std::map<std::string, Aggregate> by_meter;
  for (const auto& [key, value] : job->output) {
    const std::size_t p1 = key.find('|');
    const std::size_t p2 = key.find('|', p1 + 1);
    if (p1 == std::string::npos || p2 == std::string::npos) continue;
    const std::string meter = key.substr(0, p1);
    const std::string window = key.substr(p1 + 1, p2 - p1 - 1);
    const std::string kind = key.substr(p2 + 1);

    Aggregate& agg = by_meter[meter];
    if (window == "base") {
      (kind == "sum" ? agg.base_sum : agg.base_count) += value;
    } else {
      (kind == "sum" ? agg.recent_sum : agg.recent_count) += value;
    }
  }

  TheftReport report;
  report.job_stats = job->stats;
  for (const auto& [meter, agg] : by_meter) {
    if (agg.base_count <= 0 || agg.recent_count <= 0) continue;
    TheftReport::Finding finding;
    finding.meter_id = meter;
    finding.baseline_w = agg.base_sum / agg.base_count;
    finding.recent_w = agg.recent_sum / agg.recent_count;
    finding.ratio = finding.baseline_w > 0 ? finding.recent_w / finding.baseline_w : 1.0;
    finding.flagged = finding.ratio < config.ratio_threshold;
    if (finding.flagged) report.flagged.push_back(meter);
    report.findings.push_back(finding);
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const auto& a, const auto& b) { return a.ratio < b.ratio; });
  return report;
}

DetectionQuality evaluate_against_ground_truth(const TheftReport& report,
                                               const MeterFleet& fleet) {
  DetectionQuality quality;
  for (std::size_t h = 0; h < fleet.config().households; ++h) {
    const std::string id = fleet.meter_id(h);
    const bool flagged = std::find(report.flagged.begin(), report.flagged.end(), id) !=
                         report.flagged.end();
    const bool thief = fleet.is_thief(h);
    if (flagged && thief) ++quality.true_positives;
    if (flagged && !thief) ++quality.false_positives;
    if (!flagged && thief) ++quality.false_negatives;
  }
  return quality;
}

}  // namespace securecloud::smartgrid
