// Power-theft detection (§VI use case 1).
//
// A bypassed meter suddenly under-reports. The detector compares each
// meter's average consumption in a recent window against its own
// historical baseline; a sustained drop below a threshold flags the
// meter. The analysis runs as a secure map/reduce job over *encrypted*
// readings — the cloud provider hosting the computation never sees a
// single consumption value (which §VI notes would expose household
// activity patterns).
#pragma once

#include "bigdata/mapreduce.hpp"
#include "smartgrid/meter.hpp"

namespace securecloud::smartgrid {

struct TheftDetectionConfig {
  /// Readings before this timestamp form the baseline; after, the
  /// evaluation window.
  std::uint64_t split_s = 12 * 3600;
  /// Flag meters whose recent/baseline consumption ratio drops below.
  double ratio_threshold = 0.65;
  bigdata::MapReduceConfig job;
};

struct TheftReport {
  struct Finding {
    std::string meter_id;
    double baseline_w = 0;
    double recent_w = 0;
    double ratio = 1.0;
    bool flagged = false;
  };
  std::vector<Finding> findings;      // all meters, sorted by ratio
  std::vector<std::string> flagged;   // meter ids below threshold
  bigdata::JobStats job_stats;
};

class TheftDetector {
 public:
  TheftDetector(sgx::Platform& platform, crypto::EntropySource& entropy)
      : mapreduce_(platform, entropy) {}

  /// Fans the underlying map/reduce job (and partition encryption)
  /// across `pool`; results are identical at any thread count.
  void set_pool(common::ThreadPool* pool) { mapreduce_.set_pool(pool); }

  /// Forwards to the underlying map/reduce engine's set_obs.
  void set_obs(obs::Registry* registry, obs::Tracer* tracer = nullptr) {
    mapreduce_.set_obs(registry, tracer);
  }

  /// Encrypts the fleet's readings into job partitions (data-owner side).
  std::vector<std::vector<Bytes>> prepare_partitions(const MeterFleet& fleet,
                                                     std::size_t partitions);

  /// Runs the detection job over encrypted partitions.
  Result<TheftReport> run(const TheftDetectionConfig& config,
                          const std::vector<std::vector<Bytes>>& partitions);

 private:
  bigdata::SecureMapReduce mapreduce_;
};

/// Detector quality versus ground truth.
struct DetectionQuality {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double precision() const {
    const auto d = true_positives + false_positives;
    return d == 0 ? 1.0 : static_cast<double>(true_positives) / static_cast<double>(d);
  }
  double recall() const {
    const auto d = true_positives + false_negatives;
    return d == 0 ? 1.0 : static_cast<double>(true_positives) / static_cast<double>(d);
  }
};

DetectionQuality evaluate_against_ground_truth(const TheftReport& report,
                                               const MeterFleet& fleet);

}  // namespace securecloud::smartgrid
