#include "streams/pipeline.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "bigdata/mapreduce.hpp"

namespace securecloud::streams {

namespace {
const char* kind_name(StageKind kind) {
  switch (kind) {
    case StageKind::kSource: return "source";
    case StageKind::kMap: return "map";
    case StageKind::kFilter: return "filter";
    case StageKind::kKeyBy: return "key_by";
    case StageKind::kWindow: return "window";
    case StageKind::kProcess: return "process";
    case StageKind::kSink: return "sink";
  }
  return "?";
}

bool has_operator(const StageSpec& spec) {
  switch (spec.kind) {
    case StageKind::kSource: return static_cast<bool>(spec.source);
    case StageKind::kMap: return static_cast<bool>(spec.map);
    case StageKind::kFilter: return static_cast<bool>(spec.filter);
    case StageKind::kKeyBy: return static_cast<bool>(spec.key_by);
    case StageKind::kWindow: return true;  // the aggregator is the operator
    case StageKind::kProcess: return static_cast<bool>(spec.process);
    case StageKind::kSink: return static_cast<bool>(spec.sink);
  }
  return false;
}

/// The typing rules a Pipeline chain must satisfy; shared between
/// PipelineBuilder::build() and the Pipeline constructor so a
/// hand-rolled stage list gets the same checks.
Status validate_stages(const std::vector<StageSpec>& stages) {
  if (stages.size() < 2) {
    return Error::invalid_argument("pipeline needs at least a source and a sink");
  }
  std::set<std::string> names;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageSpec& spec = stages[i];
    if (spec.name.empty()) {
      return Error::invalid_argument("stage " + std::to_string(i) + " is unnamed");
    }
    if (!names.insert(spec.name).second) {
      return Error::invalid_argument("duplicate stage name '" + spec.name +
                                     "' (names become fabric node names)");
    }
    if (i == 0 && spec.kind != StageKind::kSource) {
      return Error::invalid_argument("first stage must be a source, '" + spec.name +
                                     "' is a " + kind_name(spec.kind));
    }
    if (i > 0 && spec.kind == StageKind::kSource) {
      return Error::invalid_argument("source '" + spec.name +
                                     "' must be the first stage");
    }
    if (i + 1 == stages.size() && spec.kind != StageKind::kSink) {
      return Error::invalid_argument("last stage must be a sink, '" + spec.name +
                                     "' is a " + kind_name(spec.kind));
    }
    if (i + 1 < stages.size() && spec.kind == StageKind::kSink) {
      return Error::invalid_argument("sink '" + spec.name +
                                     "' must be the last stage");
    }
    if (!has_operator(spec)) {
      return Error::invalid_argument("stage '" + spec.name + "' (" +
                                     kind_name(spec.kind) +
                                     ") is missing its operator function");
    }
  }
  return {};
}

void put_f64(Bytes& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

bool get_f64(ByteReader& in, double& v) {
  std::uint64_t bits = 0;
  if (!in.get_u64(bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}
}  // namespace

// --- builder ---------------------------------------------------------------

PipelineBuilder& PipelineBuilder::source(std::string name, SourceFn fn,
                                         std::uint64_t compute_ns_per_record) {
  StageSpec spec;
  spec.kind = StageKind::kSource;
  spec.name = std::move(name);
  spec.compute_ns_per_record = compute_ns_per_record;
  spec.source = std::move(fn);
  stages_.push_back(std::move(spec));
  return *this;
}

PipelineBuilder& PipelineBuilder::map(std::string name, MapFn fn,
                                      std::uint64_t compute_ns_per_record) {
  StageSpec spec;
  spec.kind = StageKind::kMap;
  spec.name = std::move(name);
  spec.compute_ns_per_record = compute_ns_per_record;
  spec.map = std::move(fn);
  stages_.push_back(std::move(spec));
  return *this;
}

PipelineBuilder& PipelineBuilder::filter(std::string name, FilterFn fn,
                                         std::uint64_t compute_ns_per_record) {
  StageSpec spec;
  spec.kind = StageKind::kFilter;
  spec.name = std::move(name);
  spec.compute_ns_per_record = compute_ns_per_record;
  spec.filter = std::move(fn);
  stages_.push_back(std::move(spec));
  return *this;
}

PipelineBuilder& PipelineBuilder::key_by(std::string name, KeyFn fn,
                                         std::uint64_t compute_ns_per_record) {
  StageSpec spec;
  spec.kind = StageKind::kKeyBy;
  spec.name = std::move(name);
  spec.compute_ns_per_record = compute_ns_per_record;
  spec.key_by = std::move(fn);
  stages_.push_back(std::move(spec));
  return *this;
}

PipelineBuilder& PipelineBuilder::window(std::string name, WindowConfig config,
                                         std::uint64_t compute_ns_per_record) {
  StageSpec spec;
  spec.kind = StageKind::kWindow;
  spec.name = std::move(name);
  spec.compute_ns_per_record = compute_ns_per_record;
  spec.window = config;
  stages_.push_back(std::move(spec));
  return *this;
}

PipelineBuilder& PipelineBuilder::process(std::string name, ProcessFn fn,
                                          ProcessFlushFn flush,
                                          std::uint64_t compute_ns_per_record) {
  StageSpec spec;
  spec.kind = StageKind::kProcess;
  spec.name = std::move(name);
  spec.compute_ns_per_record = compute_ns_per_record;
  spec.process = std::move(fn);
  spec.process_flush = std::move(flush);
  stages_.push_back(std::move(spec));
  return *this;
}

PipelineBuilder& PipelineBuilder::sink(std::string name, SinkFn fn,
                                       std::uint64_t compute_ns_per_record) {
  StageSpec spec;
  spec.kind = StageKind::kSink;
  spec.name = std::move(name);
  spec.compute_ns_per_record = compute_ns_per_record;
  spec.sink = std::move(fn);
  stages_.push_back(std::move(spec));
  return *this;
}

Result<std::vector<StageSpec>> PipelineBuilder::build() const {
  SC_RETURN_IF_ERROR(validate_stages(stages_));
  return stages_;
}

// --- window-result records -------------------------------------------------

Record window_record(const bigdata::WindowResult& result, std::uint64_t now_ns) {
  Record record;
  record.key = result.key;
  record.timestamp_s = result.window_start_s;
  record.value = result.sum;
  record.origin_ns = now_ns;  // latency anchor: the window-close instant
  put_u64(record.payload, result.window_start_s);
  put_u64(record.payload, result.window_end_s);
  put_f64(record.payload, result.sum);
  put_f64(record.payload, result.min);
  put_f64(record.payload, result.max);
  put_u64(record.payload, static_cast<std::uint64_t>(result.count));
  return record;
}

bool get_window_payload(const Record& record, WindowPayload& payload) {
  ByteReader r(record.payload);
  return r.get_u64(payload.window_start_s) && r.get_u64(payload.window_end_s) &&
         get_f64(r, payload.sum) && get_f64(r, payload.min) &&
         get_f64(r, payload.max) && r.get_u64(payload.count) && r.done();
}

// --- pipeline setup --------------------------------------------------------

Pipeline::Pipeline(net::Fabric& fabric, std::vector<StageSpec> stages,
                   PipelineConfig config)
    : fabric_(fabric), config_(std::move(config)) {
  topology_ = validate_stages(stages);
  for (std::size_t i = 0; i < stages.size(); ++i) {
    auto stage = std::make_unique<Stage>();
    stage->index = i;
    stage->spec = std::move(stages[i]);
    stages_.push_back(std::move(stage));
  }
}

Pipeline::~Pipeline() = default;

void Pipeline::set_obs(obs::Registry* registry) {
  if (!ready_) shared_registry_ = registry;
}

void Pipeline::wire_counters(Stage& stage, obs::Registry* registry) {
  if (registry == nullptr) return;
  stage.obs_records_in = &registry->counter("streams_records_in_total");
  stage.obs_records_out = &registry->counter("streams_records_out_total");
  stage.obs_batches = &registry->counter("streams_batches_total");
  stage.obs_watermarks = &registry->counter("streams_watermarks_total");
  stage.obs_credits_granted = &registry->counter("streams_credits_granted_total");
  stage.obs_credit_stalls = &registry->counter("streams_credit_stalls_total");
  stage.obs_stall_ns = &registry->counter("streams_stall_ns_total");
}

Status Pipeline::setup(sgx::AttestationService& service) {
  if (ready_) return Error::protocol("pipeline already set up");
  SC_RETURN_IF_ERROR(topology_);

  // --- stages: fabric nodes, links, observability ------------------------
  // The fabric node (and NodeObs bundle) is *named after the stage*, so
  // spans carry the stage name as their node label and the critical-path
  // analyzer's dominant_node IS the bottleneck stage's name.
  for (auto& stage : stages_) {
    stage->node = fabric_.add_node(stage->spec.name);
    if (stage->index + 1 < stages_.size()) {
      stage->credits = config_.credit_window;
    }
  }
  for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
    SC_RETURN_IF_ERROR(
        fabric_.connect(stages_[i]->node, stages_[i + 1]->node, config_.link));
  }
  for (auto& stage : stages_) {
    if (shared_registry_ == nullptr) {
      stage->onode = std::make_unique<obs::NodeObs>(
          stage->spec.name, fabric_.clock(),
          static_cast<std::uint32_t>(stage->node), config_.flight_capacity);
      wire_counters(*stage, &stage->onode->registry);
    } else {
      wire_counters(*stage, shared_registry_);
    }
  }

  // --- window engines ----------------------------------------------------
  for (auto& stage : stages_) {
    if (stage->spec.kind != StageKind::kWindow) continue;
    Stage* raw = stage.get();
    stage->agg = std::make_unique<bigdata::TumblingWindowAggregator>(
        stage->spec.window.size_s, stage->spec.window.allowed_lateness_s,
        [this, raw](const bigdata::WindowResult& result) {
          raw->window_out.push_back(window_record(result, fabric_.now_ns()));
        });
    stage->agg->set_obs(stage->onode ? &stage->onode->registry : shared_registry_);
  }

  // --- platforms and enclaves --------------------------------------------
  // Stages attest as the canonical worker image: operators run inside the
  // same measured enclave the MapReduce plane ships.
  const sgx::EnclaveImage image = bigdata::mapreduce_worker_image();
  for (auto& stage : stages_) {
    sgx::PlatformConfig cfg;
    cfg.platform_id = "platform-stage-" + stage->spec.name;
    cfg.entropy_seed = config_.entropy_seed_base + stage->index;
    stage->platform = std::make_unique<sgx::Platform>(cfg);
    stage->platform->provision(service);
    if (stage->onode) {
      stage->platform->memory().epc().set_flight(&stage->onode->flight);
    }
    auto enclave = stage->platform->create_enclave(image);
    if (!enclave.ok()) return enclave.error();
    stage->enclave = *enclave;
    stage->demux = std::make_unique<net::SessionDemux>(fabric_, stage->node,
                                                       kSessionChannel);
    SC_RETURN_IF_ERROR(stage->demux->bind());
  }

  // --- key dissemination down the chain ----------------------------------
  // The source mints the pipeline key; every edge, walked source-down,
  // runs an attested handshake and releases the key through the sealed
  // session — so no stage joins the data plane without proving the
  // pinned MRENCLAVE.
  const sgx::Measurement policy = stages_[0]->enclave->mrenclave();
  stages_[0]->key = stages_[0]->platform->entropy().bytes(16);
  attach_flow(*stages_[0]);
  for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
    SC_RETURN_IF_ERROR(establish_edge(service, i, i + 1, policy));
  }

  ready_ = true;
  return {};
}

Status Pipeline::establish_edge(sgx::AttestationService& service,
                                std::size_t upstream, std::size_t downstream,
                                const sgx::Measurement& policy) {
  Stage& up = *stages_[upstream];
  Stage& down = *stages_[downstream];
  const net::AttestedSession::Config::RetryConfig retry{
      .retransmit_timeout_ns = config_.session_retransmit_timeout_ns,
      .max_retries = config_.session_max_retries,
  };

  auto responder = std::make_unique<net::AttestedSession>(
      net::AttestedSession::Role::kResponder,
      net::AttestedSession::Config{
          .fabric = &fabric_,
          .self = down.node,
          .peer = up.node,
          .channel = kSessionChannel,
          .enclave = down.enclave,
          .platform = down.platform.get(),
          .attestation = &service,
          .expected_peer_mrenclave = policy,
          .retry = retry,
      });
  Stage* down_ptr = &down;
  responder->set_on_record([this, down_ptr](Bytes record) {
    on_key_record(*down_ptr, std::move(record));
  });
  responder->set_obs(down.onode ? &down.onode->registry : shared_registry_);
  if (down.onode) responder->set_flight(&down.onode->flight);
  down.demux->add(up.node, responder.get());

  auto initiator = std::make_unique<net::AttestedSession>(
      net::AttestedSession::Role::kInitiator,
      net::AttestedSession::Config{
          .fabric = &fabric_,
          .self = up.node,
          .peer = down.node,
          .channel = kSessionChannel,
          .enclave = up.enclave,
          .platform = up.platform.get(),
          .attestation = &service,
          .expected_peer_mrenclave = policy,
          .retry = retry,
      });
  initiator->set_obs(up.onode ? &up.onode->registry : shared_registry_);
  if (up.onode) initiator->set_flight(&up.onode->flight);
  up.demux->add(down.node, initiator.get());

  SC_RETURN_IF_ERROR(initiator->start());
  fabric_.run_until_idle();
  if (!initiator->established()) {
    return initiator->failure().ok()
               ? Error::unavailable("handshake with stage '" + down.spec.name +
                                    "' did not complete")
               : initiator->failure().error();
  }
  if (!responder->established()) {
    return responder->failure().ok()
               ? Error::unavailable("stage '" + down.spec.name +
                                    "' did not finish the handshake")
               : responder->failure().error();
  }

  // The only place the pipeline key crosses the wire: one sealed record.
  Bytes record;
  put_blob(record, up.key);
  SC_RETURN_IF_ERROR(initiator->send(record));
  fabric_.run_until_idle();
  if (down.key.empty()) {
    return Error::protocol("stage '" + down.spec.name +
                           "' did not accept the pipeline key");
  }
  up.sessions[downstream] = std::move(initiator);
  down.sessions[upstream] = std::move(responder);
  return {};
}

void Pipeline::on_key_record(Stage& stage, Bytes record) {
  ByteReader r(record);
  Bytes key;
  if (!r.get_blob(key) || !r.done() || key.empty()) return;
  stage.key = std::move(key);
  attach_flow(stage);
}

void Pipeline::attach_flow(Stage& stage) {
  stage.flow = std::make_unique<bigdata::FlowNode>(fabric_, stage.node, stage.key,
                                                   config_.flow);
  Stage* ptr = &stage;
  stage.flow->set_on_payload([this, ptr](net::NodeId from, Bytes payload) {
    on_frame(*ptr, from, std::move(payload));
  });
  stage.flow->set_obs(stage.onode ? &stage.onode->registry : shared_registry_);
  if (stage.onode) stage.flow->set_flight(&stage.onode->flight);
}

// --- the data plane --------------------------------------------------------

void Pipeline::on_frame(Stage& stage, net::NodeId from, Bytes payload) {
  auto frame = decode_frame(payload);
  if (!frame.ok()) return;  // flow guaranteed integrity; a bad frame is a peer bug
  const bool from_upstream =
      stage.index > 0 && from == stages_[stage.index - 1]->node;
  const bool from_downstream =
      stage.index + 1 < stages_.size() && from == stages_[stage.index + 1]->node;
  switch (frame->type) {
    case FrameType::kCredit:
      if (!from_downstream) return;
      stage.credits += frame->credits;
      break;
    case FrameType::kData:
      if (!from_upstream) return;
      stage.stats.records_in += frame->batch.size();
      obs_inc(stage.obs_records_in, frame->batch.size());
      for (Record& record : frame->batch) {
        stage.inq.push_back(Item{Item::Kind::kRecord, std::move(record), 0});
        ++stage.inq_records;
      }
      break;
    case FrameType::kWatermark:
      if (!from_upstream) return;
      stage.inq.push_back(Item{Item::Kind::kWatermark, {}, frame->watermark_s});
      break;
    case FrameType::kEos:
      if (!from_upstream) return;
      stage.inq.push_back(Item{Item::Kind::kEos, {}, 0});
      break;
  }
  pump(stage.index);
}

void Pipeline::pump(std::size_t index) {
  Stage& stage = *stages_[index];
  flush_out(stage);
  if (stage.spec.kind == StageKind::kSource) maybe_generate(stage);
  maybe_consume(stage);
  flush_out(stage);  // controls consumed inline may have appended output
  maybe_grant(stage);
}

void Pipeline::flush_out(Stage& stage) {
  if (stage.index + 1 >= stages_.size() || !stage.flow) return;
  Stage& down = *stages_[stage.index + 1];
  while (!stage.outq.empty()) {
    const Item::Kind kind = stage.outq.front().kind;
    if (kind == Item::Kind::kWatermark) {
      (void)stage.flow->send(down.node,
                             encode_watermark_frame(stage.outq.front().watermark_s),
                             root_ctx_);
      stage.outq.pop_front();
      continue;
    }
    if (kind == Item::Kind::kEos) {
      (void)stage.flow->send(down.node, encode_eos_frame(), root_ctx_);
      stage.outq.pop_front();
      continue;
    }
    // Data records consume credits: none left means the downstream's
    // queue is full — stall here, deterministically, until it grants.
    if (stage.credits == 0) {
      if (stage.stalled_since_ns == 0) {
        stage.stalled_since_ns = fabric_.now_ns();
        ++stage.stats.credit_stalls;
        obs_inc(stage.obs_credit_stalls);
      }
      return;
    }
    if (stage.stalled_since_ns != 0) {
      const std::uint64_t stalled = fabric_.now_ns() - stage.stalled_since_ns;
      stage.stats.stall_ns += stalled;
      obs_inc(stage.obs_stall_ns, stalled);
      stage.stalled_since_ns = 0;
    }
    std::vector<Record> batch;
    while (!stage.outq.empty() && stage.outq.front().kind == Item::Kind::kRecord &&
           batch.size() < config_.batch_size && batch.size() < stage.credits) {
      batch.push_back(std::move(stage.outq.front().record));
      stage.outq.pop_front();
      --stage.outq_records;
    }
    stage.credits -= batch.size();
    (void)stage.flow->send(down.node, encode_data_frame(batch), root_ctx_);
  }
}

void Pipeline::maybe_generate(Stage& stage) {
  if (stage.busy || stage.source_done) return;
  // The source's own output bound: while stalled output piles up to the
  // credit window, generation pauses — bounded memory under backpressure.
  if (stage.outq_records >= config_.credit_window) return;
  std::vector<Record> pulled;
  while (pulled.size() < config_.batch_size) {
    auto next = stage.spec.source();
    if (!next.has_value()) {
      stage.source_done = true;
      break;
    }
    pulled.push_back(std::move(*next));
  }
  stage.busy = true;
  stage.pending_out = std::move(pulled);
  stage.batch_span = std::make_unique<obs::Span>(
      stage.tracer(), "stage." + stage.spec.name, root_ctx_);
  const std::uint64_t charge = fabric_.scaled_compute_ns(
      stage.node,
      stage.spec.compute_ns_per_record *
          std::max<std::uint64_t>(1, stage.pending_out.size()));
  const std::size_t index = stage.index;
  fabric_.schedule(charge, [this, index] { emit_generated(index); });
}

void Pipeline::emit_generated(std::size_t index) {
  Stage& stage = *stages_[index];
  const std::uint64_t now = fabric_.now_ns();
  if (!stage.pending_out.empty()) {
    // Source order is nondecreasing in event time, so the batch maximum
    // is its last record — the watermark candidate.
    const std::uint64_t max_ts = stage.pending_out.back().timestamp_s;
    for (Record& record : stage.pending_out) {
      record.origin_ns = now;
      push_out_record(stage, std::move(record));
    }
    if (!stage.watermark_started ||
        max_ts >= stage.last_watermark + config_.watermark_interval_s) {
      stage.outq.push_back(Item{Item::Kind::kWatermark, {}, max_ts});
      stage.watermark_started = true;
      stage.last_watermark = max_ts;
      ++stage.stats.watermarks;
      obs_inc(stage.obs_watermarks);
    }
  }
  stage.pending_out.clear();
  if (stage.source_done) {
    stage.outq.push_back(Item{Item::Kind::kEos, {}, 0});
  }
  ++stage.stats.batches;
  obs_inc(stage.obs_batches);
  stage.batch_span.reset();
  stage.busy = false;
  pump(index);
}

void Pipeline::maybe_consume(Stage& stage) {
  if (stage.busy) return;
  // Control records at the queue front are handled inline: they are
  // cheap, serial, and must not wait behind a compute charge.
  while (!stage.inq.empty() && stage.inq.front().kind != Item::Kind::kRecord) {
    Item item = std::move(stage.inq.front());
    stage.inq.pop_front();
    if (item.kind == Item::Kind::kWatermark) {
      ++stage.stats.watermarks;
      obs_inc(stage.obs_watermarks);
      if (stage.agg) {
        stage.agg->advance_to(item.watermark_s);
        for (Record& record : stage.window_out) {
          push_out_record(stage, std::move(record));
        }
        stage.window_out.clear();
      }
      if (stage.spec.kind != StageKind::kSink) {
        stage.outq.push_back(Item{Item::Kind::kWatermark, {}, item.watermark_s});
      }
    } else {  // kEos
      if (stage.agg) {
        (void)stage.agg->flush();  // drop count stays readable via late_dropped()
        for (Record& record : stage.window_out) {
          push_out_record(stage, std::move(record));
        }
        stage.window_out.clear();
      }
      if (stage.spec.kind == StageKind::kProcess && stage.spec.process_flush) {
        for (Record& record : stage.spec.process_flush()) {
          push_out_record(stage, std::move(record));
        }
      }
      if (stage.spec.kind == StageKind::kSink) {
        stage.done = true;
      } else {
        stage.outq.push_back(Item{Item::Kind::kEos, {}, 0});
      }
    }
  }
  if (stage.inq.empty() || stage.inq.front().kind != Item::Kind::kRecord) return;
  // Backpressure hold: a stage whose own output backlog reached the
  // credit window stops consuming — so it stops granting, and the stall
  // propagates upstream instead of growing queues.
  if (stage.spec.kind != StageKind::kSink &&
      stage.outq_records >= config_.credit_window) {
    return;
  }
  std::vector<Record> batch;
  while (!stage.inq.empty() && stage.inq.front().kind == Item::Kind::kRecord &&
         batch.size() < config_.batch_size) {
    batch.push_back(std::move(stage.inq.front().record));
    stage.inq.pop_front();
    --stage.inq_records;
  }
  begin_batch(stage, std::move(batch));
}

void Pipeline::begin_batch(Stage& stage, std::vector<Record> batch) {
  stage.busy = true;
  stage.pending_in = std::move(batch);
  stage.pending_out.clear();
  stage.batch_span = std::make_unique<obs::Span>(
      stage.tracer(), "stage." + stage.spec.name, root_ctx_);
  apply_pure(stage);
  const std::uint64_t charge = fabric_.scaled_compute_ns(
      stage.node,
      stage.spec.compute_ns_per_record *
          std::max<std::uint64_t>(1, stage.pending_in.size()));
  const std::size_t index = stage.index;
  fabric_.schedule(charge, [this, index] { end_batch(index); });
}

void Pipeline::apply_pure(Stage& stage) {
  // The only pool-parallel point in the pipeline: pure per-record
  // transforms into pre-assigned slots between two serial fabric events,
  // then merged in index order — bit-identical at any thread count.
  const std::size_t n = stage.pending_in.size();
  switch (stage.spec.kind) {
    case StageKind::kMap: {
      std::vector<Record> out(n);
      common::run_indexed(pool_, n, [&](std::size_t i) {
        out[i] = stage.spec.map(stage.pending_in[i]);
      });
      stage.pending_out = std::move(out);
      break;
    }
    case StageKind::kFilter: {
      std::vector<std::uint8_t> keep(n, 0);
      common::run_indexed(pool_, n, [&](std::size_t i) {
        keep[i] = stage.spec.filter(stage.pending_in[i]) ? 1 : 0;
      });
      for (std::size_t i = 0; i < n; ++i) {
        if (keep[i] != 0) stage.pending_out.push_back(std::move(stage.pending_in[i]));
      }
      break;
    }
    case StageKind::kKeyBy: {
      std::vector<std::string> keys(n);
      common::run_indexed(pool_, n, [&](std::size_t i) {
        keys[i] = stage.spec.key_by(stage.pending_in[i]);
      });
      for (std::size_t i = 0; i < n; ++i) {
        Record record = std::move(stage.pending_in[i]);
        record.key = std::move(keys[i]);
        stage.pending_out.push_back(std::move(record));
      }
      break;
    }
    default:
      break;  // stateful operators run serially in end_batch
  }
}

void Pipeline::end_batch(std::size_t index) {
  Stage& stage = *stages_[index];
  const std::uint64_t now = fabric_.now_ns();
  switch (stage.spec.kind) {
    case StageKind::kWindow:
      for (const Record& record : stage.pending_in) {
        stage.agg->observe(record.key, record.timestamp_s, record.value);
      }
      for (Record& record : stage.window_out) {
        stage.pending_out.push_back(std::move(record));
      }
      stage.window_out.clear();
      break;
    case StageKind::kProcess:
      for (const Record& record : stage.pending_in) {
        for (Record& out : stage.spec.process(record)) {
          stage.pending_out.push_back(std::move(out));
        }
      }
      break;
    case StageKind::kSink:
      for (const Record& record : stage.pending_in) {
        stage.spec.sink(record, now);
      }
      break;
    default:
      break;  // pure outputs were pre-computed in apply_pure
  }
  const std::uint64_t consumed = stage.pending_in.size();
  for (Record& record : stage.pending_out) {
    push_out_record(stage, std::move(record));
  }
  stage.pending_in.clear();
  stage.pending_out.clear();
  ++stage.stats.batches;
  obs_inc(stage.obs_batches);
  stage.batch_span.reset();
  stage.busy = false;
  stage.consumed_since_grant += consumed;
  pump(index);
}

void Pipeline::push_out_record(Stage& stage, Record record) {
  if (stage.index + 1 >= stages_.size()) return;  // sink emits nothing
  stage.outq.push_back(Item{Item::Kind::kRecord, std::move(record), 0});
  ++stage.outq_records;
  ++stage.stats.records_out;
  obs_inc(stage.obs_records_out);
}

void Pipeline::maybe_grant(Stage& stage) {
  if (stage.index == 0 || stage.consumed_since_grant == 0 || !stage.flow) return;
  // Grant when a batch's worth accumulated — or whenever the input queue
  // drained, so credits never strand below the batch threshold.
  const bool drained = stage.inq_records == 0 && !stage.busy;
  if (stage.consumed_since_grant < config_.grant_batch && !drained) return;
  Stage& up = *stages_[stage.index - 1];
  (void)stage.flow->send(up.node, encode_credit_frame(stage.consumed_since_grant),
                         root_ctx_);
  stage.stats.credits_granted += stage.consumed_since_grant;
  obs_inc(stage.obs_credits_granted, stage.consumed_since_grant);
  stage.consumed_since_grant = 0;
}

// --- telemetry plane -------------------------------------------------------

Status Pipeline::enable_telemetry(obs::TelemetryMonitor* monitor,
                                  std::uint64_t interval_ns,
                                  std::size_t max_frames_per_stage) {
  if (!ready_) return Error::protocol("pipeline not set up");
  if (shared_registry_ != nullptr) {
    return Error::invalid_argument(
        "telemetry requires per-node obs mode (no shared registry)");
  }
  if (monitor == nullptr || interval_ns == 0 || max_frames_per_stage == 0) {
    return Error::invalid_argument("telemetry needs a monitor, a non-zero "
                                   "interval, and a non-zero frame cap");
  }
  monitor_ = monitor;
  telemetry_interval_ns_ = interval_ns;
  telemetry_max_frames_ = max_frames_per_stage;
  for (auto& stage : stages_) {
    stage->sampler = std::make_unique<obs::TelemetrySampler>(stage->onode.get());
    stage->telemetry_frames = 0;
  }
  return {};
}

void Pipeline::stage_telemetry_tick(std::size_t index) {
  Stage& stage = *stages_[index];
  if (monitor_ == nullptr || stage.sampler == nullptr) return;
  // Stream complete: stop re-arming so the fabric drains. The frame cap
  // bounds ticks on a stalled stream, keeping the zero-event deadlock
  // detector alive.
  if (stages_.back()->done) return;
  if (stage.telemetry_frames >= telemetry_max_frames_) return;
  ++stage.telemetry_frames;
  const obs::TelemetryFrame frame =
      stage.sampler->sample(fabric_.clock().cycles());
  // Round-trip the wire codec: the monitor only ever sees frames that
  // survived (de)serialization, exactly as over a fabric channel.
  auto parsed =
      obs::deserialize_telemetry_frame(obs::serialize_telemetry_frame(frame));
  if (parsed.ok()) (void)monitor_->ingest(*parsed);
  fabric_.schedule(telemetry_interval_ns_,
                   [this, index] { stage_telemetry_tick(index); });
}

// --- driver ----------------------------------------------------------------

Status Pipeline::run() {
  if (!ready_) return Error::protocol("pipeline not set up");
  if (ran_) return Error::protocol("pipeline already ran");
  ran_ = true;
  run_start_ns_ = fabric_.now_ns();
  root_span_ = std::make_unique<obs::Span>(stages_.front()->tracer(),
                                           "stream.pipeline");
  root_ctx_ = root_span_->context();
  pump(0);
  if (monitor_ != nullptr) {
    // Arm per-stage telemetry timers in index order so the event queue's
    // seq tie-break yields the same interleaving on every run.
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      fabric_.schedule(telemetry_interval_ns_,
                       [this, i] { stage_telemetry_tick(i); });
    }
  }
  while (!stages_.back()->done) {
    if (fabric_.run_until_idle() == 0) {
      root_span_.reset();
      Status health_status = health();
      return health_status.ok()
                 ? Error::unavailable("pipeline stalled before the sink saw EOS")
                 : health_status;
    }
  }
  fabric_.run_until_idle();  // drain residual grants, acks, beacons
  wall_ns_ = fabric_.now_ns() - run_start_ns_;
  root_span_.reset();  // root closes after every batch span ended
  return health();
}

PipelineStats Pipeline::stats() const {
  PipelineStats out;
  for (const auto& stage : stages_) {
    StageStats stats = stage->stats;
    stats.name = stage->spec.name;
    if (stage->agg) stats.late_dropped = stage->agg->late_dropped();
    out.credit_stalls += stats.credit_stalls;
    out.stall_ns += stats.stall_ns;
    out.stages.push_back(std::move(stats));
  }
  if (!stages_.empty()) out.records_delivered = stages_.back()->stats.records_in;
  out.wall_ns = wall_ns_;
  return out;
}

Status Pipeline::health() const {
  for (const auto& stage : stages_) {
    if (stage->flow) SC_RETURN_IF_ERROR(stage->flow->health());
    for (const auto& [peer, session] : stage->sessions) {
      if (!session->established()) {
        return session->failure().ok()
                   ? Error::unavailable("session stage '" + stage->spec.name +
                                        "' <-> stage " + std::to_string(peer) +
                                        " not established")
                   : session->failure().error();
      }
    }
  }
  return {};
}

Result<obs::ClusterSnapshot> Pipeline::cluster_snapshot() const {
  if (shared_registry_ != nullptr) {
    return Error::protocol("pipeline is in shared-registry mode");
  }
  if (!ready_) return Error::protocol("pipeline not set up");
  std::vector<obs::NodeSnapshot> nodes;
  for (const auto& stage : stages_) nodes.push_back(stage->onode->snapshot());
  return obs::merge_snapshots(std::move(nodes));
}

net::NodeId Pipeline::stage_node(std::size_t stage) const {
  return stage < stages_.size() ? stages_[stage]->node : 0;
}

obs::NodeObs* Pipeline::stage_obs(std::size_t stage) {
  return stage < stages_.size() ? stages_[stage]->onode.get() : nullptr;
}

}  // namespace securecloud::streams
