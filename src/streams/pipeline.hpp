// SecureStreams: reactive secure stream processing over the cluster
// fabric.
//
// A Pipeline is a linear chain of operator stages — source, map, filter,
// key_by, window, process, sink — each running in its own enclave on a
// fabric node. Setup mirrors the SCBR fabric overlay: every stage gets
// an sgx::Platform + measured enclave, adjacent stages run an attested
// handshake (quotes bound to the channel transcript, MRENCLAVE pinned),
// the pipeline key minted at the source is released hop by hop through
// the sealed sessions, and all inter-stage traffic rides a FlowNode
// keyed by it — chunked, AES-GCM sealed per chunk, NACK-recovered, so
// armed loss/reorder faults are survivable with zero record loss.
//
// Backpressure is credit-based and deterministic. Each stage starts
// with `credit_window` records of budget toward its downstream; data
// records consume one credit each at send, and the downstream grants
// credits back (kCredit frames, upstream) as it consumes. A stage whose
// output queue backs up simply stops consuming — so it stops granting —
// and the stall propagates stage by stage to the source, which pauses
// generation. Nothing is ever dropped for flow-control reasons; the
// only sanctioned loss is a *late* event past its window's grace period
// (counted, and exported as streaming_late_dropped_total). Watermarks,
// EOS, and grants travel outside the credit budget, so the control
// plane that resolves a stall can never itself be stalled.
//
// Event time: the source stamps watermarks from its own emission order
// (nondecreasing event time); window stages feed them to a
// TumblingWindowAggregator (advance_to), emit closed windows as new
// records, and forward the watermark. EOS flushes every open window.
//
// Determinism contract: all queue, credit, and counter mutations happen
// inside fabric events — a serially-driven total order. A ThreadPool
// only ever applies *pure* per-record transforms (map / filter / key_by)
// into pre-assigned slots between two serial points, so outputs, stats,
// and every `streams_*` counter are bit-identical at 1 and 8 threads
// for a fixed fault seed (tests/streams_test.cpp proves it under armed
// kNetLoss + kNetReorder).
//
// Observability: per-stage NodeObs bundles named after the stage, one
// root span ("stream.pipeline") on the source's tracer, and one
// "stage.<name>" span per compute batch adopting the root's remote
// context — so obs::critical_path() over the merged snapshot names the
// bottleneck stage as its dominant node.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bigdata/flow.hpp"
#include "bigdata/streaming.hpp"
#include "common/thread_pool.hpp"
#include "net/session_demux.hpp"
#include "obs/cluster.hpp"
#include "obs/telemetry.hpp"
#include "streams/record.hpp"

namespace securecloud::streams {

enum class StageKind : std::uint8_t {
  kSource,
  kMap,
  kFilter,
  kKeyBy,
  kWindow,
  kProcess,
  kSink,
};

/// Pulls the next record; nullopt ends the stream. Called serially from
/// the source stage's fabric events; must yield nondecreasing
/// timestamp_s (the watermark generator assumes event-time order).
using SourceFn = std::function<std::optional<Record>()>;
/// Pure per-record transform (may run on pool workers).
using MapFn = std::function<Record(const Record&)>;
/// Pure predicate: false drops the record (may run on pool workers).
using FilterFn = std::function<bool(const Record&)>;
/// Pure re-keying (may run on pool workers).
using KeyFn = std::function<std::string(const Record&)>;
/// Stateful one-to-many operator; runs serially in fabric events.
using ProcessFn = std::function<std::vector<Record>(const Record&)>;
/// End-of-stream flush for a process stage (emit retained state).
using ProcessFlushFn = std::function<std::vector<Record>()>;
/// Terminal consumer; `now_ns` is fabric time when the sink's compute
/// charge for the batch completed (latency = now_ns - record.origin_ns).
using SinkFn = std::function<void(const Record&, std::uint64_t now_ns)>;

struct WindowConfig {
  std::uint64_t size_s = 3600;
  std::uint64_t allowed_lateness_s = 0;
};

/// One stage of a pipeline; built through PipelineBuilder, which
/// enforces the typing rules (exactly one source first, one sink last).
struct StageSpec {
  StageKind kind = StageKind::kMap;
  std::string name;
  /// Simulated enclave compute charged per record (scaled by the node's
  /// compute skew); this is what makes a slow stage the bottleneck the
  /// critical-path analyzer names.
  std::uint64_t compute_ns_per_record = 500;
  SourceFn source;
  MapFn map;
  FilterFn filter;
  KeyFn key_by;
  WindowConfig window;
  ProcessFn process;
  ProcessFlushFn process_flush;
  SinkFn sink;
};

/// Fluent, order-checked pipeline assembly. build() returns the stage
/// list or a typed kInvalidArgument naming the first rule violated.
class PipelineBuilder {
 public:
  PipelineBuilder& source(std::string name, SourceFn fn,
                          std::uint64_t compute_ns_per_record = 500);
  PipelineBuilder& map(std::string name, MapFn fn,
                       std::uint64_t compute_ns_per_record = 500);
  PipelineBuilder& filter(std::string name, FilterFn fn,
                          std::uint64_t compute_ns_per_record = 500);
  PipelineBuilder& key_by(std::string name, KeyFn fn,
                          std::uint64_t compute_ns_per_record = 500);
  PipelineBuilder& window(std::string name, WindowConfig config,
                          std::uint64_t compute_ns_per_record = 500);
  PipelineBuilder& process(std::string name, ProcessFn fn,
                           ProcessFlushFn flush = nullptr,
                           std::uint64_t compute_ns_per_record = 500);
  PipelineBuilder& sink(std::string name, SinkFn fn,
                        std::uint64_t compute_ns_per_record = 500);

  /// Validates the chain: at least source + sink, source exactly first,
  /// sink exactly last, every stage named, names unique (they become
  /// fabric node names), every stage carrying its operator fn.
  Result<std::vector<StageSpec>> build() const;

 private:
  std::vector<StageSpec> stages_;
};

struct PipelineConfig {
  /// Applied to every inter-stage link.
  net::LinkConfig link;
  bigdata::FlowConfig flow;
  std::uint64_t entropy_seed_base = 0x57AE;
  std::uint64_t session_retransmit_timeout_ns = 3'000'000;
  std::size_t session_max_retries = 12;
  /// Records a stage may have outstanding (sent, not yet granted back)
  /// toward its downstream; also the source's output-queue bound, so
  /// per-stage memory is O(credit_window) regardless of stream length.
  std::uint64_t credit_window = 64;
  /// Downstream grants after consuming this many records (a residual
  /// grant fires whenever its input queue drains, so credits never
  /// strand below the batch threshold).
  std::uint64_t grant_batch = 16;
  /// Records per data frame / per compute batch.
  std::size_t batch_size = 32;
  /// Source emits a watermark when event time advanced this far past
  /// the last one.
  std::uint64_t watermark_interval_s = 60;
  std::size_t flight_capacity = 64;
};

struct StageStats {
  std::string name;
  std::uint64_t records_in = 0;       // data records received off the link
  std::uint64_t records_out = 0;      // records appended to the output queue
  std::uint64_t batches = 0;          // compute batches charged
  std::uint64_t watermarks = 0;       // watermark controls consumed/emitted
  std::uint64_t credits_granted = 0;  // records granted back upstream
  std::uint64_t credit_stalls = 0;    // times the output stalled on 0 credits
  std::uint64_t stall_ns = 0;         // fabric time spent stalled
  std::uint64_t late_dropped = 0;     // window stage: late events dropped

  bool operator==(const StageStats&) const = default;
};

struct PipelineStats {
  std::vector<StageStats> stages;
  std::uint64_t records_delivered = 0;  // sink's records_in
  std::uint64_t credit_stalls = 0;      // summed over stages
  std::uint64_t stall_ns = 0;
  std::uint64_t wall_ns = 0;  // fabric time, run() start to sink EOS + drain

  bool operator==(const PipelineStats&) const = default;
};

/// Helpers for window-result records: the window stage emits one record
/// per closed window with value = sum and this payload attached.
struct WindowPayload {
  std::uint64_t window_start_s = 0;
  std::uint64_t window_end_s = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::uint64_t count = 0;
};
Record window_record(const bigdata::WindowResult& result, std::uint64_t now_ns);
bool get_window_payload(const Record& record, WindowPayload& payload);

class Pipeline {
 public:
  /// `stages` comes from PipelineBuilder::build(). Nodes and links are
  /// added to `fabric` in setup(); fabric and clock must outlive this.
  Pipeline(net::Fabric& fabric, std::vector<StageSpec> stages,
           PipelineConfig config = {});
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;
  ~Pipeline();

  /// Builds the chain: fabric nodes named after their stage, per-stage
  /// platforms and enclaves, an attested session per edge (established
  /// source-down), the pipeline key released through each session, and
  /// a FlowNode per stage keyed by it.
  Status setup(sgx::AttestationService& service);

  /// Shared-registry mode: call before setup() to aggregate every
  /// stage's counters into one registry instead of per-stage NodeObs
  /// bundles (the bench / TSan-hammer mode; disables tracing).
  void set_obs(obs::Registry* registry);

  /// Pool for the pure per-record transforms (map/filter/key_by).
  /// Outputs are bit-identical with and without it.
  void set_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Telemetry plane (obs v3, per-node mode only): every stage samples
  /// its NodeObs each `interval_ns` of fabric time during run() and
  /// streams the delta frame — through the wire codec — into `monitor`
  /// (caller-owned, must outlive run()). Each stage emits at most
  /// `max_frames_per_stage` frames, so the run() deadlock detector (a
  /// zero-event idle) still fires on a genuinely stalled stream. Call
  /// after setup(), before run().
  Status enable_telemetry(obs::TelemetryMonitor* monitor,
                          std::uint64_t interval_ns,
                          std::size_t max_frames_per_stage = 256);

  /// Drives the stream to completion: source exhaustion, EOS through
  /// every stage, sink done, all flow traffic settled. Single-shot.
  /// Returns kUnavailable if the fabric idles before the sink saw EOS
  /// (a credit-protocol deadlock — by construction unreachable) or the
  /// first flow failure.
  Status run();

  PipelineStats stats() const;

  /// First failure across stage flows and sessions.
  Status health() const;

  /// Merged per-stage observability (per-node mode only).
  Result<obs::ClusterSnapshot> cluster_snapshot() const;

  /// The pipeline root span's context (valid during/after run() in
  /// per-node mode); batch spans on every stage parent to it.
  obs::TraceContext root_context() const { return root_ctx_; }

  std::size_t stage_count() const { return stages_.size(); }
  net::NodeId stage_node(std::size_t stage) const;
  obs::NodeObs* stage_obs(std::size_t stage);
  const Status& topology() const { return topology_; }

 private:
  static constexpr std::uint32_t kSessionChannel = 1;

  struct Item {
    enum class Kind : std::uint8_t { kRecord, kWatermark, kEos };
    Kind kind = Kind::kRecord;
    Record record;
    std::uint64_t watermark_s = 0;
  };

  struct Stage {
    std::size_t index = 0;
    StageSpec spec;
    net::NodeId node = 0;
    std::unique_ptr<sgx::Platform> platform;
    sgx::Enclave* enclave = nullptr;
    std::unique_ptr<net::SessionDemux> demux;
    /// Sessions this stage terminates, keyed by peer stage index
    /// (initiator toward downstream, responder toward upstream).
    std::map<std::size_t, std::unique_ptr<net::AttestedSession>> sessions;
    Bytes key;
    std::unique_ptr<bigdata::FlowNode> flow;
    std::unique_ptr<obs::NodeObs> onode;

    std::deque<Item> inq;
    std::size_t inq_records = 0;  // data records in inq (controls excluded)
    std::deque<Item> outq;
    std::size_t outq_records = 0;
    std::uint64_t credits = 0;  // records we may still send downstream
    std::uint64_t consumed_since_grant = 0;
    bool busy = false;         // a compute batch's charge is in flight
    bool source_done = false;  // source fn returned nullopt
    bool done = false;         // sink consumed EOS
    bool watermark_started = false;
    std::uint64_t last_watermark = 0;
    std::uint64_t stalled_since_ns = 0;  // 0 = not stalled

    std::unique_ptr<bigdata::TumblingWindowAggregator> agg;
    std::vector<Record> window_out;  // emissions captured by agg callback

    std::unique_ptr<obs::Span> batch_span;
    std::vector<Record> pending_in;   // batch awaiting its compute charge
    std::vector<Record> pending_out;  // pre-computed (pure) outputs

    std::unique_ptr<obs::TelemetrySampler> sampler;
    std::size_t telemetry_frames = 0;

    StageStats stats;
    obs::Counter* obs_records_in = nullptr;
    obs::Counter* obs_records_out = nullptr;
    obs::Counter* obs_batches = nullptr;
    obs::Counter* obs_watermarks = nullptr;
    obs::Counter* obs_credits_granted = nullptr;
    obs::Counter* obs_credit_stalls = nullptr;
    obs::Counter* obs_stall_ns = nullptr;

    obs::Tracer* tracer() { return onode ? &onode->tracer : nullptr; }
  };

  Status establish_edge(sgx::AttestationService& service, std::size_t upstream,
                        std::size_t downstream, const sgx::Measurement& policy);
  void on_key_record(Stage& stage, Bytes record);
  void attach_flow(Stage& stage);
  void wire_counters(Stage& stage, obs::Registry* registry);
  void on_frame(Stage& stage, net::NodeId from, Bytes payload);

  /// The per-stage scheduler; runs inside fabric events only.
  void pump(std::size_t index);
  void flush_out(Stage& stage);
  void maybe_generate(Stage& stage);
  void emit_generated(std::size_t index);
  void maybe_consume(Stage& stage);
  void begin_batch(Stage& stage, std::vector<Record> batch);
  void end_batch(std::size_t index);
  void maybe_grant(Stage& stage);
  void push_out_record(Stage& stage, Record record);
  void apply_pure(Stage& stage);
  void stage_telemetry_tick(std::size_t index);
  void obs_inc(obs::Counter* counter, std::uint64_t delta = 1) {
    if (counter != nullptr && delta != 0) counter->inc(delta);
  }

  net::Fabric& fabric_;
  PipelineConfig config_;
  Status topology_;
  bool ready_ = false;
  bool ran_ = false;
  std::vector<std::unique_ptr<Stage>> stages_;
  common::ThreadPool* pool_ = nullptr;
  obs::Registry* shared_registry_ = nullptr;
  obs::TelemetryMonitor* monitor_ = nullptr;
  std::uint64_t telemetry_interval_ns_ = 0;
  std::size_t telemetry_max_frames_ = 0;
  std::unique_ptr<obs::Span> root_span_;
  obs::TraceContext root_ctx_;
  std::uint64_t run_start_ns_ = 0;
  std::uint64_t wall_ns_ = 0;
};

}  // namespace securecloud::streams
