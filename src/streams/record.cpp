#include "streams/record.hpp"

#include <bit>

namespace securecloud::streams {

namespace {
void put_f64(Bytes& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

bool get_f64(ByteReader& in, double& v) {
  std::uint64_t bits = 0;
  if (!in.get_u64(bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}
}  // namespace

void put_record(Bytes& out, const Record& record) {
  put_str(out, record.key);
  put_u64(out, record.timestamp_s);
  put_f64(out, record.value);
  put_u64(out, record.origin_ns);
  put_blob(out, record.payload);
}

bool get_record(ByteReader& in, Record& record) {
  return in.get_str(record.key) && in.get_u64(record.timestamp_s) &&
         get_f64(in, record.value) && in.get_u64(record.origin_ns) &&
         in.get_blob(record.payload);
}

Bytes encode_data_frame(const std::vector<Record>& batch) {
  Bytes wire;
  put_u8(wire, static_cast<std::uint8_t>(FrameType::kData));
  put_u32(wire, static_cast<std::uint32_t>(batch.size()));
  for (const Record& record : batch) put_record(wire, record);
  return wire;
}

Bytes encode_watermark_frame(std::uint64_t watermark_s) {
  Bytes wire;
  put_u8(wire, static_cast<std::uint8_t>(FrameType::kWatermark));
  put_u64(wire, watermark_s);
  return wire;
}

Bytes encode_eos_frame() {
  Bytes wire;
  put_u8(wire, static_cast<std::uint8_t>(FrameType::kEos));
  return wire;
}

Bytes encode_credit_frame(std::uint64_t records) {
  Bytes wire;
  put_u8(wire, static_cast<std::uint8_t>(FrameType::kCredit));
  put_u64(wire, records);
  return wire;
}

Result<Frame> decode_frame(ByteView wire) {
  ByteReader r(wire);
  std::uint8_t tag = 0;
  if (!r.get_u8(tag)) return Error::protocol("empty stream frame");
  Frame frame;
  switch (static_cast<FrameType>(tag)) {
    case FrameType::kData: {
      frame.type = FrameType::kData;
      std::uint32_t n = 0;
      if (!r.get_u32(n)) return Error::protocol("data frame missing count");
      frame.batch.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!get_record(r, frame.batch[i])) {
          return Error::protocol("data frame truncated at record " + std::to_string(i));
        }
      }
      break;
    }
    case FrameType::kWatermark:
      frame.type = FrameType::kWatermark;
      if (!r.get_u64(frame.watermark_s)) {
        return Error::protocol("watermark frame missing timestamp");
      }
      break;
    case FrameType::kEos:
      frame.type = FrameType::kEos;
      break;
    case FrameType::kCredit:
      frame.type = FrameType::kCredit;
      if (!r.get_u64(frame.credits)) return Error::protocol("credit frame missing count");
      break;
    default:
      return Error::protocol("unknown stream frame tag " + std::to_string(tag));
  }
  if (!r.done()) return Error::protocol("trailing bytes after stream frame");
  return frame;
}

}  // namespace securecloud::streams
