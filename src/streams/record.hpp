// SecureStreams data plane: the record model and inter-stage wire format.
//
// A streaming pipeline (streams/pipeline.hpp) is a chain of enclave
// stages connected by FlowNode links; everything crossing a link is one
// of four frame kinds, tagged by the first byte of the flow payload:
//
//   kData      — a batch of records, downstream. The only frame kind
//                that consumes flow credits (one credit per record).
//   kWatermark — event-time watermark, downstream. A control record:
//                asserts no later data record will carry an earlier
//                event time, so windows up to it may close.
//   kEos       — end of stream, downstream. Follows the last data
//                record on the link; stages flush and forward it.
//   kCredit    — credit grant, upstream. The receiver has consumed n
//                records, so the sender may ship n more. This is the
//                whole backpressure protocol: a full stage simply stops
//                granting, and its upstream stalls deterministically
//                instead of dropping.
//
// Control frames ride outside the credit budget — a stalled link can
// always carry watermarks, EOS, and grants, so backpressure can never
// deadlock the control plane it is resolved by.
//
// Doubles travel as their IEEE-754 bit pattern (bit_cast to u64), so
// encode/decode round-trips are exact and byte-stable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace securecloud::streams {

/// One data element flowing through a pipeline. `key` drives windowing
/// and key_by routing; `timestamp_s` is event time (watermark domain);
/// `origin_ns` is the fabric time the record entered the pipeline (or
/// was re-stamped by a window close) — the sink's latency anchor;
/// `payload` carries operator-specific extra bytes.
struct Record {
  std::string key;
  std::uint64_t timestamp_s = 0;
  double value = 0;
  std::uint64_t origin_ns = 0;
  Bytes payload;

  bool operator==(const Record&) const = default;
};

/// Frame tag: first byte of every inter-stage flow payload.
enum class FrameType : std::uint8_t {
  kData = 1,
  kWatermark = 2,
  kEos = 3,
  kCredit = 4,
};

void put_record(Bytes& out, const Record& record);
bool get_record(ByteReader& in, Record& record);

Bytes encode_data_frame(const std::vector<Record>& batch);
Bytes encode_watermark_frame(std::uint64_t watermark_s);
Bytes encode_eos_frame();
Bytes encode_credit_frame(std::uint64_t records);

/// A decoded frame; only the fields of its `type` are meaningful.
struct Frame {
  FrameType type = FrameType::kData;
  std::vector<Record> batch;       // kData
  std::uint64_t watermark_s = 0;   // kWatermark
  std::uint64_t credits = 0;       // kCredit
};

/// Strict decode: unknown tags, short reads, and trailing bytes are
/// typed errors, never a partially-filled frame.
Result<Frame> decode_frame(ByteView wire);

}  // namespace securecloud::streams
