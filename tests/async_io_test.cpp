// Cooperative async I/O runtime tests: overlap, ordering, ring pressure.
#include <gtest/gtest.h>

#include "scone/async_io.hpp"

namespace securecloud::scone {
namespace {

struct IoFixture {
  UntrustedFileSystem fs;
  SyscallBackend backend{fs};
  SimClock clock;
  UserScheduler scheduler{clock};
};

SyscallRequest read_request(const std::string& path, std::uint64_t offset,
                            std::uint64_t length) {
  SyscallRequest r;
  r.op = SyscallOp::kRead;
  r.path = path;
  r.offset = offset;
  r.length = length;
  return r;
}

TEST(AsyncIo, SingleIoTaskCompletes) {
  IoFixture fx;
  (void)fx.fs.write_file("/f", to_bytes("payload"));
  AsyncSyscalls syscalls(fx.backend, fx.clock);
  AsyncIoRuntime runtime(fx.scheduler, syscalls);

  std::string got;
  runtime.spawn_io(read_request("/f", 0, 7),
                   [&](const SyscallResponse& r) { got = to_string(r.data); });
  runtime.run();
  EXPECT_EQ(got, "payload");
  EXPECT_EQ(runtime.completed_io(), 1u);
}

TEST(AsyncIo, ManyConcurrentIoTasks) {
  IoFixture fx;
  for (int i = 0; i < 20; ++i) {
    (void)fx.fs.write_file("/f" + std::to_string(i),
                           to_bytes("data-" + std::to_string(i)));
  }
  AsyncSyscalls syscalls(fx.backend, fx.clock);
  AsyncIoRuntime runtime(fx.scheduler, syscalls);

  std::map<int, std::string> results;
  for (int i = 0; i < 20; ++i) {
    runtime.spawn_io(read_request("/f" + std::to_string(i), 0, 100),
                     [&results, i](const SyscallResponse& r) {
                       results[i] = to_string(r.data);
                     });
  }
  runtime.run();
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(results[i], "data-" + std::to_string(i));  // no cross-wiring
  }
}

TEST(AsyncIo, ComputeProgressesWhileIoOutstanding) {
  IoFixture fx;
  (void)fx.fs.write_file("/f", Bytes(64, 0x01));
  AsyncSyscalls syscalls(fx.backend, fx.clock);
  AsyncIoRuntime runtime(fx.scheduler, syscalls);

  bool io_done = false;
  int compute_steps = 0;
  runtime.spawn_io(read_request("/f", 0, 64),
                   [&](const SyscallResponse&) { io_done = true; });
  runtime.spawn_compute([&] {
    ++compute_steps;
    return compute_steps < 50 ? StepResult::kYield : StepResult::kDone;
  });
  runtime.run();
  EXPECT_TRUE(io_done);
  EXPECT_EQ(compute_steps, 50);
}

TEST(AsyncIo, SurvivesRingSmallerThanTaskCount) {
  IoFixture fx;
  (void)fx.fs.write_file("/f", Bytes(1024, 0x5a));
  // Ring of 4 slots, 32 tasks: submissions must retry under pressure.
  AsyncSyscalls syscalls(fx.backend, fx.clock, /*ring_capacity=*/4);
  AsyncIoRuntime runtime(fx.scheduler, syscalls);

  int done = 0;
  for (int i = 0; i < 32; ++i) {
    runtime.spawn_io(read_request("/f", static_cast<std::uint64_t>(i) * 32, 32),
                     [&](const SyscallResponse& r) {
                       EXPECT_EQ(r.error, 0);
                       EXPECT_EQ(r.data.size(), 32u);
                       ++done;
                     });
  }
  runtime.run();
  EXPECT_EQ(done, 32);
}

TEST(AsyncIo, ErrorsReachContinuations) {
  IoFixture fx;
  AsyncSyscalls syscalls(fx.backend, fx.clock);
  AsyncIoRuntime runtime(fx.scheduler, syscalls);
  std::int32_t error = 0;
  runtime.spawn_io(read_request("/missing", 0, 8),
                   [&](const SyscallResponse& r) { error = r.error; });
  runtime.run();
  EXPECT_EQ(error, 2);  // ENOENT, shielded and delivered
}

TEST(AsyncIo, WritesVisibleAfterRun) {
  IoFixture fx;
  AsyncSyscalls syscalls(fx.backend, fx.clock);
  AsyncIoRuntime runtime(fx.scheduler, syscalls);
  SyscallRequest w;
  w.op = SyscallOp::kWrite;
  w.path = "/out";
  w.data = to_bytes("written cooperatively");
  bool ok = false;
  runtime.spawn_io(w, [&](const SyscallResponse& r) { ok = r.error == 0; });
  runtime.run();
  EXPECT_TRUE(ok);
  auto content = fx.fs.read_file("/out");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "written cooperatively");
}

}  // namespace
}  // namespace securecloud::scone
