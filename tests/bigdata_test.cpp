// Big-data layer tests: secure KV store, codecs, secure transfer, and the
// secure map/reduce framework.
#include <gtest/gtest.h>

#include "bigdata/codec.hpp"
#include "bigdata/kvstore.hpp"
#include "bigdata/mapreduce.hpp"
#include "bigdata/transfer.hpp"
#include "common/fault_injector.hpp"

namespace securecloud::bigdata {
namespace {

using crypto::DeterministicEntropy;

// ----------------------------------------------------------------- KvStore

struct KvFixture {
  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy{3};
  SecureKvStore store{storage, Bytes(16, 0x2a), "test", entropy};
};

TEST(KvStore, PutGetRemove) {
  KvFixture fx;
  ASSERT_TRUE(fx.store.put("meter-1", to_bytes("reading=5")).ok());
  auto v = fx.store.get("meter-1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(to_string(*v), "reading=5");
  EXPECT_TRUE(fx.store.contains("meter-1"));
  ASSERT_TRUE(fx.store.remove("meter-1").ok());
  EXPECT_FALSE(fx.store.get("meter-1").ok());
  EXPECT_FALSE(fx.store.remove("meter-1").ok());
}

TEST(KvStore, OverwriteBumpsVersion) {
  KvFixture fx;
  ASSERT_TRUE(fx.store.put("k", to_bytes("v1")).ok());
  ASSERT_TRUE(fx.store.put("k", to_bytes("v2")).ok());
  auto v = fx.store.get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(to_string(*v), "v2");
}

TEST(KvStore, StorageHoldsOnlyCiphertextAndHashedNames) {
  KvFixture fx;
  ASSERT_TRUE(fx.store.put("customer-secret-key", to_bytes("SENSITIVE-VALUE")).ok());
  for (const auto& path : fx.storage.list()) {
    EXPECT_EQ(path.find("customer"), std::string::npos) << "key name leaked";
    const auto content = fx.storage.read_file(path);
    const std::string s(content->begin(), content->end());
    EXPECT_EQ(s.find("SENSITIVE"), std::string::npos) << "value leaked";
  }
}

TEST(KvStore, DetectsValueTampering) {
  KvFixture fx;
  ASSERT_TRUE(fx.store.put("k", to_bytes("honest value")).ok());
  for (const auto& path : fx.storage.list()) {
    (*fx.storage.raw(path))[20] ^= 1;
  }
  auto v = fx.store.get("k");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, ErrorCode::kIntegrityViolation);
}

TEST(KvStore, DetectsRollback) {
  KvFixture fx;
  ASSERT_TRUE(fx.store.put("k", to_bytes("v1")).ok());
  // Attacker snapshots the v1 blob.
  Bytes snapshot;
  for (const auto& p : fx.storage.list()) snapshot = *fx.storage.raw(p);
  ASSERT_TRUE(fx.store.put("k", to_bytes("v2")).ok());
  // Replay v1 over whatever the store currently references (puts write
  // versioned paths, so the stale blob must be planted at the live one).
  for (const auto& p : fx.storage.list()) *fx.storage.raw(p) = snapshot;
  auto v = fx.store.get("k");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, ErrorCode::kIntegrityViolation);
}

// Regression: a torn/failed storage write used to leave the half-written
// blob at the committed path, so the *next get()* of the old value blew
// up as a spurious kIntegrityViolation. Write-then-commit keeps the
// committed version untouched and reports the failure distinctly.
TEST(KvStore, FailedWriteKeepsCommittedValueReadable) {
  KvFixture fx;
  common::FaultInjector faults(42);
  fx.storage.set_fault_injector(&faults);

  ASSERT_TRUE(fx.store.put("k", to_bytes("v1")).ok());

  faults.arm(common::FaultKind::kIoError,
             common::FaultArm{.probability = 1.0, .max_fires = 1});
  auto failed = fx.store.put("k", to_bytes("v2 that never lands"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(failed.error().message.find("storage write failed"), std::string::npos)
      << "failure must be reported as a write failure, not an integrity violation";

  // The committed value is fully intact — not torn, not gone.
  auto v = fx.store.get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(to_string(*v), "v1");

  // Once the fault clears, the overwrite goes through normally.
  ASSERT_TRUE(fx.store.put("k", to_bytes("v2")).ok());
  auto v2 = fx.store.get("k");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(to_string(*v2), "v2");
}

// A failed storage delete during remove() stays best-effort (the index
// entry is gone either way) but is now counted instead of vanishing.
TEST(KvStore, FailedStorageRemoveIsCounted) {
  KvFixture fx;
  common::FaultInjector faults(42);
  fx.storage.set_fault_injector(&faults);
  obs::Registry registry;
  fx.store.set_obs(&registry);

  ASSERT_TRUE(fx.store.put("k", to_bytes("v")).ok());
  faults.arm(common::FaultKind::kIoError,
             common::FaultArm{.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(fx.store.remove("k").ok());
  EXPECT_FALSE(fx.store.contains("k"));
  EXPECT_EQ(registry.snapshot().counters.at("kvstore_storage_remove_failures_total"),
            1u);
}

TEST(KvStore, DetectsCrossKeySwap) {
  KvFixture fx;
  ASSERT_TRUE(fx.store.put("a", to_bytes("value-a")).ok());
  ASSERT_TRUE(fx.store.put("b", to_bytes("value-b")).ok());
  auto paths = fx.storage.list();
  ASSERT_EQ(paths.size(), 2u);
  std::swap(*fx.storage.raw(paths[0]), *fx.storage.raw(paths[1]));
  EXPECT_FALSE(fx.store.get("a").ok());
  EXPECT_FALSE(fx.store.get("b").ok());
}

TEST(KvStore, ScansComeFromTrustedIndex) {
  KvFixture fx;
  for (const std::string key : {"meter-1", "meter-2", "meter-10", "feeder-1"}) {
    ASSERT_TRUE(fx.store.put(key, to_bytes("x")).ok());
  }
  const auto meters = fx.store.scan_prefix("meter-");
  EXPECT_EQ(meters.size(), 3u);
  const auto range = fx.store.scan_range("feeder-1", "meter-1");
  EXPECT_EQ(range, (std::vector<std::string>{"feeder-1", "meter-1"}));
}

TEST(KvStore, SealedIndexRestoresAcrossRestart) {
  sgx::Platform platform;
  sgx::EnclaveImage image;
  image.name = "kv";
  image.code = to_bytes("kv-code");
  DeterministicEntropy signer(5);
  sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
  auto enclave = platform.create_enclave(image);
  ASSERT_TRUE(enclave.ok());

  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy(6);
  const Bytes key(16, 0x2a);
  Bytes sealed_index;
  {
    SecureKvStore store(storage, key, "ns", entropy);
    ASSERT_TRUE(store.put("persisted", to_bytes("survives restart")).ok());
    sealed_index = store.seal_index(**enclave);
  }
  {
    SecureKvStore store(storage, key, "ns", entropy);
    EXPECT_FALSE(store.contains("persisted"));  // fresh instance: empty index
    ASSERT_TRUE(store.restore_index(**enclave, sealed_index).ok());
    auto v = store.get("persisted");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(to_string(*v), "survives restart");
  }
}

TEST(KvStore, DifferentEnclaveCannotRestoreIndex) {
  sgx::Platform platform;
  auto make = [&](const std::string& name, std::uint64_t seed) {
    sgx::EnclaveImage image;
    image.name = name;
    image.code = to_bytes("code-" + name);
    DeterministicEntropy signer(seed);
    sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
    return platform.create_enclave(image);
  };
  auto e1 = make("kv-a", 5);
  auto e2 = make("kv-b", 5);
  ASSERT_TRUE(e1.ok() && e2.ok());

  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy(6);
  SecureKvStore store(storage, Bytes(16, 1), "ns", entropy);
  ASSERT_TRUE(store.put("k", to_bytes("v")).ok());
  const Bytes sealed = store.seal_index(**e1);
  SecureKvStore other(storage, Bytes(16, 1), "ns", entropy);
  EXPECT_FALSE(other.restore_index(**e2, sealed).ok());
}

// ------------------------------------------------------------------ Codec

TEST(Codec, VarintRoundTrip) {
  const std::vector<std::uint64_t> values = {0, 1, 127, 128, 300, 1ull << 32,
                                             UINT64_MAX};
  for (const std::uint64_t v : values) {
    Bytes b;
    put_varint(b, v);
    ByteReader r(b);
    std::uint64_t back = 0;
    ASSERT_TRUE(get_varint(r, back));
    EXPECT_EQ(back, v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, ZigzagRoundTrip) {
  const std::vector<std::int64_t> values = {0, 1, -1, 2, -2, INT64_MAX, INT64_MIN};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  EXPECT_EQ(zigzag_encode(-1), 1u);  // small magnitudes stay small
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Codec, SeriesRoundTrip) {
  const std::vector<std::int64_t> series = {1000, 1003, 1001, 998, 998, 1500, -20};
  auto back = decode_series(encode_series(series));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, series);
}

TEST(Codec, SeriesCompressesSmoothData) {
  // Meter-like series: large absolute values, small deltas.
  std::vector<std::int64_t> series;
  std::int64_t v = 100'000;
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    v += rng.uniform_in(-5, 5);
    series.push_back(v);
  }
  const Bytes encoded = encode_series(series);
  EXPECT_LT(encoded.size(), series.size() * 2);  // < 2 bytes/sample vs 8 raw
}

TEST(Codec, SeriesRejectsGarbage) {
  EXPECT_FALSE(decode_series(Bytes{}).ok());
  Bytes claims_many;
  put_varint(claims_many, 1'000'000);
  EXPECT_FALSE(decode_series(claims_many).ok());
}

TEST(Codec, RleRoundTripVariousShapes) {
  Rng rng(2);
  std::vector<Bytes> cases;
  cases.push_back({});                       // empty
  cases.push_back(Bytes(1, 7));              // single byte
  cases.push_back(Bytes(10'000, 0xaa));      // one huge run
  cases.push_back(to_bytes("abcdefgh"));     // all literals
  Bytes random(5'000);
  for (auto& b : random) b = static_cast<std::uint8_t>(rng.next());
  cases.push_back(random);                   // incompressible
  Bytes mixed;
  for (int i = 0; i < 100; ++i) {
    mixed.insert(mixed.end(), static_cast<std::size_t>(rng.uniform(20)) + 1,
                 static_cast<std::uint8_t>(rng.next()));
  }
  cases.push_back(mixed);                    // mixed runs

  for (const auto& data : cases) {
    auto back = rle_decompress(rle_compress(data));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
}

TEST(Codec, RleCompressesRuns) {
  const Bytes runs(100'000, 0x00);
  EXPECT_LT(rle_compress(runs).size(), 2'000u);
}

TEST(Codec, RleBoundedExpansionOnRandomData) {
  Rng rng(3);
  Bytes random(100'000);
  for (auto& b : random) b = static_cast<std::uint8_t>(rng.next());
  EXPECT_LT(rle_compress(random).size(), random.size() + random.size() / 64 + 16);
}

// ---------------------------------------------------------------- Transfer

TEST(Transfer, RoundTripMultiChunk) {
  const Bytes key(16, 0x44);
  SecureTransferSender sender(key, /*stream_id=*/1, /*chunk_size=*/1024);
  SecureTransferReceiver receiver(key, 1);

  Bytes payload;
  for (int i = 0; i < 100; ++i) {
    payload.insert(payload.end(), 100, static_cast<std::uint8_t>(i));
  }
  const auto chunks = sender.send(payload);
  EXPECT_GT(chunks.size(), 0u);

  std::optional<Bytes> delivered;
  for (const auto& chunk : chunks) {
    auto r = receiver.receive(chunk);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) delivered = **r;
  }
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, payload);
  EXPECT_GT(sender.stats().compression_ratio(), 5.0);  // runs compress well
}

TEST(Transfer, DetectsTamperedChunk) {
  const Bytes key(16, 0x44);
  SecureTransferSender sender(key, 2);
  SecureTransferReceiver receiver(key, 2);
  auto chunks = sender.send(Bytes(1000, 0x11));
  ASSERT_EQ(chunks.size(), 1u);
  chunks[0][chunks[0].size() / 2] ^= 1;
  EXPECT_FALSE(receiver.receive(chunks[0]).ok());
}

TEST(Transfer, RejectsReorderedChunks) {
  const Bytes key(16, 0x44);
  SecureTransferSender sender(key, 3, /*chunk_size=*/64);
  SecureTransferReceiver receiver(key, 3);
  Rng rng(4);
  Bytes payload(1000);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  auto chunks = sender.send(payload);
  ASSERT_GE(chunks.size(), 2u);
  EXPECT_FALSE(receiver.receive(chunks[1]).ok());  // skipped chunk 0
}

TEST(Transfer, MultipleMessagesOverOneStream) {
  const Bytes key(16, 0x44);
  SecureTransferSender sender(key, 4);
  SecureTransferReceiver receiver(key, 4);
  for (int m = 0; m < 5; ++m) {
    const Bytes payload(100 + m, static_cast<std::uint8_t>(m));
    std::optional<Bytes> got;
    for (const auto& chunk : sender.send(payload)) {
      auto r = receiver.receive(chunk);
      ASSERT_TRUE(r.ok());
      if (r->has_value()) got = **r;
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
}

// --------------------------------------------------------------- MapReduce

struct MrFixture {
  sgx::Platform platform;
  DeterministicEntropy entropy{12};
  SecureMapReduce mapreduce{platform, entropy};
};

TEST(MapReduce, WordCountStyleJob) {
  MrFixture fx;
  std::vector<std::vector<Bytes>> partitions;
  partitions.push_back(fx.mapreduce.encrypt_partition(
      {to_bytes("a b a"), to_bytes("b c")}));
  partitions.push_back(fx.mapreduce.encrypt_partition({to_bytes("c c a")}));

  auto map_fn = [](ByteView record) {
    std::vector<KeyValue> out;
    std::string word;
    for (const char c : std::string(record.begin(), record.end()) + " ") {
      if (c == ' ') {
        if (!word.empty()) out.push_back({word, 1.0});
        word.clear();
      } else {
        word.push_back(c);
      }
    }
    return out;
  };
  auto reduce_fn = [](const std::string&, const std::vector<double>& values) {
    double sum = 0;
    for (const double v : values) sum += v;
    return sum;
  };

  auto result = fx.mapreduce.run({.num_mappers = 2, .num_reducers = 2}, partitions,
                                 map_fn, reduce_fn);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->output.at("a"), 3.0);
  EXPECT_DOUBLE_EQ(result->output.at("b"), 2.0);
  EXPECT_DOUBLE_EQ(result->output.at("c"), 3.0);
  EXPECT_EQ(result->stats.input_records, 3u);
  EXPECT_EQ(result->stats.intermediate_pairs, 8u);
  EXPECT_GT(result->stats.enclave_transitions, 0u);
  EXPECT_GT(result->stats.shuffle_bytes, 0u);
}

TEST(MapReduce, CombinerShrinksShuffleWithoutChangingResults) {
  MrFixture fx;
  // Skewed input: many repeated words per partition => combiner gold.
  std::vector<Bytes> records;
  for (int i = 0; i < 50; ++i) records.push_back(to_bytes("a b a b a"));
  std::vector<std::vector<Bytes>> partitions;
  partitions.push_back(fx.mapreduce.encrypt_partition(records));

  auto map_fn = [](ByteView record) {
    std::vector<KeyValue> out;
    std::string word;
    for (const char c : std::string(record.begin(), record.end()) + " ") {
      if (c == ' ') {
        if (!word.empty()) out.push_back({word, 1.0});
        word.clear();
      } else {
        word.push_back(c);
      }
    }
    return out;
  };
  auto sum_fn = [](const std::string&, const std::vector<double>& values) {
    double sum = 0;
    for (const double v : values) sum += v;
    return sum;
  };

  auto plain = fx.mapreduce.run({.num_mappers = 2, .num_reducers = 2}, partitions,
                                map_fn, sum_fn);
  MrFixture fx2;
  std::vector<std::vector<Bytes>> partitions2;
  partitions2.push_back(fx2.mapreduce.encrypt_partition(records));
  auto combined = fx2.mapreduce.run(
      {.num_mappers = 2, .num_reducers = 2, .enable_combiner = true}, partitions2,
      map_fn, sum_fn);
  ASSERT_TRUE(plain.ok() && combined.ok());
  EXPECT_EQ(plain->output, combined->output);
  EXPECT_DOUBLE_EQ(combined->output.at("a"), 150.0);
  // 250 intermediate pairs collapse to 2 (one per key).
  EXPECT_EQ(plain->stats.intermediate_pairs, 250u);
  EXPECT_EQ(combined->stats.intermediate_pairs, 2u);
  EXPECT_LT(combined->stats.shuffle_bytes, plain->stats.shuffle_bytes / 10);
}

TEST(MapReduce, TamperedInputRecordAbortsJob) {
  MrFixture fx;
  auto partition = fx.mapreduce.encrypt_partition({to_bytes("record")});
  partition[0][partition[0].size() / 2] ^= 1;
  auto result = fx.mapreduce.run(
      {.num_mappers = 1, .num_reducers = 1}, {partition},
      [](ByteView) { return std::vector<KeyValue>{}; },
      [](const std::string&, const std::vector<double>&) { return 0.0; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kIntegrityViolation);
}

TEST(MapReduce, EncryptedPartitionsLeakNoPlaintext) {
  MrFixture fx;
  const auto partition =
      fx.mapreduce.encrypt_partition({to_bytes("household-7 consumed 4.2kWh")});
  for (const auto& record : partition) {
    const std::string s(record.begin(), record.end());
    EXPECT_EQ(s.find("household"), std::string::npos);
  }
}

TEST(MapReduce, ZeroWorkersRejected) {
  MrFixture fx;
  auto result = fx.mapreduce.run(
      {.num_mappers = 0, .num_reducers = 1}, {},
      [](ByteView) { return std::vector<KeyValue>{}; },
      [](const std::string&, const std::vector<double>&) { return 0.0; });
  EXPECT_FALSE(result.ok());
}

TEST(MapReduce, EmptyInputYieldsEmptyOutput) {
  MrFixture fx;
  auto result = fx.mapreduce.run(
      {.num_mappers = 2, .num_reducers = 2}, {},
      [](ByteView) { return std::vector<KeyValue>{}; },
      [](const std::string&, const std::vector<double>&) { return 0.0; });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->output.empty());
}

}  // namespace
}  // namespace securecloud::bigdata
