// Unit tests for the common utilities: bytes, serialization, Result, RNG,
// SimClock.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace securecloud {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff, 0xde, 0xad};
  const std::string hex = hex_encode(data);
  EXPECT_EQ(hex, "00017f80ffdead");
  EXPECT_EQ(hex_decode(hex), data);
}

TEST(Bytes, HexDecodeUppercase) {
  EXPECT_EQ(hex_decode("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, HexDecodeStrictRejectsMalformed) {
  Bytes out;
  EXPECT_FALSE(hex_decode_strict("abc", out));   // odd length
  EXPECT_FALSE(hex_decode_strict("zz", out));    // non-hex
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(hex_decode_strict("", out));       // empty is valid
}

TEST(Bytes, EndianCodecsRoundTrip) {
  std::uint8_t buf[8];
  store_le32(buf, 0x12345678u);
  EXPECT_EQ(load_le32(ByteView(buf, 4)), 0x12345678u);
  EXPECT_EQ(buf[0], 0x78);

  store_be32(buf, 0x12345678u);
  EXPECT_EQ(load_be32(ByteView(buf, 4)), 0x12345678u);
  EXPECT_EQ(buf[0], 0x12);

  store_le64(buf, 0x0102030405060708ull);
  EXPECT_EQ(load_le64(ByteView(buf, 8)), 0x0102030405060708ull);
  store_be64(buf, 0x0102030405060708ull);
  EXPECT_EQ(load_be64(ByteView(buf, 8)), 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x01);
}

TEST(Bytes, SerializerRoundTrip) {
  Bytes b;
  put_u8(b, 7);
  put_u32(b, 123456u);
  put_u64(b, 0xdeadbeefcafebabeull);
  put_blob(b, Bytes{1, 2, 3});
  put_str(b, "hello");

  ByteReader r(b);
  std::uint8_t v8;
  std::uint32_t v32;
  std::uint64_t v64;
  Bytes blob;
  std::string s;
  ASSERT_TRUE(r.get_u8(v8));
  ASSERT_TRUE(r.get_u32(v32));
  ASSERT_TRUE(r.get_u64(v64));
  ASSERT_TRUE(r.get_blob(blob));
  ASSERT_TRUE(r.get_str(s));
  EXPECT_EQ(v8, 7);
  EXPECT_EQ(v32, 123456u);
  EXPECT_EQ(v64, 0xdeadbeefcafebabeull);
  EXPECT_EQ(blob, (Bytes{1, 2, 3}));
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderRejectsTruncation) {
  Bytes b;
  put_blob(b, Bytes(10, 0xaa));
  b.resize(b.size() - 1);  // truncate payload

  ByteReader r(b);
  Bytes blob;
  EXPECT_FALSE(r.get_blob(blob));
}

TEST(Bytes, ReaderRejectsOversizedLengthPrefix) {
  Bytes b;
  put_u32(b, 0xffffffffu);  // claims 4 GiB payload
  ByteReader r(b);
  Bytes blob;
  EXPECT_FALSE(r.get_blob(blob));
}

TEST(Result, OkAndErrorPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = Error::not_found("missing");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(err.error().message, "missing");
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, StatusDefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status e = Error::integrity("bad MAC");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, ErrorCode::kIntegrityViolation);
}

TEST(Result, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::kIntegrityViolation), "integrity_violation");
  EXPECT_STREQ(to_string(ErrorCode::kAttestationFailure), "attestation_failure");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(42);
  const int n = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(42);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(42);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.zipf(100, 1.0)];
  EXPECT_GT(counts[0], counts[50] * 3);
  // All values in range.
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 100000);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(SimClock, CycleAccounting) {
  SimClock clock(2.0);  // 2 GHz
  clock.advance_cycles(2'000'000'000);
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.0);
  EXPECT_EQ(clock.nanos(), 1'000'000'000u);
  clock.reset();
  EXPECT_EQ(clock.cycles(), 0u);
}

TEST(SimClock, AdvanceNsConvertsToCycles) {
  SimClock clock(2.6);
  clock.advance_ns(1000);
  EXPECT_EQ(clock.cycles(), 2600u);
}

// Regression: the conversion used a double intermediate, which loses
// low-order cycles once ns * hz exceeds 2^53 (e.g. a ~31s advance at
// 2.6 GHz was already off by a few cycles). The 128-bit integer path
// must be exact for any input.
TEST(SimClock, AdvanceNsExactForHugeDurations) {
  SimClock clock(2.6);
  clock.advance_ns(1'000'000'000'000'000'000ull);  // 10^18 ns
  EXPECT_EQ(clock.cycles(), 2'600'000'000'000'000'000ull);

  clock.reset();
  // 2^53 + 1 ns: a double intermediate cannot even represent the input,
  // so the old path silently dropped cycles. Exact: floor((2^53+1)*13/5).
  clock.advance_ns((1ull << 53) + 1);
  EXPECT_EQ(clock.cycles(), 23'418'718'062'326'581ull);
}

TEST(SimClock, ClockShardFlushesExactTotals) {
  SimClock clock(2.0);
  {
    ClockShard shard(clock);
    shard.advance_cycles(100);
    shard.advance_ns(50);  // 100 cycles at 2 GHz
    EXPECT_EQ(shard.pending(), 200u);
    EXPECT_EQ(clock.cycles(), 0u);  // batched, not yet visible
    shard.flush();
    EXPECT_EQ(clock.cycles(), 200u);
    shard.advance_cycles(7);
  }  // destructor flushes the tail
  EXPECT_EQ(clock.cycles(), 207u);
}

}  // namespace
}  // namespace securecloud
