// Container platform tests: layers/manifests, registry integrity, engine
// lifecycle, secure-image build + end-to-end secure execution, image
// customization, and the monitor.
#include <gtest/gtest.h>

#include "container/engine.hpp"
#include "container/monitor.hpp"
#include "container/registry.hpp"
#include "container/scone_client.hpp"
#include "scone/stdio.hpp"

namespace securecloud::container {
namespace {

using crypto::DeterministicEntropy;

// -------------------------------------------------------------------- Layer

TEST(Layer, SerializationRoundTrip) {
  Layer layer;
  layer.files["/bin/app"] = to_bytes("binary");
  layer.files["/etc/conf"] = to_bytes("key=value");
  layer.whiteouts.push_back("/old/file");
  auto parsed = Layer::deserialize(layer.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->files, layer.files);
  EXPECT_EQ(parsed->whiteouts, layer.whiteouts);
}

TEST(Layer, DigestChangesWithContent) {
  Layer a, b;
  a.files["/f"] = to_bytes("1");
  b.files["/f"] = to_bytes("2");
  EXPECT_NE(a.digest(), b.digest());
  Layer a2;
  a2.files["/f"] = to_bytes("1");
  EXPECT_EQ(a.digest(), a2.digest());
}

TEST(Layer, MaterializeAppliesOverridesAndWhiteouts) {
  Layer base, top;
  base.files["/a"] = to_bytes("base-a");
  base.files["/b"] = to_bytes("base-b");
  top.files["/a"] = to_bytes("top-a");   // override
  top.whiteouts.push_back("/b");          // delete

  scone::UntrustedFileSystem rootfs;
  materialize_rootfs({base, top}, rootfs);
  EXPECT_EQ(securecloud::to_string(*rootfs.read_file("/a")), "top-a");
  EXPECT_FALSE(rootfs.exists("/b"));
}

// ------------------------------------------------------------------ Registry

TEST(Registry, PushPullRoundTrip) {
  Registry registry;
  Layer layer;
  layer.files["/app"] = to_bytes("code");
  const std::string digest = registry.push_layer(layer);

  ImageManifest manifest;
  manifest.name = "svc";
  manifest.layer_digests.push_back(digest);
  ASSERT_TRUE(registry.push_manifest(manifest).ok());

  auto pulled = registry.pull("svc:latest");
  ASSERT_TRUE(pulled.ok());
  ASSERT_EQ(pulled->layers.size(), 1u);
  EXPECT_EQ(securecloud::to_string(pulled->layers[0].files.at("/app")), "code");
}

TEST(Registry, RejectsManifestWithMissingLayer) {
  Registry registry;
  ImageManifest manifest;
  manifest.name = "svc";
  manifest.layer_digests.push_back("deadbeef");
  EXPECT_FALSE(registry.push_manifest(manifest).ok());
}

TEST(Registry, DetectsCorruptedLayer) {
  Registry registry;
  Layer layer;
  layer.files["/app"] = Bytes(100, 0x42);
  const std::string digest = registry.push_layer(layer);
  ImageManifest manifest;
  manifest.name = "svc";
  manifest.layer_digests.push_back(digest);
  ASSERT_TRUE(registry.push_manifest(manifest).ok());

  // Malicious registry flips one byte inside a stored file body.
  ASSERT_TRUE(registry.corrupt_layer(digest, 40));
  auto pulled = registry.pull("svc:latest");
  ASSERT_FALSE(pulled.ok());
}

TEST(Registry, UnknownImageNotFound) {
  Registry registry;
  EXPECT_EQ(registry.pull("ghost:latest").error().code, ErrorCode::kNotFound);
}

// -------------------------------------------------------------------- Engine

struct EngineFixture {
  Registry registry;
  ContainerMonitor monitor;
  ContainerEngine engine{registry, monitor};

  std::string push_plain_image(const std::string& name) {
    Layer layer;
    layer.files["/data/input"] = to_bytes("42");
    ImageManifest manifest;
    manifest.name = name;
    manifest.layer_digests.push_back(registry.push_layer(layer));
    EXPECT_TRUE(registry.push_manifest(manifest).ok());
    return manifest.reference();
  }
};

TEST(Engine, CreateAndRunPlainContainer) {
  EngineFixture fx;
  const std::string ref = fx.push_plain_image("plain");
  auto container = fx.engine.create(ref);
  ASSERT_TRUE(container.ok());
  EXPECT_EQ((*container)->state(), ContainerState::kCreated);

  auto result = fx.engine.run(**container, [](scone::UntrustedFileSystem& fs) -> Result<Bytes> {
    auto in = fs.read_file("/data/input");
    if (!in.ok()) return in.error();
    return to_bytes("got:" + securecloud::to_string(*in));
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(securecloud::to_string(*result), "got:42");
  EXPECT_EQ((*container)->state(), ContainerState::kExited);
}

TEST(Engine, FailedEntrypointMarksContainerFailed) {
  EngineFixture fx;
  const std::string ref = fx.push_plain_image("crashy");
  auto container = fx.engine.create(ref);
  ASSERT_TRUE(container.ok());
  auto result = fx.engine.run(**container, [](scone::UntrustedFileSystem&) -> Result<Bytes> {
    return Error::internal("segfault");
  });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ((*container)->state(), ContainerState::kFailed);
}

TEST(Engine, RemoveAndFind) {
  EngineFixture fx;
  const std::string ref = fx.push_plain_image("tmp");
  auto container = fx.engine.create(ref);
  ASSERT_TRUE(container.ok());
  const std::string id = (*container)->id();
  EXPECT_NE(fx.engine.find(id), nullptr);
  ASSERT_TRUE(fx.engine.remove(id).ok());
  EXPECT_EQ(fx.engine.find(id), nullptr);
  EXPECT_FALSE(fx.engine.remove(id).ok());
}

TEST(Engine, PlainContainerCannotBeRunSecure) {
  EngineFixture fx;
  sgx::Platform platform;
  sgx::AttestationService attestation;
  platform.provision(attestation);
  DeterministicEntropy entropy(1);
  scone::ConfigurationService config(attestation, entropy);

  const std::string ref = fx.push_plain_image("plain");
  auto container = fx.engine.create(ref);
  ASSERT_TRUE(container.ok());
  auto r = fx.engine.run_secure(**container, platform, config,
                                [](scone::AppContext&) -> Result<Bytes> { return Bytes{}; });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

// ------------------------------------------------------- Secure image flow

struct SecureFixture {
  Registry registry;
  ContainerMonitor monitor;
  ContainerEngine engine{registry, monitor};
  sgx::Platform platform;
  sgx::AttestationService attestation;
  DeterministicEntropy entropy{99};
  DeterministicEntropy signer_entropy{1234};
  crypto::Ed25519KeyPair signer = crypto::ed25519_keypair(signer_entropy.array<32>());
  SconeClient client{registry, entropy, signer};
  scone::ConfigurationService config{attestation, entropy};

  SecureFixture() { platform.provision(attestation); }

  SecureImageSpec spec(const std::string& name) {
    SecureImageSpec s;
    s.name = name;
    s.app_code = to_bytes("static-binary-of-" + name);
    s.protected_files["/secrets/api-key"] = to_bytes("hunter2-api-key");
    s.public_files["/README"] = to_bytes("public readme");
    s.args = {"--serve"};
    s.env = {{"MODE", "prod"}};
    return s;
  }
};

TEST(SecureImage, BuildPublishesOnlyCiphertext) {
  SecureFixture fx;
  auto manifest = fx.client.build_secure_image(fx.spec("svc"), fx.config);
  ASSERT_TRUE(manifest.ok());

  // Pull as an attacker and inspect every byte in every layer.
  auto pulled = fx.registry.pull("svc:latest");
  ASSERT_TRUE(pulled.ok());
  for (const auto& layer : pulled->layers) {
    for (const auto& [path, content] : layer.files) {
      const std::string s(content.begin(), content.end());
      EXPECT_EQ(s.find("hunter2"), std::string::npos)
          << "plaintext secret leaked in " << path;
    }
  }
}

TEST(SecureImage, EndToEndSecureRun) {
  SecureFixture fx;
  auto manifest = fx.client.build_secure_image(fx.spec("svc"), fx.config);
  ASSERT_TRUE(manifest.ok());

  auto container = fx.engine.create("svc:latest");
  ASSERT_TRUE(container.ok());

  auto outcome = fx.engine.run_secure(
      **container, fx.platform, fx.config,
      [](scone::AppContext& ctx) -> Result<Bytes> {
        auto key = ctx.fs.read_all("/secrets/api-key");
        if (!key.ok()) return key.error();
        if (securecloud::to_string(*key) != "hunter2-api-key") {
          return Error::internal("wrong secret");
        }
        return to_bytes("served with " + ctx.env.at("MODE"));
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(securecloud::to_string(outcome->app_result), "served with prod");
  EXPECT_EQ((*container)->state(), ContainerState::kExited);
}

TEST(SecureImage, TamperedImageFailsAttestedStartup) {
  SecureFixture fx;
  auto manifest = fx.client.build_secure_image(fx.spec("svc"), fx.config);
  ASSERT_TRUE(manifest.ok());

  auto container = fx.engine.create("svc:latest");
  ASSERT_TRUE(container.ok());
  // Attacker tampers with the FSPF inside the materialized rootfs.
  Bytes* fspf = (*container)->rootfs().raw(manifest->fspf_path);
  ASSERT_NE(fspf, nullptr);
  (*fspf)[0] ^= 1;

  auto outcome = fx.engine.run_secure(
      **container, fx.platform, fx.config,
      [](scone::AppContext&) -> Result<Bytes> { return Bytes{}; });
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ((*container)->state(), ContainerState::kFailed);
}

TEST(SecureImage, ModifiedEnclaveCodeIsRejected) {
  SecureFixture fx;
  auto manifest = fx.client.build_secure_image(fx.spec("svc"), fx.config);
  ASSERT_TRUE(manifest.ok());

  auto container = fx.engine.create("svc:latest");
  ASSERT_TRUE(container.ok());
  // Attacker swaps the enclave binary in the manifest (e.g. compromised
  // engine): SIGSTRUCT no longer matches.
  ImageManifest& m = const_cast<ImageManifest&>((*container)->manifest());
  m.enclave_image.code.push_back(0x90);

  auto outcome = fx.engine.run_secure(
      **container, fx.platform, fx.config,
      [](scone::AppContext&) -> Result<Bytes> { return Bytes{}; });
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kAttestationFailure);
}

TEST(SecureImage, CustomizableImageFlow) {
  SecureFixture fx;
  auto base = fx.client.build_customizable_image(fx.spec("base-svc"));
  ASSERT_TRUE(base.ok());

  // End user verifies + extends + finalizes under a new name.
  std::map<std::string, Bytes> extra;
  extra["/secrets/tenant-config"] = to_bytes("tenant=acme");
  auto final_manifest = fx.client.customize_and_finalize(
      *base, fx.client.public_key(), extra, "acme-svc", "v1", fx.config);
  ASSERT_TRUE(final_manifest.ok());

  auto container = fx.engine.create("acme-svc:v1");
  ASSERT_TRUE(container.ok());
  auto outcome = fx.engine.run_secure(
      **container, fx.platform, fx.config,
      [](scone::AppContext& ctx) -> Result<Bytes> {
        auto base_secret = ctx.fs.read_all("/secrets/api-key");
        auto tenant = ctx.fs.read_all("/secrets/tenant-config");
        if (!base_secret.ok() || !tenant.ok()) {
          return Error::internal("missing secrets after customization");
        }
        return to_bytes(securecloud::to_string(*base_secret) + "+" + securecloud::to_string(*tenant));
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(securecloud::to_string(outcome->app_result), "hunter2-api-key+tenant=acme");
}

TEST(SecureImage, CustomizationRejectsForgedBase) {
  SecureFixture fx;
  auto base = fx.client.build_customizable_image(fx.spec("base-svc"));
  ASSERT_TRUE(base.ok());

  // Verify against the wrong creator key.
  DeterministicEntropy other(4321);
  const auto impostor = crypto::ed25519_keypair(other.array<32>());
  auto r = fx.client.customize_and_finalize(*base, impostor.public_key, {},
                                            "x", "v1", fx.config);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
}

TEST(SecureImage, CustomizationRejectsPathCollision) {
  SecureFixture fx;
  auto base = fx.client.build_customizable_image(fx.spec("base-svc"));
  ASSERT_TRUE(base.ok());
  std::map<std::string, Bytes> colliding;
  colliding["/secrets/api-key"] = to_bytes("override attempt");
  auto r = fx.client.customize_and_finalize(*base, fx.client.public_key(), colliding,
                                            "x", "v1", fx.config);
  ASSERT_FALSE(r.ok());
}

TEST(SecureImage, StdoutDecryptsOnlyWithScfKey) {
  SecureFixture fx;
  SecureImageSpec spec = fx.spec("svc");
  auto manifest = fx.client.build_secure_image(spec, fx.config);
  ASSERT_TRUE(manifest.ok());
  auto container = fx.engine.create("svc:latest");
  ASSERT_TRUE(container.ok());

  auto outcome = fx.engine.run_secure(
      **container, fx.platform, fx.config,
      [](scone::AppContext& ctx) -> Result<Bytes> {
        ctx.out.print("sensitive log line");
        return Bytes{};
      });
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->stdout_records.size(), 1u);

  // Host sees ciphertext only.
  const std::string record(outcome->stdout_records[0].begin(),
                           outcome->stdout_records[0].end());
  EXPECT_EQ(record.find("sensitive"), std::string::npos);

  // The wrong key cannot decrypt.
  scone::ProtectedStreamReader wrong_reader(Bytes(16, 0x00));
  EXPECT_FALSE(wrong_reader.read(outcome->stdout_records[0]).ok());
}

// ------------------------------------------------------------------- Monitor

TEST(Monitor, ProfilesAndBilling) {
  ContainerMonitor monitor;
  monitor.record("c1", {.at_cycles = 100, .cpu_cycles = 50, .mem_bytes = 1000, .io_bytes = 10});
  monitor.record("c1", {.at_cycles = 200, .cpu_cycles = 150, .mem_bytes = 3000, .io_bytes = 30});
  monitor.record("c2", {.at_cycles = 100, .cpu_cycles = 10, .mem_bytes = 500, .io_bytes = 0});

  const auto p1 = monitor.profile("c1");
  EXPECT_EQ(p1.samples, 2u);
  EXPECT_DOUBLE_EQ(p1.avg_cpu_cycles_per_sample, 100.0);
  EXPECT_DOUBLE_EQ(p1.avg_mem_bytes, 2000.0);
  EXPECT_DOUBLE_EQ(p1.peak_mem_bytes, 3000.0);

  const auto billing = monitor.billing_report();
  EXPECT_EQ(billing.at("c1"), 200u);
  EXPECT_EQ(billing.at("c2"), 10u);

  EXPECT_EQ(monitor.profile("ghost").samples, 0u);
}

// Regression: the monitor used to keep every raw sample forever (and
// recompute profiles by replaying them). Retention now bounds the raw
// window while the running aggregates keep profile() and billing covering
// the full history, bit-identical to an unbounded monitor.
TEST(Monitor, RetentionBoundsWindowWithoutChangingAggregates) {
  ContainerMonitor bounded, unbounded;
  bounded.set_retention(64);
  unbounded.set_retention(100'000);
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    const ResourceSample sample{.at_cycles = i * 100,
                                .cpu_cycles = 10 + (i % 7),
                                .mem_bytes = 1000 + (i % 13) * 100,
                                .io_bytes = i % 3};
    bounded.record("c", sample);
    unbounded.record("c", sample);
  }

  // Raw window is bounded (amortized trim: transiently up to 2x).
  const auto* window = bounded.samples("c");
  ASSERT_NE(window, nullptr);
  EXPECT_LE(window->size(), 128u);
  EXPECT_GE(window->size(), 64u);
  // Newest samples survive, oldest are the ones dropped.
  EXPECT_EQ(window->back().at_cycles, 999u * 100);

  // Aggregates cover all 1000 samples and match the unbounded monitor
  // exactly — same doubles, accumulated in the same arrival order.
  const auto pb = bounded.profile("c");
  const auto pu = unbounded.profile("c");
  EXPECT_EQ(pb.samples, 1'000u);
  EXPECT_EQ(pb.avg_cpu_cycles_per_sample, pu.avg_cpu_cycles_per_sample);
  EXPECT_EQ(pb.avg_mem_bytes, pu.avg_mem_bytes);
  EXPECT_EQ(pb.peak_mem_bytes, pu.peak_mem_bytes);
  EXPECT_EQ(pb.avg_io_bytes_per_sample, pu.avg_io_bytes_per_sample);
  EXPECT_EQ(bounded.billing_report().at("c"), unbounded.billing_report().at("c"));

  // set_retention(0) clamps to 1 rather than keeping nothing.
  ContainerMonitor clamp;
  clamp.set_retention(0);
  EXPECT_EQ(clamp.retention(), 1u);
}

TEST(Monitor, ObsCountersMirrorIngestion) {
  obs::Registry registry;
  ContainerMonitor monitor;
  monitor.set_obs(&registry);
  monitor.record("a", {.at_cycles = 1, .cpu_cycles = 5, .mem_bytes = 10, .io_bytes = 0});
  monitor.record("b", {.at_cycles = 2, .cpu_cycles = 7, .mem_bytes = 10, .io_bytes = 0});
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("container_samples_total"), 2u);
  EXPECT_EQ(snap.counters.at("container_cpu_cycles_total"), 12u);
  EXPECT_EQ(snap.gauges.at("container_tracked"), 2);
}

TEST(Monitor, SecureRunsAreAccounted) {
  SecureFixture fx;
  auto manifest = fx.client.build_secure_image(fx.spec("svc"), fx.config);
  ASSERT_TRUE(manifest.ok());
  auto container = fx.engine.create("svc:latest");
  ASSERT_TRUE(container.ok());
  auto outcome = fx.engine.run_secure(
      **container, fx.platform, fx.config,
      [](scone::AppContext&) -> Result<Bytes> { return Bytes{}; });
  ASSERT_TRUE(outcome.ok());
  const auto profile = fx.monitor.profile((*container)->id());
  EXPECT_EQ(profile.samples, 1u);
  EXPECT_GT(profile.avg_cpu_cycles_per_sample, 0.0);  // transitions charged
}

}  // namespace
}  // namespace securecloud::container
