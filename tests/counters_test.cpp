// Monotonic counters, rollback-protected sealed state, and local
// attestation between enclaves on one platform.
#include <gtest/gtest.h>

#include "sgx/counters.hpp"
#include "sgx/platform.hpp"

namespace securecloud::sgx {
namespace {

using crypto::DeterministicEntropy;

EnclaveImage image_named(const std::string& name, std::uint64_t signer_seed = 77) {
  EnclaveImage image;
  image.name = name;
  image.code = to_bytes("code:" + name);
  DeterministicEntropy entropy(signer_seed);
  sign_image(image, crypto::ed25519_keypair(entropy.array<32>()));
  return image;
}

// ------------------------------------------------------ MonotonicCounters

TEST(MonotonicCounters, CreateReadIncrement) {
  MonotonicCounterService service;
  Measurement owner{};
  owner.fill(0x11);
  const auto id = service.create(owner);
  auto v = service.read(owner, id);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0u);
  EXPECT_EQ(*service.increment(owner, id), 1u);
  EXPECT_EQ(*service.increment(owner, id), 2u);
  EXPECT_EQ(*service.read(owner, id), 2u);
}

TEST(MonotonicCounters, NamespacedByOwner) {
  MonotonicCounterService service;
  Measurement a{}, b{};
  a.fill(0x01);
  b.fill(0x02);
  const auto id_a = service.create(a);
  // Same numeric id under a different owner is a different counter.
  EXPECT_FALSE(service.read(b, id_a).ok());
  EXPECT_FALSE(service.increment(b, id_a).ok());
  const auto id_b = service.create(b);
  (void)service.increment(a, id_a);
  EXPECT_EQ(*service.read(b, id_b), 0u);  // untouched by a's increments
}

TEST(MonotonicCounters, DestroyRemoves) {
  MonotonicCounterService service;
  Measurement owner{};
  const auto id = service.create(owner);
  ASSERT_TRUE(service.destroy(owner, id).ok());
  EXPECT_FALSE(service.read(owner, id).ok());
  EXPECT_FALSE(service.destroy(owner, id).ok());
}

// --------------------------------------------------- VersionedSealedState

TEST(VersionedSealedState, PersistRestoreRoundTrip) {
  Platform platform;
  MonotonicCounterService counters;
  auto enclave = platform.create_enclave(image_named("svc"));
  ASSERT_TRUE(enclave.ok());
  VersionedSealedState state(**enclave, counters);

  auto blob = state.persist(to_bytes("generation-1"));
  ASSERT_TRUE(blob.ok());
  auto restored = state.restore(*blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(to_string(*restored), "generation-1");
}

TEST(VersionedSealedState, DetectsRollbackToOldSnapshot) {
  Platform platform;
  MonotonicCounterService counters;
  auto enclave = platform.create_enclave(image_named("svc"));
  ASSERT_TRUE(enclave.ok());
  VersionedSealedState state(**enclave, counters);

  auto old_blob = state.persist(to_bytes("generation-1"));
  auto new_blob = state.persist(to_bytes("generation-2"));
  ASSERT_TRUE(old_blob.ok() && new_blob.ok());

  // The current snapshot restores; the old (validly sealed!) one is
  // rejected as a rollback.
  ASSERT_TRUE(state.restore(*new_blob).ok());
  auto rollback = state.restore(*old_blob);
  ASSERT_FALSE(rollback.ok());
  EXPECT_EQ(rollback.error().code, ErrorCode::kProtocolError);
}

TEST(VersionedSealedState, TamperedBlobRejected) {
  Platform platform;
  MonotonicCounterService counters;
  auto enclave = platform.create_enclave(image_named("svc"));
  ASSERT_TRUE(enclave.ok());
  VersionedSealedState state(**enclave, counters);
  auto persisted = state.persist(to_bytes("data"));
  ASSERT_TRUE(persisted.ok());
  Bytes blob = std::move(persisted).value();
  blob[blob.size() / 2] ^= 1;
  EXPECT_FALSE(state.restore(blob).ok());
}

TEST(VersionedSealedState, PersistFailsWhenCounterGone) {
  // Regression: a failed counter increment must surface, not silently
  // seal version 0 (which would restore "successfully" after destroying
  // the real counter — exactly the rollback hole the class closes).
  Platform platform;
  MonotonicCounterService counters;
  auto enclave = platform.create_enclave(image_named("svc"));
  ASSERT_TRUE(enclave.ok());
  VersionedSealedState state(**enclave, counters);

  // The platform "loses" the counter (e.g. TPM reset / host interference).
  ASSERT_TRUE(counters.destroy((*enclave)->mrenclave(), 0).ok());

  auto blob = state.persist(to_bytes("generation-1"));
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.error().code, ErrorCode::kNotFound);
}

// ------------------------------------------------------- LocalAttestation

TEST(LocalAttestation, TargetVerifiesReport) {
  Platform platform;
  auto prover = platform.create_enclave(image_named("prover", 1));
  auto verifier = platform.create_enclave(image_named("verifier", 2));
  ASSERT_TRUE(prover.ok() && verifier.ok());

  const ReportData rd = report_data_from_hash(crypto::Sha256::hash(to_bytes("ctx")));
  const Report report = (*prover)->create_report_for((*verifier)->mrenclave(), rd);

  auto verified = (*verifier)->verify_local_report(report);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified->mrenclave, (*prover)->mrenclave());
  EXPECT_EQ(verified->report_data, rd);
}

TEST(LocalAttestation, WrongTargetCannotVerify) {
  Platform platform;
  auto prover = platform.create_enclave(image_named("prover", 1));
  auto intended = platform.create_enclave(image_named("intended", 2));
  auto eavesdropper = platform.create_enclave(image_named("eavesdropper", 3));
  ASSERT_TRUE(prover.ok() && intended.ok() && eavesdropper.ok());

  const Report report =
      (*prover)->create_report_for((*intended)->mrenclave(), ReportData{});
  EXPECT_TRUE((*intended)->verify_local_report(report).ok());
  EXPECT_FALSE((*eavesdropper)->verify_local_report(report).ok());
}

TEST(LocalAttestation, CrossPlatformReportRejected) {
  PlatformConfig config_a, config_b;
  config_a.platform_id = "a";
  config_a.entropy_seed = 1;
  config_b.platform_id = "b";
  config_b.entropy_seed = 2;
  Platform pa(config_a), pb(config_b);
  auto prover = pa.create_enclave(image_named("prover", 1));
  auto verifier_b = pb.create_enclave(image_named("verifier", 2));
  ASSERT_TRUE(prover.ok() && verifier_b.ok());

  const Report report =
      (*prover)->create_report_for((*verifier_b)->mrenclave(), ReportData{});
  // Different platform => different report key => MAC invalid.
  EXPECT_FALSE((*verifier_b)->verify_local_report(report).ok());
}

TEST(LocalAttestation, TamperedReportRejected) {
  Platform platform;
  auto prover = platform.create_enclave(image_named("prover", 1));
  auto verifier = platform.create_enclave(image_named("verifier", 2));
  ASSERT_TRUE(prover.ok() && verifier.ok());
  Report report = (*prover)->create_report_for((*verifier)->mrenclave(), ReportData{});
  report.mrenclave[5] ^= 1;  // claim a different identity
  EXPECT_FALSE((*verifier)->verify_local_report(report).ok());
}

}  // namespace
}  // namespace securecloud::sgx
