// Additional crypto vectors and adversarial edge cases beyond the core
// suite: more FIPS/NIST/RFC vectors, boundary-length messages, and
// cross-primitive consistency properties.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/ctr.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/entropy.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/secure_channel.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/x25519.hpp"

namespace securecloud::crypto {
namespace {

std::string hex(ByteView b) { return hex_encode(b); }

// --------------------------------------------------- more SHA-2 vectors

TEST(Sha2Extra, Sha256SingleByte) {
  // NIST CAVP short message: one byte 0xbd.
  EXPECT_EQ(hex(Sha256::hash(Bytes{0xbd})),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b");
}

TEST(Sha2Extra, Sha256ExactBlockBoundaries) {
  // Messages of exactly 55/56/64 bytes cross the padding boundary cases.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 'a');
    Sha256 split;
    split.update(ByteView(msg.data(), len / 2));
    split.update(ByteView(msg.data() + len / 2, len - len / 2));
    EXPECT_EQ(split.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha2Extra, Sha512TwoBlockVector) {
  // FIPS 180-4 example: 896-bit message.
  EXPECT_EQ(
      hex(Sha512::hash(to_bytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha2Extra, Sha512BlockBoundaries) {
  for (const std::size_t len : {111u, 112u, 127u, 128u, 129u, 240u}) {
    const Bytes msg(len, 'z');
    Sha512 split;
    split.update(ByteView(msg.data(), len / 3));
    split.update(ByteView(msg.data() + len / 3, len - len / 3));
    EXPECT_EQ(split.finish(), Sha512::hash(msg)) << "len=" << len;
  }
}

// ------------------------------------------------------ more HMAC vectors

TEST(HmacExtra, Rfc4231Case3) {
  // key = 20 x 0xaa, data = 50 x 0xdd.
  EXPECT_EQ(hex(HmacSha256::mac(Bytes(20, 0xaa), Bytes(50, 0xdd))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacExtra, Rfc4231Case4) {
  const Bytes key = hex_decode("0102030405060708090a0b0c0d0e0f10111213141516171819");
  EXPECT_EQ(hex(HmacSha256::mac(key, Bytes(50, 0xcd))),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacExtra, StreamingEqualsOneShot) {
  Rng rng(1);
  Bytes key(32), data(1000);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  HmacSha256 h(key);
  h.update(ByteView(data.data(), 100));
  h.update(ByteView(data.data() + 100, 900));
  EXPECT_EQ(h.finish(), HmacSha256::mac(key, data));
}

// ----------------------------------------------------------- HKDF case 2

TEST(HkdfExtra, Rfc5869Case2LongInputs) {
  Bytes ikm(80), salt(80), info(80);
  for (std::size_t i = 0; i < 80; ++i) {
    ikm[i] = static_cast<std::uint8_t>(i);
    salt[i] = static_cast<std::uint8_t>(0x60 + i);
    info[i] = static_cast<std::uint8_t>(0xb0 + i);
  }
  const Bytes okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(hex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(HkdfExtra, Rfc5869Case3NoSaltNoInfo) {
  const Bytes ikm(22, 0x0b);
  EXPECT_EQ(hex(hkdf({}, ikm, {}, 42)),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

// ------------------------------------------------------- AES-CTR vectors

TEST(CtrExtra, NistSp80038aAes128Ctr) {
  // SP 800-38A F.5.1 CTR-AES128.Encrypt.
  const Aes aes(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
  std::uint8_t iv[16];
  const Bytes iv_bytes = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::copy(iv_bytes.begin(), iv_bytes.end(), iv);
  const Bytes pt = hex_decode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes ct = aes_ctr(aes, iv, pt);
  EXPECT_EQ(hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

// -------------------------------------------------- GCM corner behaviours

TEST(GcmExtra, AadOnlyMessage) {
  const AesGcm gcm(Bytes(16, 0x01));
  const GcmNonce nonce = nonce_from_counter(1);
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce, to_bytes("only authenticated data"), {}, tag);
  EXPECT_TRUE(ct.empty());
  EXPECT_TRUE(gcm.open(nonce, to_bytes("only authenticated data"), {}, tag).ok());
  EXPECT_FALSE(gcm.open(nonce, to_bytes("only authenticated datA"), {}, tag).ok());
}

TEST(GcmExtra, TagDependsOnNonceDomain) {
  const AesGcm gcm(Bytes(16, 0x02));
  GcmTag t1, t2;
  (void)gcm.seal(nonce_from_counter(5, 1), {}, to_bytes("m"), t1);
  (void)gcm.seal(nonce_from_counter(5, 2), {}, to_bytes("m"), t2);
  EXPECT_NE(t1, t2);
}

TEST(GcmExtra, EverySingleBitFlipInTagDetected) {
  const AesGcm gcm(Bytes(16, 0x03));
  const GcmNonce nonce = nonce_from_counter(9);
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce, {}, to_bytes("integrity matters"), tag);
  for (std::size_t byte = 0; byte < tag.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      GcmTag corrupted = tag;
      corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(gcm.open(nonce, {}, ct, corrupted).ok());
    }
  }
}

// ------------------------------------------------- X25519 special points

TEST(X25519Extra, Rfc7748Vector2) {
  X25519Key scalar{}, point{};
  const Bytes s = hex_decode(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const Bytes u = hex_decode(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  std::copy(s.begin(), s.end(), scalar.begin());
  std::copy(u.begin(), u.end(), point.begin());
  EXPECT_EQ(hex(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Extra, IteratedVectorOneThousand) {
  // RFC 7748 iteration test: after 1,000 iterations of k = X25519(k, u).
  X25519Key k{}, u{};
  k[0] = 9;
  u[0] = 9;
  for (int i = 0; i < 1000; ++i) {
    const X25519Key next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(hex(k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

// ----------------------------------------------------- Ed25519 RFC case 3

TEST(Ed25519Extra, Rfc8032Test3TwoBytes) {
  const Bytes seed_bytes = hex_decode(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
  Ed25519Seed seed{};
  std::copy(seed_bytes.begin(), seed_bytes.end(), seed.begin());
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(hex(kp.public_key),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025");
  const Bytes msg = hex_decode("af82");
  EXPECT_EQ(hex(ed25519_sign(kp, msg)),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a");
}

TEST(Ed25519Extra, SignatureIsDeterministic) {
  DeterministicEntropy entropy(5);
  const auto kp = ed25519_keypair(entropy.array<32>());
  const Bytes msg = to_bytes("same input, same signature");
  EXPECT_EQ(ed25519_sign(kp, msg), ed25519_sign(kp, msg));
}

// ----------------------------------------------- channel stress behaviour

TEST(ChannelExtra, ManyMessagesBothDirections) {
  DeterministicEntropy entropy(6);
  ChannelHandshake client(ChannelHandshake::Role::kInitiator, entropy);
  ChannelHandshake server(ChannelHandshake::Role::kResponder, entropy);
  const X25519Key cpk = client.local_public_key();
  const X25519Key spk = server.local_public_key();
  auto cr = std::move(client).complete(spk);
  auto sr = std::move(server).complete(cpk);
  ASSERT_TRUE(cr.ok() && sr.ok());
  auto& c = *cr;
  auto& s = *sr;

  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Bytes msg(rng.uniform(200));
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    auto up = s.open(c.seal(msg));
    ASSERT_TRUE(up.ok());
    EXPECT_EQ(*up, msg);
    auto down = c.open(s.seal(msg));
    ASSERT_TRUE(down.ok());
    EXPECT_EQ(*down, msg);
  }
}

TEST(ChannelExtra, MismatchedHandshakeKeysFail) {
  DeterministicEntropy entropy(8);
  ChannelHandshake client(ChannelHandshake::Role::kInitiator, entropy);
  ChannelHandshake server(ChannelHandshake::Role::kResponder, entropy);
  ChannelHandshake mitm(ChannelHandshake::Role::kResponder, entropy);
  const X25519Key cpk = client.local_public_key();

  // Client completes against the MITM's key; server against the client.
  auto cr = std::move(client).complete(mitm.local_public_key());
  auto sr = std::move(server).complete(cpk);
  ASSERT_TRUE(cr.ok() && sr.ok());
  // Keys disagree: records cannot cross.
  EXPECT_FALSE(sr->open(cr->seal(to_bytes("hello"))).ok());
  EXPECT_NE(cr->transcript_hash(), sr->transcript_hash());
}

// ------------------------------------------------ record-layer abuse suite
//
// What an on-path attacker can do to a record stream once the handshake
// is done: replay, reorder, truncate, and reflect. Every manipulation
// must surface as a typed error, and the channel must keep working for
// the still-valid direction where the protocol allows it.

struct ChannelPair {
  SecureChannel client;
  SecureChannel server;
};

ChannelPair make_abuse_pair(std::uint64_t seed) {
  DeterministicEntropy entropy(seed);
  ChannelHandshake client(ChannelHandshake::Role::kInitiator, entropy);
  ChannelHandshake server(ChannelHandshake::Role::kResponder, entropy);
  const X25519Key cpk = client.local_public_key();
  const X25519Key spk = server.local_public_key();
  auto c = std::move(client).complete(spk);
  auto s = std::move(server).complete(cpk);
  EXPECT_TRUE(c.ok() && s.ok());
  return {std::move(*c), std::move(*s)};
}

TEST(ChannelAbuse, ReplayAfterInterveningTraffic) {
  auto [client, server] = make_abuse_pair(41);
  const Bytes first = client.seal(to_bytes("one"));
  ASSERT_TRUE(server.open(first).ok());
  ASSERT_TRUE(server.open(client.seal(to_bytes("two"))).ok());
  // Replaying the *first* record long after it was consumed must still
  // fail (the window never reopens).
  auto replay = server.open(first);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, ErrorCode::kProtocolError);
}

TEST(ChannelAbuse, ReorderIsRejectedButStreamSurvives) {
  auto [client, server] = make_abuse_pair(42);
  const Bytes w1 = client.seal(to_bytes("first"));
  const Bytes w2 = client.seal(to_bytes("second"));
  const Bytes w3 = client.seal(to_bytes("third"));
  EXPECT_FALSE(server.open(w3).ok());  // skipped ahead
  EXPECT_FALSE(server.open(w2).ok());  // still not the expected sequence
  // The in-order record remains acceptable: rejects consume no state.
  auto r1 = server.open(w1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(to_string(*r1), "first");
}

TEST(ChannelAbuse, TruncationAtEveryBoundaryFails) {
  auto [client, server] = make_abuse_pair(43);
  const Bytes wire = client.seal(to_bytes("do not shorten me"));
  for (std::size_t keep : {std::size_t{0}, std::size_t{1}, wire.size() / 2,
                           wire.size() - 17, wire.size() - 1}) {
    const Bytes cut(wire.begin(),
                    wire.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(keep, wire.size())));
    EXPECT_FALSE(server.open(cut).ok()) << "accepted truncation to " << keep;
  }
  // Untouched record still opens: failed attempts burned no sequence.
  EXPECT_TRUE(server.open(wire).ok());
}

TEST(ChannelAbuse, ReflectionAcrossDirectionsFails) {
  auto [client, server] = make_abuse_pair(44);
  // Reflecting a record back at its own sender must fail even at equal
  // sequence numbers — the two directions run domain-separated nonces
  // and independent keys.
  const Bytes from_client = client.seal(to_bytes("bounce me"));
  auto reflected = client.open(from_client);
  ASSERT_FALSE(reflected.ok());
  EXPECT_EQ(reflected.error().code, ErrorCode::kIntegrityViolation);
  // And the legitimate receiver still accepts it afterwards.
  EXPECT_TRUE(server.open(from_client).ok());
}

TEST(ChannelAbuse, TranscriptHashesAgreeAndBindBothKeys) {
  auto [client, server] = make_abuse_pair(45);
  EXPECT_EQ(client.transcript_hash(), server.transcript_hash());
  // A different handshake (different ephemerals) yields a different
  // transcript — the value is session-unique, which is what lets the
  // attestation layer bind a quote to one live channel.
  auto [client2, server2] = make_abuse_pair(46);
  EXPECT_NE(client.transcript_hash(), client2.transcript_hash());
}

}  // namespace
}  // namespace securecloud::crypto
