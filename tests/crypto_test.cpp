// Crypto layer tests: RFC/NIST vectors for every primitive plus
// property-style round-trip and tamper-rejection sweeps.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/ctr.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/entropy.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/secure_channel.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/x25519.hpp"

namespace securecloud::crypto {
namespace {

std::string hex(ByteView b) { return hex_encode(b); }

template <std::size_t N>
std::array<std::uint8_t, N> from_hex(std::string_view h) {
  const Bytes b = hex_decode(h);
  EXPECT_EQ(b.size(), N);
  std::array<std::uint8_t, N> out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAtAllSplitPoints) {
  const Bytes msg = to_bytes(
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789abcdef");
  const auto expected = Sha256::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(ByteView(msg.data(), split));
    h.update(ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), expected) << "split=" << split;
  }
}

// ---------------------------------------------------------------- SHA-512

TEST(Sha512, EmptyString) {
  EXPECT_EQ(hex(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(hex(Sha512::hash(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, StreamingMatchesOneShot) {
  Bytes msg(777);
  Rng rng(1);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  const auto expected = Sha512::hash(msg);
  Sha512 h;
  h.update(ByteView(msg.data(), 100));
  h.update(ByteView(msg.data() + 100, 28));
  h.update(ByteView(msg.data() + 128, msg.size() - 128));
  EXPECT_EQ(h.finish(), expected);
}

// ------------------------------------------------------------------ HMAC

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(HmacSha256::mac(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex(HmacSha256::mac(to_bytes("Jefe"),
                                to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex(HmacSha256::mac(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash "
                              "Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

// ------------------------------------------------------------------ HKDF

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex_decode("000102030405060708090a0b0c");
  const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");

  const auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandProducesRequestedLengths) {
  const Bytes prk = Bytes(32, 0x42);
  for (std::size_t len : {1u, 16u, 31u, 32u, 33u, 64u, 255u, 8160u}) {
    EXPECT_EQ(hkdf_expand(prk, to_bytes("info"), len).size(), len);
  }
}

TEST(Hkdf, DistinctInfoGivesDistinctKeys) {
  const Bytes ikm = Bytes(32, 0x01);
  EXPECT_NE(hkdf({}, ikm, to_bytes("key-a"), 32), hkdf({}, ikm, to_bytes("key-b"), 32));
}

// ------------------------------------------------------------------- AES

TEST(Aes, Fips197Aes128) {
  const Aes aes(hex_decode("000102030405060708090a0b0c0d0e0f"));
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");

  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(hex(ByteView(back, 16)), hex(pt));
}

TEST(Aes, Fips197Aes256) {
  const Aes aes(hex_decode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex(ByteView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");

  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(hex(ByteView(back, 16)), hex(pt));
}

TEST(Aes, EncryptDecryptInverseProperty) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes key(trial % 2 == 0 ? 16 : 32);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    const Aes aes(key);
    std::uint8_t pt[16], ct[16], back[16];
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(std::memcmp(pt, back, 16), 0);
  }
}

// ------------------------------------------------------------------- CTR

TEST(Ctr, XorTwiceIsIdentity) {
  const Aes aes(Bytes(16, 0x55));
  std::uint8_t iv[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0, 0, 0, 1};
  Bytes data = to_bytes("counter mode round trips at any length, even odd ones");
  const Bytes orig = data;
  aes_ctr_xor(aes, iv, data);
  EXPECT_NE(data, orig);
  aes_ctr_xor(aes, iv, data);
  EXPECT_EQ(data, orig);
}

// ------------------------------------------------------------------- GCM

TEST(Gcm, NistCase1EmptyPlaintext) {
  const AesGcm gcm(Bytes(16, 0x00));
  GcmNonce nonce{};
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce, {}, {}, tag);
  EXPECT_TRUE(ct.empty());
  EXPECT_EQ(hex(tag), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Gcm, NistCase2SingleBlock) {
  const AesGcm gcm(Bytes(16, 0x00));
  GcmNonce nonce{};
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce, {}, Bytes(16, 0x00), tag);
  EXPECT_EQ(hex(ct), "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(hex(tag), "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Gcm, NistCase3FourBlocks) {
  const AesGcm gcm(hex_decode("feffe9928665731c6d6a8f9467308308"));
  const auto nonce = from_hex<12>("cafebabefacedbaddecaf888");
  const Bytes pt = hex_decode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce, {}, pt, tag);
  EXPECT_EQ(hex(ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985");
  EXPECT_EQ(hex(tag), "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(Gcm, NistCase4WithAad) {
  const AesGcm gcm(hex_decode("feffe9928665731c6d6a8f9467308308"));
  const auto nonce = from_hex<12>("cafebabefacedbaddecaf888");
  const Bytes pt = hex_decode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = hex_decode("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce, aad, pt, tag);
  EXPECT_EQ(hex(ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
  EXPECT_EQ(hex(tag), "5bc94fbc3221a5db94fae95ae7121a47");

  // And the decryption path verifies and round-trips.
  auto back = gcm.open(nonce, aad, ct, tag);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST(Gcm, RejectsTamperedCiphertext) {
  const AesGcm gcm(Bytes(16, 0x11));
  const GcmNonce nonce = nonce_from_counter(1);
  GcmTag tag;
  Bytes ct = gcm.seal(nonce, to_bytes("aad"), to_bytes("secret payload"), tag);
  ct[3] ^= 0x01;
  auto r = gcm.open(nonce, to_bytes("aad"), ct, tag);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
}

TEST(Gcm, RejectsTamperedAad) {
  const AesGcm gcm(Bytes(16, 0x11));
  const GcmNonce nonce = nonce_from_counter(2);
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce, to_bytes("aad"), to_bytes("payload"), tag);
  auto r = gcm.open(nonce, to_bytes("axd"), ct, tag);
  EXPECT_FALSE(r.ok());
}

TEST(Gcm, RejectsWrongNonce) {
  const AesGcm gcm(Bytes(16, 0x11));
  GcmTag tag;
  const Bytes ct = gcm.seal(nonce_from_counter(3), {}, to_bytes("payload"), tag);
  EXPECT_FALSE(gcm.open(nonce_from_counter(4), {}, ct, tag).ok());
}

TEST(Gcm, CombinedFormatRoundTrip) {
  const AesGcm gcm(Bytes(32, 0x99));  // AES-256 path
  const Bytes wire = gcm.seal_combined(nonce_from_counter(7), to_bytes("hdr"),
                                       to_bytes("the payload"));
  auto r = gcm.open_combined(to_bytes("hdr"), wire);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "the payload");
}

TEST(Gcm, CombinedFormatRejectsShortBuffer) {
  const AesGcm gcm(Bytes(16, 0x01));
  auto r = gcm.open_combined({}, Bytes(10, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kProtocolError);
}

// Property sweep: round-trip across message sizes crossing block
// boundaries, both key sizes.
class GcmRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmRoundTrip, SealOpenIdentity) {
  Rng rng(GetParam() * 1000 + 17);
  for (const std::size_t key_size : {16u, 32u}) {
    Bytes key(key_size);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    const AesGcm gcm(key);
    Bytes pt(GetParam());
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    Bytes aad(GetParam() % 37);
    for (auto& b : aad) b = static_cast<std::uint8_t>(rng.next());

    GcmTag tag;
    const GcmNonce nonce = nonce_from_counter(GetParam());
    const Bytes ct = gcm.seal(nonce, aad, pt, tag);
    ASSERT_EQ(ct.size(), pt.size());
    auto back = gcm.open(nonce, aad, ct, tag);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, pt);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 63, 64,
                                           65, 255, 256, 1000, 4096));

// ---------------------------------------------------------------- X25519

TEST(X25519, Rfc7748Vector1) {
  const auto scalar = from_hex<32>(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = from_hex<32>(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(hex(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748DiffieHellman) {
  const auto alice_priv = from_hex<32>(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv = from_hex<32>(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_pub = x25519_base(alice_priv);
  const auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto k1 = x25519(alice_priv, bob_pub);
  const auto k2 = x25519(bob_priv, alice_pub);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(hex(k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, AgreementPropertyOverRandomKeys) {
  DeterministicEntropy entropy(42);
  for (int i = 0; i < 10; ++i) {
    const auto a = x25519_keypair(entropy.array<32>());
    const auto b = x25519_keypair(entropy.array<32>());
    EXPECT_EQ(x25519(a.private_key, b.public_key),
              x25519(b.private_key, a.public_key));
  }
}

// --------------------------------------------------------------- Ed25519

TEST(Ed25519, Rfc8032Test1EmptyMessage) {
  const auto seed = from_hex<32>(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(hex(kp.public_key),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");

  const auto sig = ed25519_sign(kp, {});
  EXPECT_EQ(hex(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify(kp.public_key, {}, sig));
}

TEST(Ed25519, Rfc8032Test2OneByte) {
  const auto seed = from_hex<32>(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(hex(kp.public_key),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");

  const Bytes msg = hex_decode("72");
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_EQ(hex(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, RejectsTamperedMessage) {
  DeterministicEntropy entropy(1);
  const auto kp = ed25519_keypair(entropy.array<32>());
  const Bytes msg = to_bytes("sign me");
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_TRUE(ed25519_verify(kp.public_key, msg, sig));
  EXPECT_FALSE(ed25519_verify(kp.public_key, to_bytes("sign mE"), sig));
}

TEST(Ed25519, RejectsTamperedSignature) {
  DeterministicEntropy entropy(2);
  const auto kp = ed25519_keypair(entropy.array<32>());
  const Bytes msg = to_bytes("message");
  auto sig = ed25519_sign(kp, msg);
  sig[10] ^= 0x40;
  EXPECT_FALSE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, RejectsWrongKey) {
  DeterministicEntropy entropy(3);
  const auto kp1 = ed25519_keypair(entropy.array<32>());
  const auto kp2 = ed25519_keypair(entropy.array<32>());
  const Bytes msg = to_bytes("message");
  const auto sig = ed25519_sign(kp1, msg);
  EXPECT_FALSE(ed25519_verify(kp2.public_key, msg, sig));
}

TEST(Ed25519, SignVerifyPropertyOverMessageSizes) {
  DeterministicEntropy entropy(4);
  const auto kp = ed25519_keypair(entropy.array<32>());
  Rng rng(9);
  for (std::size_t len : {0u, 1u, 32u, 63u, 64u, 65u, 100u, 1000u}) {
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_TRUE(ed25519_verify(kp.public_key, msg, ed25519_sign(kp, msg)));
  }
}

// ---------------------------------------------------------- SecureChannel

// Helper performing the one-round-trip handshake between two endpoints.
std::pair<SecureChannel, SecureChannel> make_channel_pair(std::uint64_t seed) {
  DeterministicEntropy entropy(seed);
  ChannelHandshake client(ChannelHandshake::Role::kInitiator, entropy);
  ChannelHandshake server(ChannelHandshake::Role::kResponder, entropy);
  const X25519Key client_pub = client.local_public_key();
  const X25519Key server_pub = server.local_public_key();
  auto c = std::move(client).complete(server_pub);
  auto s = std::move(server).complete(client_pub);
  EXPECT_TRUE(c.ok() && s.ok());
  return {std::move(*c), std::move(*s)};
}

TEST(SecureChannel, RejectsAllZeroSharedSecret) {
  // RFC 7748 §6.1 contributory behavior: an all-zero peer point (and any
  // low-order point) forces the X25519 output to zero, keying the channel
  // on material the attacker already knows. complete() must refuse.
  DeterministicEntropy entropy(99);
  ChannelHandshake victim(ChannelHandshake::Role::kInitiator, entropy);
  const X25519Key zero_point{};  // the all-zero u-coordinate
  auto channel = std::move(victim).complete(zero_point);
  ASSERT_FALSE(channel.ok());
  EXPECT_EQ(channel.error().code, ErrorCode::kProtocolError);
}

TEST(SecureChannel, HandshakeAndBidirectionalTraffic) {
  auto [client, server] = make_channel_pair(5);

  const Bytes wire1 = client.seal(to_bytes("hello from client"));
  auto r1 = server.open(wire1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(to_string(*r1), "hello from client");

  const Bytes wire2 = server.seal(to_bytes("hello from server"));
  auto r2 = client.open(wire2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(to_string(*r2), "hello from server");
}

TEST(SecureChannel, TranscriptHashesAgree) {
  auto [client, server] = make_channel_pair(6);
  EXPECT_EQ(client.transcript_hash(), server.transcript_hash());
}

TEST(SecureChannel, WireIsNotPlaintext) {
  auto [client, server] = make_channel_pair(7);
  const Bytes msg = to_bytes("sensitive smart meter reading: 4.2 kWh");
  const Bytes wire = client.seal(msg);
  // The plaintext must not appear anywhere in the record.
  const std::string w(wire.begin(), wire.end());
  EXPECT_EQ(w.find("smart meter"), std::string::npos);
}

TEST(SecureChannel, RejectsReplay) {
  auto [client, server] = make_channel_pair(8);
  const Bytes wire = client.seal(to_bytes("msg"));
  ASSERT_TRUE(server.open(wire).ok());
  auto replay = server.open(wire);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, ErrorCode::kProtocolError);
}

TEST(SecureChannel, RejectsReorder) {
  auto [client, server] = make_channel_pair(9);
  const Bytes w1 = client.seal(to_bytes("first"));
  const Bytes w2 = client.seal(to_bytes("second"));
  EXPECT_FALSE(server.open(w2).ok());  // out of order
  EXPECT_TRUE(server.open(w1).ok());   // still in sequence
}

TEST(SecureChannel, RejectsTampering) {
  auto [client, server] = make_channel_pair(10);
  Bytes wire = client.seal(to_bytes("payload"));
  wire[wire.size() / 2] ^= 0x80;
  auto r = server.open(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
}

TEST(SecureChannel, RejectsTruncatedRecord) {
  auto [client, server] = make_channel_pair(11);
  EXPECT_FALSE(server.open(Bytes(5, 0)).ok());
}

TEST(SecureChannel, DirectionsUseIndependentKeys) {
  auto [client, server] = make_channel_pair(12);
  const Bytes from_client = client.seal(to_bytes("same text"));
  const Bytes from_server = server.seal(to_bytes("same text"));
  EXPECT_NE(from_client, from_server);
  // A client record must not decrypt as a server->client record.
  EXPECT_FALSE(client.open(from_client).ok());
}

}  // namespace
}  // namespace securecloud::crypto
