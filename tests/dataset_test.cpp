// Sealed dataset tests: verifiable random access, substitution/reorder/
// truncation attacks, wrong keys.
#include <gtest/gtest.h>

#include "bigdata/dataset.hpp"

namespace securecloud::bigdata {
namespace {

using crypto::DeterministicEntropy;

struct DatasetFixture {
  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy{61};
  Bytes key = Bytes(16, 0x64);
  DatasetPublisher publisher{storage, entropy};

  std::vector<Bytes> records(std::size_t n) {
    std::vector<Bytes> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(to_bytes("record number " + std::to_string(i)));
    }
    return out;
  }
};

TEST(Dataset, PublishAndReadEveryRecord) {
  DatasetFixture fx;
  const auto records = fx.records(33);  // odd count: irregular tree
  auto handle = fx.publisher.publish("meters-2026", fx.key, records);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->record_count, 33u);

  DatasetReader reader(fx.storage, *handle, fx.key);
  for (std::uint64_t i = 0; i < 33; ++i) {
    auto record = reader.read_record(i);
    ASSERT_TRUE(record.ok()) << i;
    EXPECT_EQ(*record, records[i]);
  }
  EXPECT_FALSE(reader.read_record(33).ok());  // out of range
}

TEST(Dataset, EmptyDatasetRejected) {
  DatasetFixture fx;
  EXPECT_FALSE(fx.publisher.publish("empty", fx.key, {}).ok());
}

TEST(Dataset, StorageHoldsOnlyCiphertext) {
  DatasetFixture fx;
  auto handle = fx.publisher.publish("ds", fx.key, {to_bytes("CONFIDENTIAL-XYZ")});
  ASSERT_TRUE(handle.ok());
  for (const auto& path : fx.storage.list()) {
    const auto content = fx.storage.read_file(path);
    const std::string s(content->begin(), content->end());
    EXPECT_EQ(s.find("CONFIDENTIAL"), std::string::npos) << path;
  }
}

TEST(Dataset, DetectsRecordTampering) {
  DatasetFixture fx;
  auto handle = fx.publisher.publish("ds", fx.key, fx.records(8));
  ASSERT_TRUE(handle.ok());
  (*fx.storage.raw("/dataset/ds/3"))[5] ^= 1;
  DatasetReader reader(fx.storage, *handle, fx.key);
  auto r = reader.read_record(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
  EXPECT_TRUE(reader.read_record(2).ok());  // others unaffected
}

TEST(Dataset, DetectsRecordSubstitutionFromSameDataset) {
  // Swapping two validly encrypted records must fail: the Merkle leaf
  // and the AAD both bind the position.
  DatasetFixture fx;
  auto handle = fx.publisher.publish("ds", fx.key, fx.records(8));
  ASSERT_TRUE(handle.ok());
  std::swap(*fx.storage.raw("/dataset/ds/1"), *fx.storage.raw("/dataset/ds/2"));
  DatasetReader reader(fx.storage, *handle, fx.key);
  EXPECT_FALSE(reader.read_record(1).ok());
  EXPECT_FALSE(reader.read_record(2).ok());
}

TEST(Dataset, DetectsProofSubstitution) {
  DatasetFixture fx;
  auto handle = fx.publisher.publish("ds", fx.key, fx.records(8));
  ASSERT_TRUE(handle.ok());
  // Serve record 1 with record 2's (valid) proof.
  *fx.storage.raw("/dataset/ds/1.proof") = *fx.storage.raw("/dataset/ds/2.proof");
  DatasetReader reader(fx.storage, *handle, fx.key);
  EXPECT_FALSE(reader.read_record(1).ok());
}

TEST(Dataset, DetectsCrossDatasetReplay) {
  // A record validly published in dataset A cannot be served as B's.
  DatasetFixture fx;
  auto a = fx.publisher.publish("a", fx.key, fx.records(4));
  auto b = fx.publisher.publish("b", fx.key, fx.records(4));
  ASSERT_TRUE(a.ok() && b.ok());
  *fx.storage.raw("/dataset/b/0") = *fx.storage.raw("/dataset/a/0");
  *fx.storage.raw("/dataset/b/0.proof") = *fx.storage.raw("/dataset/a/0.proof");
  DatasetReader reader(fx.storage, *b, fx.key);
  EXPECT_FALSE(reader.read_record(0).ok());
}

TEST(Dataset, WrongKeyFailsAfterMerklePasses) {
  DatasetFixture fx;
  auto handle = fx.publisher.publish("ds", fx.key, fx.records(4));
  ASSERT_TRUE(handle.ok());
  DatasetReader reader(fx.storage, *handle, Bytes(16, 0x00));
  auto r = reader.read_record(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
}

TEST(Dataset, ForgedRootRejectsEverything) {
  DatasetFixture fx;
  auto handle = fx.publisher.publish("ds", fx.key, fx.records(4));
  ASSERT_TRUE(handle.ok());
  DatasetHandle forged = *handle;
  forged.root[0] ^= 1;
  DatasetReader reader(fx.storage, forged, fx.key);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(reader.read_record(i).ok());
  }
}

}  // namespace
}  // namespace securecloud::bigdata
