// Application deployment across a host fleet (Fig. 1 as an API).
#include <gtest/gtest.h>

#include "container/billing.hpp"
#include "microservice/deployment.hpp"
#include "sgx/platform.hpp"

namespace securecloud::microservice {
namespace {

ServiceSpec service(const std::string& name, genpack::ContainerClass cls,
                    double cpu = 1.0) {
  ServiceSpec s;
  s.image.name = name;
  s.image.app_code = to_bytes("binary:" + name);
  s.image.protected_files["/secrets/key"] = to_bytes("secret-of-" + name);
  s.scheduling_class = cls;
  s.cpu_cores = cpu;
  return s;
}

ApplicationSpec grid_app() {
  ApplicationSpec app;
  app.name = "grid";
  app.services.push_back(service("monitoring", genpack::ContainerClass::kSystem, 0.5));
  app.services.push_back(service("ingest", genpack::ContainerClass::kService, 2.0));
  app.services.push_back(service("analytics", genpack::ContainerClass::kService, 4.0));
  return app;
}

TEST(Deployment, DeploysAllServicesWithScheduling) {
  sgx::AttestationService attestation;
  CloudDeployer deployer(6, attestation, 42);
  auto placements = deployer.deploy(grid_app());
  ASSERT_TRUE(placements.ok());
  ASSERT_EQ(placements->size(), 3u);

  // System containers land in the old generation of the fleet; services
  // start in the nursery (GenPack semantics carried into deployment).
  const genpack::GenPackScheduler reference(6);
  for (const auto& p : *placements) {
    if (p.service == "monitoring") {
      EXPECT_GE(p.host, reference.young_end());
    } else {
      EXPECT_LT(p.host, reference.nursery_end());
    }
  }
}

TEST(Deployment, ServicesRunAttestedOnTheirHosts) {
  sgx::AttestationService attestation;
  CloudDeployer deployer(6, attestation, 43);
  ASSERT_TRUE(deployer.deploy(grid_app()).ok());

  for (const std::string name : {"monitoring", "ingest", "analytics"}) {
    auto outcome = deployer.run_service(
        name, [&](scone::AppContext& ctx) -> Result<Bytes> {
          auto secret = ctx.fs.read_all("/secrets/key");
          if (!secret.ok()) return secret.error();
          return *secret;
        });
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_EQ(securecloud::to_string(outcome->app_result), "secret-of-" + name);
  }
}

TEST(Deployment, UnknownServiceRejected) {
  sgx::AttestationService attestation;
  CloudDeployer deployer(4, attestation, 44);
  ASSERT_TRUE(deployer.deploy(grid_app()).ok());
  auto r = deployer.run_service("ghost", [](scone::AppContext&) -> Result<Bytes> {
    return Bytes{};
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

TEST(Deployment, CapacityExhaustionReported) {
  sgx::AttestationService attestation;
  CloudDeployer deployer(2, attestation, 45);  // tiny fleet
  ApplicationSpec heavy;
  heavy.name = "heavy";
  for (int i = 0; i < 8; ++i) {
    // 8 services x 16 cores cannot fit 2 hosts x 16 cores.
    heavy.services.push_back(
        service("svc-" + std::to_string(i), genpack::ContainerClass::kService, 16.0));
  }
  auto r = deployer.deploy(heavy);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kResourceExhausted);
}

TEST(Deployment, SecretsNeverReachAnyHostFs) {
  sgx::AttestationService attestation;
  CloudDeployer deployer(4, attestation, 46);
  ASSERT_TRUE(deployer.deploy(grid_app()).ok());
  // Pull every image as the (untrusted) registry client would and scan.
  for (const std::string name : {"monitoring", "ingest", "analytics"}) {
    auto pulled = deployer.registry().pull(name + ":latest");
    ASSERT_TRUE(pulled.ok());
    for (const auto& layer : pulled->layers) {
      for (const auto& [path, content] : layer.files) {
        const std::string s(content.begin(), content.end());
        EXPECT_EQ(s.find("secret-of"), std::string::npos) << path;
      }
    }
  }
}

TEST(Deployment, UsageIsBillable) {
  sgx::AttestationService attestation;
  CloudDeployer deployer(4, attestation, 47);
  auto placements = deployer.deploy(grid_app());
  ASSERT_TRUE(placements.ok());
  for (const std::string name : {"ingest", "analytics"}) {
    ASSERT_TRUE(deployer
                    .run_service(name,
                                 [](scone::AppContext&) -> Result<Bytes> { return Bytes{}; })
                    .ok());
  }

  container::BillingEngine billing;
  std::vector<std::string> ids;
  for (const auto& p : *placements) ids.push_back(p.container_id);
  const auto invoices = billing.generate_invoices(deployer.monitor(), ids);
  double total = 0;
  for (const auto& invoice : invoices) total += invoice.total();
  EXPECT_GT(total, 0);  // attested startups consumed cycles
}

}  // namespace
}  // namespace securecloud::microservice
