// Edge-case coverage across modules: boundary conditions and less-traveled
// paths not exercised by the main per-module suites.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "container/registry.hpp"
#include "scbr/engine.hpp"
#include "scbr/naive_engine.hpp"
#include "scbr/poset_engine.hpp"
#include "scone/syscall.hpp"
#include "scone/uthread.hpp"
#include "sgx/cache_model.hpp"
#include "sgx/epc.hpp"
#include "sgx/memory_model.hpp"

namespace securecloud {
namespace {

// ------------------------------------------------------------- SimClock/log

TEST(Edge, SimClockFrequencyConversion) {
  SimClock clock(1.0);  // 1 GHz: 1 cycle = 1 ns
  clock.advance_cycles(12345);
  EXPECT_EQ(clock.nanos(), 12345u);
  EXPECT_DOUBLE_EQ(clock.frequency_ghz(), 1.0);
}

TEST(Edge, LogLevelsFilter) {
  const LogLevel saved = Log::level();
  Log::level() = LogLevel::kOff;
  log_debug("test", "invisible");
  log_error("test", "invisible");
  Log::level() = saved;
  SUCCEED();  // nothing to assert beyond "does not crash/print"
}

// -------------------------------------------------------------- CacheModel

TEST(Edge, CacheInvalidateMissingLineIsNoop) {
  sgx::CacheModel cache(4096, 64, 4);
  cache.invalidate_range(0, 4096);  // nothing resident
  EXPECT_EQ(cache.misses(), 0u);
  cache.access(0);
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.access(0));  // cold again after clear
}

TEST(Edge, CacheLineSpanningAccessTouchesBothLines) {
  sgx::CostModel cost;
  SimClock clock;
  sgx::PlainMemory mem(cost, clock);
  mem.access(60, 8);  // spans lines 0 and 1
  EXPECT_EQ(mem.stats().accesses, 2u);
}

// -------------------------------------------------------------- EpcManager

TEST(Edge, EpcCapacityFromCostModel) {
  sgx::CostModel cost;
  cost.epc_size_bytes = 128ull << 20;
  cost.epc_metadata_bytes = 34ull * 1024 * 1024 + 512ull * 1024;
  SimClock clock;
  sgx::EpcManager epc(cost, clock);
  EXPECT_EQ(epc.capacity_pages(), cost.usable_epc_bytes() / 4096);
  epc.touch(0);
  epc.reset_stats();
  EXPECT_EQ(epc.stats().faults, 0u);
  EXPECT_EQ(epc.resident_pages(), 1u);  // stats reset, residency kept
}

TEST(Edge, EpcRemoveRangeOnEmptyManager) {
  sgx::CostModel cost;
  SimClock clock;
  sgx::EpcManager epc(cost, clock);
  epc.remove_range(0, 1 << 20);  // no pages: no crash, no effect
  EXPECT_EQ(epc.resident_pages(), 0u);
}

// ---------------------------------------------------------------- Engines

TEST(Edge, EmptyEngineMatchesNothing) {
  scbr::NaiveEngine naive;
  scbr::PosetEngine poset;
  scbr::Event e;
  e.set("x", std::int64_t{1});
  EXPECT_TRUE(naive.match(e).empty());
  EXPECT_TRUE(poset.match(e).empty());
  EXPECT_TRUE(poset.check_invariants());
  EXPECT_EQ(poset.max_depth(), 0u);
}

TEST(Edge, EmptyFilterMatchesEverything) {
  scbr::PosetEngine engine;
  engine.subscribe(1, scbr::Filter{});  // no constraints
  scbr::Event anything;
  anything.set("whatever", std::int64_t{7});
  EXPECT_EQ(engine.match(anything).size(), 1u);
  EXPECT_EQ(engine.match(scbr::Event{}).size(), 1u);  // even empty events
}

TEST(Edge, EmptyFilterCoversAllAndBecomesRoot) {
  scbr::PosetEngine engine;
  scbr::Filter narrow;
  narrow.where("x", scbr::Op::kGe, scbr::Value::of(std::int64_t{0}));
  engine.subscribe(1, narrow);
  engine.subscribe(2, scbr::Filter{});  // covers everything
  EXPECT_EQ(engine.root_count(), 1u);
  EXPECT_EQ(engine.max_depth(), 2u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(Edge, EngineStatsResetKeepsDatabase) {
  scbr::NaiveEngine engine;
  scbr::Filter f;
  f.where("x", scbr::Op::kGe, scbr::Value::of(std::int64_t{0}));
  engine.subscribe(1, f);
  scbr::Event e;
  e.set("x", std::int64_t{1});
  (void)engine.match(e);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().nodes_visited, 0u);
  EXPECT_EQ(engine.size(), 1u);
  EXPECT_GT(engine.database_bytes(), 0u);
}

TEST(Edge, VirtualArenaAligns) {
  scbr::VirtualArena arena;
  const auto a = arena.allocate(1);
  const auto b = arena.allocate(1);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b - a, 64u);
}

// ----------------------------------------------------------------- Syscall

TEST(Edge, UnknownSyscallOpReturnsEnosys) {
  scone::UntrustedFileSystem fs;
  scone::SyscallBackend backend(fs);
  scone::SyscallRequest bad;
  bad.op = static_cast<scone::SyscallOp>(250);
  EXPECT_EQ(backend.execute(bad).error, 38);  // ENOSYS
}

TEST(Edge, SyscallReadMissingFileGivesEnoent) {
  scone::UntrustedFileSystem fs;
  scone::SyscallBackend backend(fs);
  scone::SyscallRequest read;
  read.op = scone::SyscallOp::kRead;
  read.path = "/none";
  read.length = 10;
  EXPECT_EQ(backend.execute(read).error, 2);  // ENOENT
}

// -------------------------------------------------------------- Scheduler

TEST(Edge, SchedulerWithNoTasksReturnsImmediately) {
  SimClock clock;
  scone::UserScheduler scheduler(clock);
  EXPECT_EQ(scheduler.run(), 0u);
  EXPECT_EQ(clock.cycles(), 0u);
}

TEST(Edge, BlockedTasksEventuallyComplete) {
  SimClock clock;
  scone::UserScheduler scheduler(clock);
  auto gate = std::make_shared<int>(0);
  // Task A blocks until task B has run 3 times.
  scheduler.spawn([gate] {
    return *gate >= 3 ? scone::StepResult::kDone : scone::StepResult::kBlocked;
  });
  scheduler.spawn([gate] {
    return ++*gate >= 3 ? scone::StepResult::kDone : scone::StepResult::kYield;
  });
  scheduler.run();
  EXPECT_EQ(scheduler.runnable(), 0u);
  EXPECT_GE(*gate, 3);
}

// ----------------------------------------------------------- Error/result

TEST(Edge, AllErrorCodesHaveNames) {
  for (const ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound, ErrorCode::kPermissionDenied,
        ErrorCode::kIntegrityViolation, ErrorCode::kAttestationFailure,
        ErrorCode::kProtocolError, ErrorCode::kResourceExhausted,
        ErrorCode::kUnavailable, ErrorCode::kInternal}) {
    EXPECT_STRNE(to_string(code), "unknown");
  }
}

TEST(Edge, RegistryDeduplicatesIdenticalLayers) {
  container::Registry registry;
  container::Layer layer;
  layer.files["/f"] = Bytes(1000, 0x42);
  const std::string d1 = registry.push_layer(layer);
  const std::string d2 = registry.push_layer(layer);  // content-addressed
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(registry.layer_count(), 1u);
}

TEST(Edge, ResultMoveSemantics) {
  Result<Bytes> r = Bytes(1000, 0x7f);
  const Bytes moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

}  // namespace
}  // namespace securecloud
