// Fabric-hosted overlay tests: attested setup and key release down the
// broker tree, routing equivalence against the in-process BrokerOverlay
// golden model under churn, sent/recv mirror consistency, and the chaos
// acceptance property — publishing over a lossy, reordering fabric
// delivers the same subscriber sets and overlay stats as the fault-free
// run, bit-identically at any thread count.
#include <gtest/gtest.h>

#include <map>

#include "common/fault_injector.hpp"
#include "common/thread_pool.hpp"
#include "net/fabric.hpp"
#include "scbr/fabric_overlay.hpp"
#include "scbr/overlay.hpp"
#include "scbr/workload.hpp"

namespace securecloud::scbr {
namespace {

using common::FaultArm;
using common::FaultInjector;
using common::FaultKind;

Filter range_filter(const std::string& attr, std::int64_t lo, std::int64_t hi) {
  Filter f;
  f.where(attr, Op::kGe, Value::of(lo)).where(attr, Op::kLe, Value::of(hi));
  return f;
}

Event point_event(const std::string& attr, std::int64_t v) {
  Event e;
  e.set(attr, v);
  return e;
}

/// The tree used throughout: 0 is the root, 1 and 3 are interior.
///
///        0
///       / .
///      1   4
///     / .
///    2   3
///        |
///        5
const std::vector<std::pair<BrokerId, BrokerId>> kTree6 = {
    {0, 1}, {0, 4}, {1, 2}, {1, 3}, {3, 5}};

struct Rig {
  SimClock clock;
  net::Fabric fabric{clock};
  sgx::AttestationService service;
  FabricOverlay overlay;

  explicit Rig(FabricOverlayConfig config) : overlay(fabric, std::move(config)) {}
};

FabricOverlayConfig tree6_config() {
  FabricOverlayConfig config;
  config.broker_count = 6;
  config.links = kTree6;
  return config;
}

/// Sum of sent/recv mirror entries must agree: every filter a broker
/// advertised on a link is exactly what the far end learned from it.
void expect_mirrors_consistent(const FabricOverlay& overlay) {
  std::size_t sent = 0, recv = 0;
  for (BrokerId b = 0; b < overlay.broker_count(); ++b) {
    sent += overlay.sent_entries(b);
    recv += overlay.remote_entries(b);
  }
  EXPECT_EQ(sent, recv);
}

TEST(FabricOverlay, TopologyRequiresSpanningTree) {
  SimClock clock;
  net::Fabric fabric(clock);
  {
    FabricOverlayConfig config;
    config.broker_count = 4;
    config.links = {{0, 1}, {2, 3}};  // forest, not connected
    FabricOverlay overlay(fabric, config);
    EXPECT_FALSE(overlay.topology().ok());
  }
  {
    FabricOverlayConfig config;
    config.broker_count = 3;
    config.links = {{0, 1}, {1, 2}, {2, 0}};  // cycle
    FabricOverlay overlay(fabric, config);
    EXPECT_FALSE(overlay.topology().ok());
  }
  {
    FabricOverlayConfig config;
    config.broker_count = 4;  // empty links -> chain 0-1-2-3
    FabricOverlay overlay(fabric, config);
    EXPECT_TRUE(overlay.topology().ok());
  }
}

TEST(FabricOverlay, SetupAttestsEveryEdgeAndRoutesAcrossTree) {
  Rig rig(tree6_config());
  // Operations before setup are rejected, not misrouted.
  EXPECT_FALSE(rig.overlay.subscribe(0, 1, range_filter("x", 0, 10)).ok());
  ASSERT_TRUE(rig.overlay.setup(rig.service).ok());
  EXPECT_EQ(rig.overlay.broker_count(), 6u);
  EXPECT_TRUE(rig.overlay.health().ok());

  // A subscriber at leaf 5, a publisher at leaf 4: the publication must
  // cross 0 -> 1 -> 3 -> 5 (three forwarding hops past the origin).
  ASSERT_TRUE(rig.overlay.subscribe(5, 1, range_filter("temp", 30, 100)).ok());
  EXPECT_FALSE(rig.overlay.subscribe(5, 1, range_filter("temp", 0, 1)).ok())
      << "duplicate subscription id must be rejected";
  rig.overlay.drain();

  auto hot = rig.overlay.publish(4, point_event("temp", 42));
  ASSERT_TRUE(hot.ok());
  auto cold = rig.overlay.publish(4, point_event("temp", 10));
  ASSERT_TRUE(cold.ok());
  rig.overlay.drain();

  const auto& deliveries = rig.overlay.deliveries();
  ASSERT_EQ(deliveries.count(*hot), 1u);
  EXPECT_EQ(deliveries.at(*hot),
            (FabricOverlay::DeliverySet{{BrokerId{5}, SubscriptionId{1}}}));
  EXPECT_EQ(deliveries.count(*cold), 0u);
  EXPECT_EQ(rig.overlay.stats().deliveries, 1u);
  EXPECT_EQ(rig.overlay.stats().publication_hops, 4u);
  EXPECT_EQ(rig.overlay.local_entries(5), 1u);
  expect_mirrors_consistent(rig.overlay);
  EXPECT_TRUE(rig.overlay.health().ok());

  // Per-broker observability merged across nodes (cluster-obs default).
  auto snapshot = rig.overlay.cluster_snapshot();
  ASSERT_TRUE(snapshot.ok());
  const std::string obs = snapshot->to_obs_json();
  EXPECT_NE(obs.find("securecloud.obs.v2"), std::string::npos);
  EXPECT_NE(obs.find("broker-5"), std::string::npos);
}

TEST(FabricOverlay, RetractionUncoversAndReconverges) {
  Rig rig(tree6_config());
  ASSERT_TRUE(rig.overlay.setup(rig.service).ok());

  // Broad filter at 2 covers the narrow one at 2; remote brokers only
  // ever learn the broad advertisement.
  ASSERT_TRUE(rig.overlay.subscribe(2, 1, range_filter("x", 0, 1000)).ok());
  rig.overlay.drain();
  ASSERT_TRUE(rig.overlay.subscribe(2, 2, range_filter("x", 10, 20)).ok());
  rig.overlay.drain();
  const std::uint64_t suppressed = rig.overlay.stats().subscriptions_suppressed;
  EXPECT_GT(suppressed, 0u);

  // Retracting the coverer must re-advertise the narrow filter, and
  // publications keep reaching it.
  ASSERT_TRUE(rig.overlay.unsubscribe(2, 1));
  rig.overlay.drain();
  expect_mirrors_consistent(rig.overlay);
  auto pub = rig.overlay.publish(5, point_event("x", 15));
  ASSERT_TRUE(pub.ok());
  rig.overlay.drain();
  EXPECT_EQ(rig.overlay.deliveries().at(*pub),
            (FabricOverlay::DeliverySet{{BrokerId{2}, SubscriptionId{2}}}));
}

// Golden model: drive the identical churn history through BrokerOverlay
// (synchronous, in-process — validated against flat evaluation in
// overlay_test.cpp) and the fabric overlay; delivery sets and
// routing-table sizes must agree everywhere.
TEST(FabricOverlay, MatchesBrokerOverlayUnderChurn) {
  Rig rig(tree6_config());
  ASSERT_TRUE(rig.overlay.setup(rig.service).ok());
  BrokerOverlay golden(6, kTree6);
  ASSERT_TRUE(golden.topology().ok());

  WorkloadConfig wcfg;
  wcfg.attribute_universe = 6;
  wcfg.attributes_per_filter = 2;
  wcfg.hierarchy_fraction = 0.7;  // containment-rich: suppression fires
  ScbrWorkload workload(wcfg, 4242);

  // Interleaved subscribe/unsubscribe churn, same sequence to both.
  std::vector<std::pair<BrokerId, SubscriptionId>> live;
  for (SubscriptionId id = 1; id <= 60; ++id) {
    const BrokerId home = (id * 7) % 6;
    const Filter filter = workload.next_filter();
    ASSERT_TRUE(golden.subscribe(home, id, filter).ok());
    ASSERT_TRUE(rig.overlay.subscribe(home, id, filter).ok());
    rig.overlay.drain();
    live.push_back({home, id});
    if (id % 3 == 0) {
      const auto [victim_home, victim] = live[(id * 5) % live.size()];
      ASSERT_TRUE(golden.unsubscribe(victim_home, victim).ok());
      ASSERT_TRUE(rig.overlay.unsubscribe(victim_home, victim).ok());
      rig.overlay.drain();
      live.erase(std::find(live.begin(), live.end(),
                           std::make_pair(victim_home, victim)));
    }
  }

  // Identical routing tables, broker by broker.
  for (BrokerId b = 0; b < 6; ++b) {
    EXPECT_EQ(rig.overlay.remote_entries(b), golden.remote_entries(b))
        << "broker " << b;
  }
  expect_mirrors_consistent(rig.overlay);

  // Identical delivery sets for a stream of publications from every broker.
  for (int i = 0; i < 48; ++i) {
    const BrokerId origin = i % 6;
    const Event event = workload.next_event();
    auto want = golden.publish(origin, event);
    ASSERT_TRUE(want.ok());
    auto pub = rig.overlay.publish(origin, event);
    ASSERT_TRUE(pub.ok());
    rig.overlay.drain();
    std::set<SubscriptionId> want_set(want->begin(), want->end());
    std::set<SubscriptionId> got_set;
    auto it = rig.overlay.deliveries().find(*pub);
    if (it != rig.overlay.deliveries().end()) {
      for (const auto& [broker, id] : it->second) got_set.insert(id);
    }
    EXPECT_EQ(got_set, want_set) << "publication " << i << " from " << origin;
  }
  EXPECT_TRUE(rig.overlay.health().ok());
}

// ------------------------------------------------------------------ chaos

struct ChaosResult {
  std::map<std::uint64_t, FabricOverlay::DeliverySet> deliveries;
  OverlayStats stats;
  std::string obs_v2;
};

/// Churns subscriptions fault-free, then publishes two batches while the
/// fabric drops and reorders frames. Publications never mutate routing
/// tables, so fault-shifted interleavings cannot change what anyone
/// receives — the flow layer recovers every payload exactly once.
ChaosResult run_chaos(std::size_t threads, bool faulty) {
  Rig rig(tree6_config());
  EXPECT_TRUE(rig.overlay.setup(rig.service).ok());

  WorkloadConfig wcfg;
  wcfg.attribute_universe = 6;
  wcfg.attributes_per_filter = 2;
  wcfg.hierarchy_fraction = 0.6;
  ScbrWorkload workload(wcfg, 777);
  for (SubscriptionId id = 1; id <= 36; ++id) {
    EXPECT_TRUE(rig.overlay.subscribe(id % 6, id, workload.next_filter()).ok());
    rig.overlay.drain();
    if (id % 4 == 0) {
      EXPECT_TRUE(rig.overlay.unsubscribe((id - 2) % 6, id - 2).ok());
      rig.overlay.drain();
    }
  }

  FaultInjector faults(31, &rig.clock);
  if (faulty) {
    rig.fabric.set_fault_injector(&faults);
    faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.3, .max_fires = 25});
    faults.arm(FaultKind::kNetReorder,
               FaultArm{.probability = 0.2, .max_fires = 15});
  }

  common::ThreadPool pool(threads);
  std::vector<Event> wave_a, wave_b;
  for (int i = 0; i < 20; ++i) wave_a.push_back(workload.next_event());
  for (int i = 0; i < 20; ++i) wave_b.push_back(workload.next_event());
  EXPECT_TRUE(rig.overlay.publish_batch(2, wave_a, &pool).ok());
  rig.overlay.drain();
  EXPECT_TRUE(rig.overlay.publish_batch(4, wave_b, &pool).ok());
  rig.overlay.drain();
  EXPECT_TRUE(rig.overlay.health().ok());

  ChaosResult result;
  result.deliveries = rig.overlay.deliveries();
  result.stats = rig.overlay.stats();
  auto snapshot = rig.overlay.cluster_snapshot();
  EXPECT_TRUE(snapshot.ok());
  if (snapshot.ok()) result.obs_v2 = snapshot->to_obs_json();
  return result;
}

void expect_same_stats(const OverlayStats& a, const OverlayStats& b) {
  EXPECT_EQ(a.subscriptions_forwarded, b.subscriptions_forwarded);
  EXPECT_EQ(a.subscriptions_suppressed, b.subscriptions_suppressed);
  EXPECT_EQ(a.table_prunes, b.table_prunes);
  EXPECT_EQ(a.publication_hops, b.publication_hops);
  EXPECT_EQ(a.deliveries, b.deliveries);
}

TEST(FabricOverlay, ChaosPublishIsFaultAndThreadCountInvariant) {
  const ChaosResult clean = run_chaos(1, /*faulty=*/false);
  const ChaosResult faulty_1t = run_chaos(1, /*faulty=*/true);
  const ChaosResult faulty_8t = run_chaos(8, /*faulty=*/true);

  // Armed loss/reorder changes nothing the protocol promises: same
  // subscriber sets, same overlay stats as the fault-free run.
  EXPECT_EQ(faulty_1t.deliveries, clean.deliveries);
  expect_same_stats(faulty_1t.stats, clean.stats);
  EXPECT_GT(clean.stats.deliveries, 0u) << "chaos workload matched nothing";

  // And the faulted run is bit-identical across thread counts, including
  // every per-broker counter in the merged obs export.
  EXPECT_EQ(faulty_8t.deliveries, faulty_1t.deliveries);
  expect_same_stats(faulty_8t.stats, faulty_1t.stats);
  EXPECT_EQ(faulty_8t.obs_v2, faulty_1t.obs_v2);
}

}  // namespace
}  // namespace securecloud::scbr
