// Fault-injection & recovery tests.
//
// The invariant every test here asserts (see DESIGN.md "Fault model &
// recovery"): an injected fault either recovers to the bit-identical
// no-fault output, or surfaces as a typed Error with a matching stat —
// never a silent divergence. Determinism is the other pillar: the same
// seed must produce the same fault schedule on every run.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <tuple>
#include <utility>

#include "bigdata/transfer.hpp"
#include "common/fault_injector.hpp"
#include "container/engine.hpp"
#include "container/monitor.hpp"
#include "container/registry.hpp"
#include "container/scone_client.hpp"
#include "genpack/scheduler.hpp"
#include "genpack/simulator.hpp"
#include "microservice/event_bus.hpp"
#include "scbr/workload.hpp"
#include "sgx/epc.hpp"
#include "sgx/platform.hpp"

namespace securecloud {
namespace {

using common::FaultArm;
using common::FaultEvent;
using common::FaultInjector;
using common::FaultKind;
using crypto::DeterministicEntropy;

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, SameSeedSameSchedule) {
  const auto run = [](std::uint64_t seed) {
    SimClock clock;
    FaultInjector inj(seed, &clock);
    inj.arm(FaultKind::kDropChunk, 0.3);
    inj.arm(FaultKind::kCorruptMessage, FaultArm{.probability = 0.2, .max_fires = 3});
    inj.arm(FaultKind::kKillContainer, 0.1);
    for (int i = 0; i < 300; ++i) {
      (void)inj.should_fire(FaultKind::kDropChunk);
      if (i % 2 == 0) (void)inj.should_fire(FaultKind::kCorruptMessage);
      if (i % 3 == 0) (void)inj.should_fire(FaultKind::kKillContainer);
      clock.advance_cycles(17);
    }
    return inj.schedule();
  };

  const auto a = run(42);
  const auto b = run(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run(43));
}

TEST(FaultInjector, StreamsAreIndependent) {
  // Exercising one kind must not shift another kind's verdicts: kind B's
  // stream sees the same draws whether or not kind A is consulted.
  const auto drops_only = [](bool also_poll_kills) {
    FaultInjector inj(7);
    inj.arm(FaultKind::kDropChunk, 0.5);
    inj.arm(FaultKind::kKillContainer, 0.5);
    std::vector<bool> verdicts;
    for (int i = 0; i < 100; ++i) {
      verdicts.push_back(inj.should_fire(FaultKind::kDropChunk));
      if (also_poll_kills) (void)inj.should_fire(FaultKind::kKillContainer);
    }
    return verdicts;
  };
  EXPECT_EQ(drops_only(false), drops_only(true));
}

TEST(FaultInjector, MaxFiresBoundsAndWindowGates) {
  FaultInjector bounded(9);
  bounded.arm(FaultKind::kDropMessage, FaultArm{.probability = 1.0, .max_fires = 2});
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (bounded.should_fire(FaultKind::kDropMessage)) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(bounded.fired(FaultKind::kDropMessage), 2u);
  EXPECT_EQ(bounded.decisions(FaultKind::kDropMessage), 50u);

  SimClock clock;
  FaultInjector windowed(9, &clock);
  windowed.arm(FaultKind::kKillEnclave, FaultArm{.probability = 1.0,
                                                 .not_before_cycles = 100,
                                                 .not_after_cycles = 200});
  EXPECT_FALSE(windowed.should_fire(FaultKind::kKillEnclave));  // before window
  clock.advance_cycles(150);
  EXPECT_TRUE(windowed.should_fire(FaultKind::kKillEnclave));   // inside
  clock.advance_cycles(150);
  EXPECT_FALSE(windowed.should_fire(FaultKind::kKillEnclave));  // after
  ASSERT_EQ(windowed.schedule().size(), 1u);
  EXPECT_EQ(windowed.schedule()[0].at_cycles, 150u);
}

TEST(FaultInjector, ObserverSeesEveryFiredFault) {
  SimClock clock;
  FaultInjector inj(11, &clock);
  inj.arm(FaultKind::kDropChunk, 0.5);
  inj.arm(FaultKind::kCorruptMessage, 0.3);

  std::vector<FaultEvent> seen;
  inj.set_observer([&](const FaultEvent& ev) { seen.push_back(ev); });
  for (int i = 0; i < 200; ++i) {
    (void)inj.should_fire(FaultKind::kDropChunk);
    (void)inj.should_fire(FaultKind::kCorruptMessage);
    clock.advance_cycles(3);
  }
  // The observer saw exactly the fired schedule, in order.
  EXPECT_FALSE(seen.empty());
  EXPECT_EQ(seen, inj.schedule());

  // Detaching stops delivery but the schedule keeps growing.
  const std::size_t at_detach = seen.size();
  inj.set_observer(nullptr);
  inj.arm(FaultKind::kDropMessage, FaultArm{.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(inj.should_fire(FaultKind::kDropMessage));
  EXPECT_EQ(seen.size(), at_detach);
  EXPECT_EQ(inj.schedule().size(), at_detach + 1);
}

TEST(FaultInjector, CorruptFlipsExactlyOneBitReproducibly) {
  const Bytes original = to_bytes("the quick brown fox jumps over the lazy dog");
  FaultInjector a(5), b(5);
  Bytes wa = original, wb = original;
  a.corrupt(wa);
  b.corrupt(wb);
  EXPECT_EQ(wa, wb);
  EXPECT_NE(wa, original);

  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    flipped_bits += std::popcount(static_cast<unsigned>(wa[i] ^ original[i]));
  }
  EXPECT_EQ(flipped_bits, 1);

  // A second corruption of the same buffer advances the stream: it hits a
  // (reproducibly) different bit, not the same one again.
  Bytes wa2 = wa;
  a.corrupt(wa2);
  EXPECT_NE(wa2, original);
  EXPECT_NE(wa2, wa);
}

TEST(FaultInjector, PerturbChunksReproducible) {
  std::vector<Bytes> chunks;
  for (int i = 0; i < 24; ++i) {
    chunks.push_back(to_bytes("chunk-" + std::to_string(i) + "-payload"));
  }
  const auto perturb = [&](std::uint64_t seed) {
    FaultInjector inj(seed);
    inj.arm(FaultKind::kDropChunk, 0.2);
    inj.arm(FaultKind::kCorruptChunk, 0.2);
    inj.arm(FaultKind::kDuplicateChunk, 0.2);
    inj.arm(FaultKind::kReorderChunk, 0.5);
    return inj.perturb_chunks(chunks);
  };
  EXPECT_EQ(perturb(11), perturb(11));
  EXPECT_NE(perturb(11), perturb(12));
}

}  // namespace
}  // namespace securecloud

// --------------------------------------------------- Secure transfer recovery

namespace securecloud::bigdata {
namespace {

using common::FaultArm;
using common::FaultInjector;
using common::FaultKind;

Bytes make_payload(std::size_t n) {
  // Runs of repeated bytes so the RLE codec has something to chew on.
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>((i / 9) * 37 + (i % 3));
  }
  return p;
}

struct FaultyDelivery {
  std::vector<Bytes> payloads;
  ReceiverStats stats;
  Status health = Status{};
};

/// Sends `payload`, perturbs the wire through `inj`, and drives the
/// receiver's NACK/retransmit loop on `clock` until it converges (or the
/// stream dies). Models sender and receiver on either side of an
/// untrusted network.
FaultyDelivery deliver_with_faults(const Bytes& payload, FaultInjector& inj,
                                   SimClock& clock, std::size_t chunk_size) {
  const Bytes key(16, 0x44);
  SecureTransferSender sender(key, 7, chunk_size);
  sender.enable_retransmit_buffer();
  SecureTransferReceiver receiver(key, 7);
  receiver.enable_recovery(clock);

  FaultyDelivery out;
  const std::vector<Bytes> chunks = sender.send(payload);
  for (const Bytes& wire : inj.perturb_chunks(chunks)) {
    auto got = receiver.receive_any(wire);
    if (!got.ok()) {
      out.health = got.error();
      out.stats = receiver.recovery_stats();
      return out;
    }
    for (Bytes& p : *got) out.payloads.push_back(std::move(p));
  }
  // Sender heartbeat: advertise the high-water mark so trailing losses
  // become NACKable gaps too.
  (void)receiver.expect_through(chunks.size() - 1);

  for (int round = 0; round < 200 && receiver.has_pending_gaps(); ++round) {
    for (const Nack& nack : receiver.take_due_nacks()) {
      auto wire = sender.retransmit(nack.sequence);
      if (!wire.ok()) continue;
      auto got = receiver.receive_any(*wire);
      if (!got.ok()) {
        out.health = got.error();
        out.stats = receiver.recovery_stats();
        return out;
      }
      for (Bytes& p : *got) out.payloads.push_back(std::move(p));
    }
    clock.advance_ns(1'000'000);
  }
  out.stats = receiver.recovery_stats();
  out.health = receiver.health();
  return out;
}

TEST(TransferRecovery, DroppedChunksRecoveredBitIdentical) {
  const Bytes payload = make_payload(20'000);
  SimClock clock;
  FaultInjector inj(21, &clock);
  inj.arm(FaultKind::kDropChunk, 0.3);

  const auto result = deliver_with_faults(payload, inj, clock, 256);
  ASSERT_GT(inj.fired(FaultKind::kDropChunk), 0u);  // faults actually injected
  ASSERT_TRUE(result.health.ok()) << result.health.error().message;
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_EQ(result.payloads[0], payload);
  EXPECT_GT(result.stats.nacks_sent, 0u);
  EXPECT_GT(result.stats.gaps_recovered, 0u);
  EXPECT_EQ(result.stats.gaps_abandoned, 0u);
}

TEST(TransferRecovery, CorruptChunksDetectedAndRepaired) {
  const Bytes payload = make_payload(20'000);
  SimClock clock;
  FaultInjector inj(33, &clock);
  inj.arm(FaultKind::kCorruptChunk, 0.4);

  const auto result = deliver_with_faults(payload, inj, clock, 256);
  ASSERT_GT(inj.fired(FaultKind::kCorruptChunk), 0u);
  ASSERT_TRUE(result.health.ok()) << result.health.error().message;
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_EQ(result.payloads[0], payload);
  EXPECT_GT(result.stats.corrupt, 0u);  // tampering observed, never silent
}

TEST(TransferRecovery, DuplicatesAndReorderingTolerated) {
  const Bytes payload = make_payload(20'000);
  SimClock clock;
  FaultInjector inj(55, &clock);
  inj.arm(FaultKind::kDuplicateChunk, 0.5);
  inj.arm(FaultKind::kReorderChunk, 1.0);

  const auto result = deliver_with_faults(payload, inj, clock, 256);
  ASSERT_TRUE(result.health.ok()) << result.health.error().message;
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_EQ(result.payloads[0], payload);
  EXPECT_GT(result.stats.duplicates, 0u);
  EXPECT_GT(result.stats.buffered, 0u);
}

TEST(TransferRecovery, AllWireFaultsAtOnceStillConverge) {
  const Bytes payload = make_payload(40'000);
  SimClock clock;
  FaultInjector inj(77, &clock);
  inj.arm(FaultKind::kDropChunk, 0.15);
  inj.arm(FaultKind::kCorruptChunk, 0.15);
  inj.arm(FaultKind::kDuplicateChunk, 0.15);
  inj.arm(FaultKind::kReorderChunk, 0.5);

  const auto result = deliver_with_faults(payload, inj, clock, 256);
  // Retransmissions come from the sender's pristine buffer, so recovery
  // converges no matter what the first copy suffered.
  ASSERT_TRUE(result.health.ok()) << result.health.error().message;
  ASSERT_EQ(result.payloads.size(), 1u);
  EXPECT_EQ(result.payloads[0], payload);
}

TEST(TransferRecovery, SameSeedSameFaultScheduleTwice) {
  const Bytes payload = make_payload(40'000);
  const auto run = [&] {
    SimClock clock;
    FaultInjector inj(77, &clock);
    inj.arm(FaultKind::kDropChunk, 0.15);
    inj.arm(FaultKind::kCorruptChunk, 0.15);
    inj.arm(FaultKind::kDuplicateChunk, 0.15);
    inj.arm(FaultKind::kReorderChunk, 0.5);
    auto result = deliver_with_faults(payload, inj, clock, 256);
    return std::pair(inj.schedule(), std::move(result));
  };
  const auto [schedule_a, result_a] = run();
  const auto [schedule_b, result_b] = run();
  EXPECT_FALSE(schedule_a.empty());
  EXPECT_EQ(schedule_a, schedule_b);
  EXPECT_EQ(result_a.payloads, result_b.payloads);
  EXPECT_EQ(result_a.stats.nacks_sent, result_b.stats.nacks_sent);
  EXPECT_EQ(result_a.stats.corrupt, result_b.stats.corrupt);
  EXPECT_EQ(result_a.stats.duplicates, result_b.stats.duplicates);
}

TEST(TransferRecovery, TrailingLossDetectedViaHighWaterMark) {
  const Bytes key(16, 0x44);
  const Bytes payload = make_payload(2'000);
  SimClock clock;
  SecureTransferSender sender(key, 7, 128);
  sender.enable_retransmit_buffer();
  SecureTransferReceiver receiver(key, 7);
  receiver.enable_recovery(clock);

  const std::vector<Bytes> chunks = sender.send(payload);
  ASSERT_GT(chunks.size(), 2u);
  std::vector<Bytes> completed;
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // last chunk lost
    auto got = receiver.receive_any(chunks[i]);
    ASSERT_TRUE(got.ok());
    for (Bytes& p : *got) completed.push_back(std::move(p));
  }
  // Nothing arrived after the lost tail, so no gap is visible yet.
  EXPECT_FALSE(receiver.has_pending_gaps());
  ASSERT_TRUE(receiver.expect_through(chunks.size() - 1).ok());
  EXPECT_TRUE(receiver.has_pending_gaps());

  const auto nacks = receiver.take_due_nacks();
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_EQ(nacks[0].sequence, chunks.size() - 1);
  auto wire = sender.retransmit(nacks[0].sequence);
  ASSERT_TRUE(wire.ok());
  auto got = receiver.receive_any(*wire);
  ASSERT_TRUE(got.ok());
  for (Bytes& p : *got) completed.push_back(std::move(p));
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0], payload);
}

TEST(TransferRecovery, LossBeyondRetryBudgetIsTypedError) {
  const Bytes key(16, 0x44);
  const Bytes payload = make_payload(2'000);
  SimClock clock;
  SecureTransferSender sender(key, 7, 128);
  SecureTransferReceiver receiver(key, 7);
  receiver.enable_recovery(clock);

  const std::vector<Bytes> chunks = sender.send(payload);
  ASSERT_GT(chunks.size(), 2u);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (i == 1) continue;  // chunk 1 is lost forever (no retransmissions)
    ASSERT_TRUE(receiver.receive_any(chunks[i]).ok());
  }
  EXPECT_TRUE(receiver.has_pending_gaps());

  // Ignore every NACK; the backoff schedule (1,2,4,...,64 ms on the
  // simulated clock) runs dry after max_nacks_per_gap attempts.
  std::uint64_t nacks_seen = 0;
  for (int round = 0; round < 20 && receiver.health().ok(); ++round) {
    nacks_seen += receiver.take_due_nacks().size();
    clock.advance_ns(100'000'000);
  }
  EXPECT_EQ(nacks_seen, ReceiverRecoveryConfig{}.max_nacks_per_gap);
  ASSERT_FALSE(receiver.health().ok());
  EXPECT_EQ(receiver.health().error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(receiver.recovery_stats().gaps_abandoned, 1u);

  // The stream is dead: further ingest reports the same typed error.
  auto dead = receiver.receive_any(chunks[1]);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, ErrorCode::kUnavailable);
}

TEST(TransferRecovery, NackBackoffRunsOnSimulatedTime) {
  const Bytes key(16, 0x44);
  SimClock clock;
  SecureTransferSender sender(key, 7, 64);
  SecureTransferReceiver receiver(key, 7);
  receiver.enable_recovery(clock);

  const std::vector<Bytes> chunks = sender.send(make_payload(1'000));
  ASSERT_GT(chunks.size(), 1u);
  ASSERT_TRUE(receiver.receive_any(chunks.back()).ok());  // reveals the gaps

  // First NACK is due immediately; the next only after 1 ms of
  // *simulated* time — no amount of waiting in wall time changes that.
  // (The ns↔cycle conversion truncates, so probe just inside and
  // comfortably past the deadline rather than at the exact nanosecond.)
  EXPECT_FALSE(receiver.take_due_nacks().empty());
  EXPECT_TRUE(receiver.take_due_nacks().empty());
  clock.advance_ns(990'000);
  EXPECT_TRUE(receiver.take_due_nacks().empty());
  clock.advance_ns(20'000);
  EXPECT_FALSE(receiver.take_due_nacks().empty());
}

}  // namespace
}  // namespace securecloud::bigdata

// -------------------------------------------------------- Event-bus recovery

namespace securecloud::microservice {
namespace {

using common::FaultArm;
using common::FaultInjector;
using common::FaultKind;
using crypto::DeterministicEntropy;
using scbr::Event;
using scbr::Filter;
using scbr::Op;
using scbr::Value;

struct BusFixture {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  DeterministicEntropy entropy{31};
  scbr::KeyService keys{attestation, entropy};
  sgx::Enclave* enclave = nullptr;

  BusFixture() {
    platform.provision(attestation);
    sgx::EnclaveImage image;
    image.name = "bus-router";
    image.code = to_bytes("router");
    DeterministicEntropy signer(404);
    sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
    auto created = platform.create_enclave(image);
    EXPECT_TRUE(created.ok());
    enclave = *created;
    keys.authorize_router(enclave->mrenclave());
  }
};

Filter temp_above(std::int64_t threshold) {
  Filter f;
  f.where("temp", Op::kGt, Value::of(threshold));
  return f;
}

/// Publishes three matching events and returns what the subscriber saw.
std::vector<std::int64_t> run_bus(FaultInjector* injector, BusStats* stats_out,
                                  std::size_t max_attempts = 4) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  bus.set_fault_injector(injector);
  bus.set_max_delivery_attempts(max_attempts);
  auto* sensor = bus.attach("sensor");
  auto* alarm = bus.attach("alarm");
  EXPECT_TRUE(bus.start().ok());

  std::vector<std::int64_t> seen;
  EXPECT_TRUE(bus.subscribe(*alarm, temp_above(30), [&](const Event& e) {
                   seen.push_back(e.find("temp")->as_int());
                 }).ok());
  for (std::int64_t t : {41, 52, 63}) {
    Event e;
    e.set("temp", t);
    EXPECT_TRUE(bus.publish(*sensor, e).ok());
  }
  bus.drain();
  if (stats_out != nullptr) *stats_out = bus.stats();
  return seen;
}

TEST(EventBusRecovery, TransientTamperRedeliveredBitIdentical) {
  const std::vector<std::int64_t> baseline = run_bus(nullptr, nullptr);
  ASSERT_EQ(baseline.size(), 3u);

  FaultInjector inj(101);
  inj.arm(FaultKind::kCorruptMessage, FaultArm{.probability = 1.0, .max_fires = 2});
  BusStats stats;
  std::vector<std::int64_t> faulty = run_bus(&inj, &stats);

  // A redelivery re-enters at the back of the queue, so at-least-once
  // guarantees the same *set* of handler invocations, not their order.
  std::vector<std::int64_t> sorted_baseline = baseline;
  std::sort(sorted_baseline.begin(), sorted_baseline.end());
  std::sort(faulty.begin(), faulty.end());
  EXPECT_EQ(faulty, sorted_baseline);  // every event delivered exactly once
  EXPECT_EQ(stats.tampered, 2u);
  EXPECT_EQ(stats.redeliveries, 2u);
  EXPECT_EQ(stats.dead_lettered, 0u);
}

TEST(EventBusRecovery, PersistentTamperDeadLettersWithTypedReason) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  FaultInjector inj(102);
  inj.arm(FaultKind::kCorruptMessage, 1.0);  // every attempt tampered
  bus.set_fault_injector(&inj);
  bus.set_max_delivery_attempts(3);
  auto* sensor = bus.attach("sensor");
  auto* alarm = bus.attach("alarm");
  ASSERT_TRUE(bus.start().ok());

  std::size_t invoked = 0;
  ASSERT_TRUE(bus.subscribe(*alarm, temp_above(30),
                            [&](const Event&) { ++invoked; }).ok());
  Event hot;
  hot.set("temp", std::int64_t{99});
  ASSERT_TRUE(bus.publish(*sensor, hot).ok());
  bus.drain();

  EXPECT_EQ(invoked, 0u);
  EXPECT_EQ(bus.stats().tampered, 3u);  // one per attempt
  ASSERT_EQ(bus.dead_letters().size(), 1u);
  const DeadLetter& dlq = bus.dead_letters().front();
  EXPECT_EQ(dlq.reason.code, ErrorCode::kIntegrityViolation);
  EXPECT_EQ(dlq.subscriber, "alarm");
  EXPECT_EQ(dlq.attempts, 3u);
  EXPECT_FALSE(dlq.wire.empty());  // pristine wire retained for replay
}

TEST(EventBusRecovery, DroppedDeliveryRedelivered) {
  FaultInjector inj(103);
  inj.arm(FaultKind::kDropMessage, FaultArm{.probability = 1.0, .max_fires = 1});
  BusStats stats;
  std::vector<std::int64_t> seen = run_bus(&inj, &stats);
  std::sort(seen.begin(), seen.end());  // redelivery reorders, never loses
  EXPECT_EQ(seen, (std::vector<std::int64_t>{41, 52, 63}));
  EXPECT_EQ(stats.dropped_in_transit, 1u);
  EXPECT_EQ(stats.redeliveries, 1u);
  EXPECT_EQ(stats.dead_lettered, 0u);
}

TEST(EventBusRecovery, HostDuplicatedDeliverySuppressed) {
  FaultInjector inj(104);
  inj.arm(FaultKind::kDuplicateMessage, 1.0);
  BusStats stats;
  const std::vector<std::int64_t> seen = run_bus(&inj, &stats);
  EXPECT_EQ(seen, (std::vector<std::int64_t>{41, 52, 63}));  // no double dispatch
  EXPECT_EQ(stats.duplicates_suppressed, 3u);
}

TEST(EventBusRecovery, DetachedSubscriberDeadLettered) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  auto* sensor = bus.attach("sensor");
  auto* alarm = bus.attach("alarm");
  ASSERT_TRUE(bus.start().ok());
  ASSERT_TRUE(bus.subscribe(*alarm, temp_above(30), [](const Event&) {}).ok());

  Event hot;
  hot.set("temp", std::int64_t{77});
  ASSERT_TRUE(bus.publish(*sensor, hot).ok());
  ASSERT_TRUE(bus.detach("alarm").ok());  // crash between publish and drain
  bus.drain();

  EXPECT_EQ(bus.delivered(), 0u);
  EXPECT_EQ(bus.stats().detached_drops, 1u);
  ASSERT_EQ(bus.dead_letters().size(), 1u);
  EXPECT_EQ(bus.dead_letters().front().reason.code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace securecloud::microservice

// ----------------------------------------------- GenPack failure rescheduling

namespace securecloud::genpack {
namespace {

ContainerSpec service(const std::string& id, double cpu, double mem,
                      std::uint64_t arrival, std::uint64_t duration) {
  ContainerSpec c;
  c.id = id;
  c.cls = ContainerClass::kService;
  c.cpu_cores = cpu;
  c.mem_gb = mem;
  c.arrival_s = arrival;
  c.duration_s = duration;
  return c;
}

TEST(GenpackRecovery, FailedServerWorkloadsRescheduled) {
  // 6 services of 4 cores on 4×16-core servers: best-fit packs the first
  // four onto server 0 (fullest-that-fits), the rest onto server 1.
  std::vector<ContainerSpec> trace;
  for (int i = 0; i < 6; ++i) {
    trace.push_back(service("svc-" + std::to_string(i), 4.0, 8.0, 0, 7200));
  }
  ClusterSimulator sim(4);
  BestFitScheduler scheduler;
  const SimReport report = sim.run(trace, scheduler, 300, {{.at_s = 600, .server = 0}});

  EXPECT_EQ(report.placed, 6u);
  EXPECT_EQ(report.server_failures, 1u);
  EXPECT_EQ(report.rescheduled_on_failure, 4u);
  EXPECT_EQ(report.lost_on_failure, 0u);
  EXPECT_TRUE(sim.servers()[0].failed());
  EXPECT_EQ(sim.servers()[0].container_count(), 0u);
}

TEST(GenpackRecovery, GenPackReschedulesAcrossGenerations) {
  std::vector<ContainerSpec> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back(service("svc-" + std::to_string(i), 2.0, 4.0, 0, 7200));
  }
  ClusterSimulator sim(6);
  GenPackScheduler scheduler(6);
  // Fail the nursery while the containers are still inside their
  // monitoring window (before the t=900 promotion sweep empties it).
  const SimReport report = sim.run(trace, scheduler, 300, {{.at_s = 400, .server = 0}});

  EXPECT_EQ(report.server_failures, 1u);
  // The nursery is gone, so place() overflows onto the young/old servers:
  // every evacuated container is rescheduled, none lost.
  EXPECT_EQ(report.rescheduled_on_failure, 8u);
  EXPECT_EQ(report.lost_on_failure, 0u);
  EXPECT_TRUE(sim.servers()[0].failed());
  EXPECT_EQ(sim.servers()[0].container_count(), 0u);
}

TEST(GenpackRecovery, UnplaceableWorkloadsCountedAsLost) {
  // A single server: when it fails there is nowhere to go.
  std::vector<ContainerSpec> trace = {service("a", 8.0, 16.0, 0, 7200),
                                      service("b", 8.0, 16.0, 0, 7200)};
  ClusterSimulator sim(1);
  BestFitScheduler scheduler;
  const SimReport report = sim.run(trace, scheduler, 300, {{.at_s = 100, .server = 0}});

  EXPECT_EQ(report.placed, 2u);
  EXPECT_EQ(report.server_failures, 1u);
  EXPECT_EQ(report.rescheduled_on_failure, 0u);
  EXPECT_EQ(report.lost_on_failure, 2u);  // typed loss, never silent
}

TEST(GenpackRecovery, RepeatedFailureOfSameServerCountsOnce) {
  std::vector<ContainerSpec> trace = {service("a", 4.0, 8.0, 0, 7200)};
  ClusterSimulator sim(2);
  BestFitScheduler scheduler;
  const SimReport report = sim.run(
      trace, scheduler, 300, {{.at_s = 100, .server = 0}, {.at_s = 200, .server = 0}});
  EXPECT_EQ(report.server_failures, 1u);  // already-dead server: no double count
}

}  // namespace
}  // namespace securecloud::genpack

// ----------------------------------------------- Container restart policies

namespace securecloud::container {
namespace {

using common::FaultArm;
using common::FaultInjector;
using common::FaultKind;
using crypto::DeterministicEntropy;

struct PlainFixture {
  Registry registry;
  ContainerMonitor monitor;
  ContainerEngine engine{registry, monitor};

  std::string push_plain_image(const std::string& name) {
    Layer layer;
    layer.files["/data/input"] = to_bytes("42");
    ImageManifest manifest;
    manifest.name = name;
    manifest.layer_digests.push_back(registry.push_layer(layer));
    EXPECT_TRUE(registry.push_manifest(manifest).ok());
    return manifest.reference();
  }
};

Result<Bytes> echo_entry(scone::UntrustedFileSystem& fs) {
  auto in = fs.read_file("/data/input");
  if (!in.ok()) return in.error();
  return to_bytes("got:" + securecloud::to_string(*in));
}

TEST(ContainerRestart, HostKillRecoveredByOnFailurePolicy) {
  PlainFixture fx;
  auto container = fx.engine.create(fx.push_plain_image("svc"));
  ASSERT_TRUE(container.ok());

  FaultInjector inj(201);
  inj.arm(FaultKind::kKillContainer, FaultArm{.probability = 1.0, .max_fires = 2});
  fx.engine.set_fault_injector(&inj);

  auto result = fx.engine.run_with_restarts(
      **container, echo_entry,
      RestartSpec{.policy = RestartPolicy::kOnFailure, .max_restarts = 3});
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(securecloud::to_string(*result), "got:42");  // same output as no-fault
  EXPECT_EQ((*container)->state(), ContainerState::kExited);
  EXPECT_EQ(fx.engine.restart_count((*container)->id()), 2u);
}

TEST(ContainerRestart, NeverPolicySurfacesTypedError) {
  PlainFixture fx;
  auto container = fx.engine.create(fx.push_plain_image("svc"));
  ASSERT_TRUE(container.ok());

  FaultInjector inj(202);
  inj.arm(FaultKind::kKillContainer, FaultArm{.probability = 1.0, .max_fires = 1});
  fx.engine.set_fault_injector(&inj);

  auto result = fx.engine.run_with_restarts(**container, echo_entry,
                                            RestartSpec{.policy = RestartPolicy::kNever});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ((*container)->state(), ContainerState::kFailed);
  EXPECT_EQ(fx.engine.restart_count((*container)->id()), 0u);
}

TEST(ContainerRestart, RestartBudgetIsBounded) {
  PlainFixture fx;
  auto container = fx.engine.create(fx.push_plain_image("svc"));
  ASSERT_TRUE(container.ok());

  FaultInjector inj(203);
  inj.arm(FaultKind::kKillContainer, 1.0);  // the host kills every attempt
  fx.engine.set_fault_injector(&inj);

  auto result = fx.engine.run_with_restarts(
      **container, echo_entry,
      RestartSpec{.policy = RestartPolicy::kAlways, .max_restarts = 2});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(fx.engine.restart_count((*container)->id()), 2u);  // 1 run + 2 retries
}

struct SecureFixture {
  Registry registry;
  ContainerMonitor monitor;
  ContainerEngine engine{registry, monitor};
  sgx::Platform platform;
  sgx::AttestationService attestation;
  DeterministicEntropy entropy{99};
  DeterministicEntropy signer_entropy{1234};
  crypto::Ed25519KeyPair signer = crypto::ed25519_keypair(signer_entropy.array<32>());
  SconeClient client{registry, entropy, signer};
  scone::ConfigurationService config{attestation, entropy};

  SecureFixture() { platform.provision(attestation); }

  SecureImageSpec spec(const std::string& name) {
    SecureImageSpec s;
    s.name = name;
    s.app_code = to_bytes("static-binary-of-" + name);
    s.protected_files["/secrets/api-key"] = to_bytes("hunter2-api-key");
    s.args = {"--serve"};
    s.env = {{"MODE", "prod"}};
    return s;
  }
};

TEST(ContainerRestart, EnclaveKillRecoveredWithFreshAttestation) {
  SecureFixture fx;
  ASSERT_TRUE(fx.client.build_secure_image(fx.spec("svc"), fx.config).ok());
  const auto app = [](scone::AppContext& ctx) -> Result<Bytes> {
    auto key = ctx.fs.read_all("/secrets/api-key");
    if (!key.ok()) return key.error();
    return to_bytes("served:" + securecloud::to_string(*key));
  };

  // No-fault reference run.
  auto baseline_container = fx.engine.create("svc:latest");
  ASSERT_TRUE(baseline_container.ok());
  auto baseline = fx.engine.run_secure(**baseline_container, fx.platform, fx.config, app);
  ASSERT_TRUE(baseline.ok()) << baseline.error().message;

  // Faulty run: the host destroys the first enclave; the restart policy
  // re-creates and re-attests, converging to the identical output.
  FaultInjector inj(204);
  inj.arm(FaultKind::kKillEnclave, FaultArm{.probability = 1.0, .max_fires = 1});
  fx.engine.set_fault_injector(&inj);
  auto container = fx.engine.create("svc:latest");
  ASSERT_TRUE(container.ok());
  auto outcome = fx.engine.run_secure_with_restarts(
      **container, fx.platform, fx.config, app,
      RestartSpec{.policy = RestartPolicy::kOnFailure, .max_restarts = 3});
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome->app_result, baseline->app_result);  // bit-identical
  EXPECT_EQ(fx.engine.restart_count((*container)->id()), 1u);

  // Without a restart policy the kill is a typed error, never silent.
  FaultInjector inj2(205);
  inj2.arm(FaultKind::kKillEnclave, FaultArm{.probability = 1.0, .max_fires = 1});
  fx.engine.set_fault_injector(&inj2);
  auto doomed = fx.engine.create("svc:latest");
  ASSERT_TRUE(doomed.ok());
  auto dead = fx.engine.run_secure(**doomed, fx.platform, fx.config, app);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ((*doomed)->state(), ContainerState::kFailed);
}

}  // namespace
}  // namespace securecloud::container

// --------------------------------------------------------------- EPC pressure

namespace securecloud::sgx {
namespace {

using common::FaultInjector;
using common::FaultKind;

TEST(EpcPressure, SpikeRaisesCostButNotOutput) {
  CostModel cost;
  cost.epc_size_bytes = 16 * 4096;
  cost.epc_metadata_bytes = 0;

  // A toy enclave workload: stream over an 8-page working set computing a
  // checksum. The checksum depends only on the data — EPC residency can
  // change *when* pages fault, never *what* the program computes.
  const auto run = [&](FaultInjector* inj) {
    SimClock clock;
    EpcManager epc(cost, clock);
    std::uint64_t checksum = 0;
    for (std::uint64_t i = 0; i < 4'000; ++i) {
      epc.touch((i % 8) * cost.page_size);
      checksum = checksum * 1315423911u + i;
      if (inj != nullptr && inj->should_fire(FaultKind::kEpcPressure)) {
        // Another tenant's enclave suddenly hammers the EPC: its pages
        // evict ours, so our next touches fault again.
        for (std::uint64_t p = 0; p < 16; ++p) {
          epc.touch((1'000 + p) * cost.page_size);
        }
      }
    }
    return std::tuple(checksum, clock.cycles(), epc.stats().faults);
  };

  const auto [base_sum, base_cycles, base_faults] = run(nullptr);

  FaultInjector inj(301);
  inj.arm(FaultKind::kEpcPressure, 0.02);
  const auto [sum, cycles, faults] = run(&inj);

  ASSERT_GT(inj.fired(FaultKind::kEpcPressure), 0u);
  EXPECT_EQ(sum, base_sum);          // output unchanged
  EXPECT_GT(cycles, base_cycles);    // cost visibly higher
  EXPECT_GT(faults, base_faults);    // and attributed to EPC faults
}

}  // namespace
}  // namespace securecloud::sgx
