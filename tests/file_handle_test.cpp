// POSIX-style shielded file handle tests.
#include <gtest/gtest.h>

#include "scone/file_handle.hpp"

namespace securecloud::scone {
namespace {

struct FdFixture {
  UntrustedFileSystem host;
  crypto::DeterministicEntropy entropy{9};
  ShieldedFileSystem fs{host, FsProtection{}, entropy};
  ShieldedFileTable files{fs};
};

TEST(FileHandle, CreateWriteReadBack) {
  FdFixture fx;
  auto fd = fx.files.open("/log", kRead | kWrite | kCreate);
  ASSERT_TRUE(fd.ok());

  ASSERT_TRUE(fx.files.write(*fd, to_bytes("hello ")).ok());
  ASSERT_TRUE(fx.files.write(*fd, to_bytes("world")).ok());

  ASSERT_TRUE(fx.files.seek(*fd, 0, Whence::kSet).ok());
  auto data = fx.files.read(*fd, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(to_string(*data), "hello world");
  EXPECT_EQ(*fx.files.tell(*fd), 11u);

  // Reads at EOF return empty, not an error.
  auto eof = fx.files.read(*fd, 10);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof->empty());
  ASSERT_TRUE(fx.files.close(*fd).ok());
}

TEST(FileHandle, OpenMissingWithoutCreateFails) {
  FdFixture fx;
  auto fd = fx.files.open("/nope", kRead);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error().code, ErrorCode::kNotFound);
}

TEST(FileHandle, FlagsEnforced) {
  FdFixture fx;
  ASSERT_TRUE(fx.fs.create("/f").ok());
  ASSERT_TRUE(fx.fs.write_all("/f", to_bytes("content")).ok());

  auto ro = fx.files.open("/f", kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_FALSE(fx.files.write(*ro, to_bytes("x")).ok());

  auto wo = fx.files.open("/f", kWrite);
  ASSERT_TRUE(wo.ok());
  EXPECT_FALSE(fx.files.read(*wo, 1).ok());

  EXPECT_FALSE(fx.files.open("/f", 0).ok());           // no direction
  EXPECT_FALSE(fx.files.open("/f", kRead | kTruncate).ok());  // truncate needs write
}

TEST(FileHandle, TruncateClearsContent) {
  FdFixture fx;
  ASSERT_TRUE(fx.fs.create("/f").ok());
  ASSERT_TRUE(fx.fs.write_all("/f", to_bytes("old content")).ok());
  auto fd = fx.files.open("/f", kRead | kWrite | kTruncate);
  ASSERT_TRUE(fd.ok());
  auto size = fx.fs.size_of("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST(FileHandle, AppendAlwaysWritesAtEof) {
  FdFixture fx;
  auto fd = fx.files.open("/log", kWrite | kCreate | kAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fx.files.write(*fd, to_bytes("one")).ok());
  // Even after seeking back, append mode writes at EOF.
  ASSERT_TRUE(fx.files.seek(*fd, 0, Whence::kSet).ok());
  ASSERT_TRUE(fx.files.write(*fd, to_bytes("two")).ok());
  auto all = fx.fs.read_all("/log");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(to_string(*all), "onetwo");
}

TEST(FileHandle, SeekSemantics) {
  FdFixture fx;
  auto fd = fx.files.open("/f", kRead | kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fx.files.write(*fd, Bytes(100, 0x41)).ok());

  EXPECT_EQ(*fx.files.seek(*fd, 10, Whence::kSet), 10u);
  EXPECT_EQ(*fx.files.seek(*fd, 5, Whence::kCurrent), 15u);
  EXPECT_EQ(*fx.files.seek(*fd, -5, Whence::kEnd), 95u);
  EXPECT_FALSE(fx.files.seek(*fd, -200, Whence::kCurrent).ok());

  // Seek past EOF then write: zero-filled hole.
  EXPECT_EQ(*fx.files.seek(*fd, 50, Whence::kEnd), 150u);
  ASSERT_TRUE(fx.files.write(*fd, to_bytes("tail")).ok());
  auto hole = fx.fs.read("/f", 120, 10);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(*hole, Bytes(10, 0));
}

TEST(FileHandle, IndependentPositionsPerDescriptor) {
  FdFixture fx;
  ASSERT_TRUE(fx.fs.create("/f").ok());
  ASSERT_TRUE(fx.fs.write_all("/f", to_bytes("abcdef")).ok());
  auto fd1 = fx.files.open("/f", kRead);
  auto fd2 = fx.files.open("/f", kRead);
  ASSERT_TRUE(fd1.ok() && fd2.ok());
  EXPECT_EQ(to_string(*fx.files.read(*fd1, 3)), "abc");
  EXPECT_EQ(to_string(*fx.files.read(*fd2, 2)), "ab");
  EXPECT_EQ(to_string(*fx.files.read(*fd1, 3)), "def");
}

TEST(FileHandle, BadDescriptorsRejected) {
  FdFixture fx;
  EXPECT_FALSE(fx.files.read(42, 1).ok());
  EXPECT_FALSE(fx.files.write(42, to_bytes("x")).ok());
  EXPECT_FALSE(fx.files.seek(42, 0, Whence::kSet).ok());
  EXPECT_FALSE(fx.files.tell(42).ok());
  EXPECT_FALSE(fx.files.close(42).ok());

  auto fd = fx.files.open("/f", kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fx.files.close(*fd).ok());
  EXPECT_FALSE(fx.files.write(*fd, to_bytes("x")).ok());  // closed
}

TEST(FileHandle, ContentStillEncryptedOnHost) {
  FdFixture fx;
  auto fd = fx.files.open("/secret", kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fx.files.write(*fd, to_bytes("FD-LAYER-SECRET")).ok());
  for (const auto& path : fx.host.list()) {
    const auto content = fx.host.read_file(path);
    const std::string s(content->begin(), content->end());
    EXPECT_EQ(s.find("FD-LAYER"), std::string::npos);
  }
}

}  // namespace
}  // namespace securecloud::scone
