// Load forecasting tests: Holt–Winters behaviour on synthetic and
// meter-fleet data.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "smartgrid/forecast.hpp"
#include "smartgrid/meter.hpp"

namespace securecloud::smartgrid {
namespace {

TEST(Forecast, UnavailableBeforeFirstSeason) {
  LoadForecaster forecaster({.season_length = 10});
  for (int i = 0; i < 9; ++i) {
    forecaster.observe(100);
    EXPECT_FALSE(forecaster.forecast().has_value());
  }
  forecaster.observe(100);
  EXPECT_TRUE(forecaster.forecast().has_value());
}

TEST(Forecast, ConstantSeriesForecastsConstant) {
  LoadForecaster forecaster({.season_length = 8});
  for (int i = 0; i < 64; ++i) forecaster.observe(500);
  auto f = forecaster.forecast(1);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, 500, 1e-6);
  EXPECT_NEAR(forecaster.mape(), 0, 1e-9);
}

TEST(Forecast, TracksLinearTrend) {
  LoadForecaster forecaster({.season_length = 8, .alpha = 0.5, .beta = 0.3, .gamma = 0.1});
  for (int i = 0; i < 200; ++i) forecaster.observe(1000 + 5.0 * i);
  auto f = forecaster.forecast(1);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(*f, 1000 + 5.0 * 200, 25);  // within 0.5 steps of the line
}

TEST(Forecast, LearnsSeasonalPattern) {
  // Pure seasonal square-ish wave with period 12.
  LoadForecaster forecaster({.season_length = 12, .alpha = 0.2, .beta = 0.01, .gamma = 0.3});
  auto value_at = [](int i) { return (i % 12) < 6 ? 200.0 : 800.0; };
  for (int i = 0; i < 240; ++i) forecaster.observe(value_at(i));

  // Forecast one full period ahead and compare phase by phase.
  for (std::size_t step = 1; step <= 12; ++step) {
    auto f = forecaster.forecast(step);
    ASSERT_TRUE(f.has_value());
    EXPECT_NEAR(*f, value_at(240 + static_cast<int>(step) - 1), 80) << "step " << step;
  }
}

TEST(Forecast, ReasonableAccuracyOnMeterFleet) {
  // Aggregate feeder load from the synthetic fleet: diurnal + noise.
  GridConfig grid;
  grid.households = 30;
  grid.interval_s = 900;  // 96 samples/day
  grid.horizon_s = 4 * 24 * 3600;
  const MeterFleet fleet(grid, 99);

  const auto all = fleet.all_series();
  LoadForecaster forecaster({.season_length = 96});
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    double total = 0;
    for (const auto& series : all) total += series[i].power_w;
    forecaster.observe(total);
  }
  EXPECT_TRUE(forecaster.warmed_up());
  // Diurnal load with ~4% noise: Holt-Winters should land well under 15%.
  EXPECT_LT(forecaster.mape(), 15.0);
  EXPECT_GT(forecaster.observations(), 300u);
}

TEST(Forecast, MultiStepHorizonStaysBounded) {
  LoadForecaster forecaster({.season_length = 24});
  Rng rng(4);
  for (int i = 0; i < 240; ++i) {
    forecaster.observe(1000 + 300 * std::sin(2 * std::numbers::pi * i / 24.0) +
                       rng.normal(0, 20));
  }
  for (std::size_t h : {1u, 6u, 12u, 24u}) {
    auto f = forecaster.forecast(h);
    ASSERT_TRUE(f.has_value());
    EXPECT_GT(*f, 300);
    EXPECT_LT(*f, 1800);
  }
}

}  // namespace
}  // namespace securecloud::smartgrid
