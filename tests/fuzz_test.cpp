// Golden-model fuzzing: long random operation sequences applied in
// lockstep to a secure component and a trivially correct in-memory
// reference; any divergence is a bug. Parameterized over seeds so each
// instantiation explores a different trajectory.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bigdata/codec.hpp"
#include "bigdata/table.hpp"
#include "bigdata/kvstore.hpp"
#include "common/rng.hpp"
#include "scone/fs_protection.hpp"

namespace securecloud {
namespace {

using crypto::DeterministicEntropy;

// ------------------------------------------------- ShieldedFileSystem fuzz

class ShieldedFsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShieldedFsFuzz, MatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  scone::UntrustedFileSystem host;
  DeterministicEntropy entropy(seed + 1000);
  scone::ShieldedFileSystem fs(host, scone::FsProtection{}, entropy);

  // Reference: plain byte vectors.
  std::map<std::string, Bytes> model;
  const std::vector<std::string> paths = {"/a", "/b", "/dir/c"};
  const std::uint32_t chunk_sizes[] = {16, 64, 256};

  for (int op = 0; op < 600; ++op) {
    const std::string& path = paths[rng.uniform(paths.size())];
    const bool exists = model.count(path) > 0;
    switch (rng.uniform(6)) {
      case 0: {  // create
        const auto created = fs.create(path, chunk_sizes[rng.uniform(3)]);
        EXPECT_EQ(created.ok(), !exists) << "op " << op;
        if (created.ok()) model[path] = {};
        break;
      }
      case 1: {  // remove
        const auto removed = fs.remove(path);
        EXPECT_EQ(removed.ok(), exists) << "op " << op;
        model.erase(path);
        break;
      }
      case 2: {  // write at random offset
        if (!exists) break;
        const std::uint64_t offset = rng.uniform(1200);
        Bytes data(rng.uniform(300) + 1);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        ASSERT_TRUE(fs.write(path, offset, data).ok()) << "op " << op;
        Bytes& ref = model[path];
        if (ref.size() < offset + data.size()) ref.resize(offset + data.size(), 0);
        std::copy(data.begin(), data.end(), ref.begin() + static_cast<std::ptrdiff_t>(offset));
        break;
      }
      case 3: {  // write_all (truncate)
        if (!exists) break;
        Bytes data(rng.uniform(800));
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        ASSERT_TRUE(fs.write_all(path, data).ok()) << "op " << op;
        model[path] = data;
        break;
      }
      case 4: {  // random read
        if (!exists) break;
        const Bytes& ref = model[path];
        const std::uint64_t offset = rng.uniform(ref.size() + 10);
        const std::size_t len = rng.uniform(400);
        auto got = fs.read(path, offset, len);
        if (offset > ref.size()) {
          EXPECT_FALSE(got.ok()) << "op " << op;
        } else {
          ASSERT_TRUE(got.ok()) << "op " << op;
          const std::size_t expect_len = std::min<std::size_t>(len, ref.size() - offset);
          ASSERT_EQ(got->size(), expect_len) << "op " << op;
          EXPECT_TRUE(std::equal(got->begin(), got->end(),
                                 ref.begin() + static_cast<std::ptrdiff_t>(offset)))
              << "op " << op;
        }
        break;
      }
      case 5: {  // full read + size check
        if (!exists) break;
        auto got = fs.read_all(path);
        ASSERT_TRUE(got.ok()) << "op " << op;
        EXPECT_EQ(*got, model[path]) << "op " << op;
        auto size = fs.size_of(path);
        ASSERT_TRUE(size.ok());
        EXPECT_EQ(*size, model[path].size());
        break;
      }
    }
  }

  // Final sweep: every live file matches; every dead file is gone.
  for (const auto& path : paths) {
    if (model.count(path)) {
      auto got = fs.read_all(path);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, model[path]);
    } else {
      EXPECT_FALSE(fs.exists(path));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShieldedFsFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------- SecureKvStore fuzz

class KvStoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvStoreFuzz, MatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy(seed + 2000);
  bigdata::SecureKvStore store(storage, Bytes(16, 0x5e), "fuzz", entropy);
  std::map<std::string, Bytes> model;

  auto random_key = [&] { return "key-" + std::to_string(rng.uniform(40)); };

  for (int op = 0; op < 800; ++op) {
    const std::string key = random_key();
    switch (rng.uniform(4)) {
      case 0: {  // put
        Bytes value(rng.uniform(200));
        for (auto& b : value) b = static_cast<std::uint8_t>(rng.next());
        ASSERT_TRUE(store.put(key, value).ok());
        model[key] = value;
        break;
      }
      case 1: {  // get
        auto got = store.get(key);
        if (model.count(key)) {
          ASSERT_TRUE(got.ok()) << "op " << op;
          EXPECT_EQ(*got, model[key]) << "op " << op;
        } else {
          EXPECT_FALSE(got.ok()) << "op " << op;
        }
        break;
      }
      case 2: {  // remove
        EXPECT_EQ(store.remove(key).ok(), model.count(key) > 0) << "op " << op;
        model.erase(key);
        break;
      }
      case 3: {  // prefix scan equivalence
        const std::string prefix = "key-" + std::to_string(rng.uniform(4));
        const auto got = store.scan_prefix(prefix);
        std::vector<std::string> expected;
        for (const auto& [k, v] : model) {
          if (k.rfind(prefix, 0) == 0) expected.push_back(k);
        }
        EXPECT_EQ(got, expected) << "op " << op;
        break;
      }
    }
    EXPECT_EQ(store.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStoreFuzz, ::testing::Values(7, 17, 27, 37));

// ------------------------------------------------------ SecureTable fuzz

class TableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableFuzz, MatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy(seed + 3000);
  bigdata::TableSchema schema;
  schema.name = "fuzz";
  schema.primary_key = "id";
  schema.columns = {{"id", scbr::Value::Type::kInt, true},
                    {"score", scbr::Value::Type::kInt, true},
                    {"tag", scbr::Value::Type::kString, false}};
  auto table = bigdata::SecureTable::create(storage, Bytes(16, 0x71), schema, entropy);
  ASSERT_TRUE(table.ok());

  struct Ref {
    std::int64_t score;
    std::string tag;
  };
  std::map<std::int64_t, Ref> model;

  for (int op = 0; op < 500; ++op) {
    const std::int64_t id = rng.uniform_in(0, 30);
    switch (rng.uniform(3)) {
      case 0: {  // upsert
        const std::int64_t score = rng.uniform_in(-100, 100);
        const std::string tag = "t" + std::to_string(rng.uniform(5));
        ASSERT_TRUE(table
                        ->upsert({{"id", scbr::Value::of(id)},
                                  {"score", scbr::Value::of(score)},
                                  {"tag", scbr::Value::of(tag)}})
                        .ok());
        model[id] = {score, tag};
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(table->erase(scbr::Value::of(id)).ok(), model.count(id) > 0);
        model.erase(id);
        break;
      }
      case 2: {  // score range scan vs reference
        std::int64_t lo = rng.uniform_in(-100, 100);
        std::int64_t hi = rng.uniform_in(-100, 100);
        if (lo > hi) std::swap(lo, hi);
        auto rows = table->scan("score", scbr::Value::of(lo), scbr::Value::of(hi));
        ASSERT_TRUE(rows.ok()) << "op " << op;
        std::multiset<std::int64_t> got, expected;
        for (const auto& row : *rows) got.insert(row.at("id").as_int());
        for (const auto& [rid, ref] : model) {
          if (ref.score >= lo && ref.score <= hi) expected.insert(rid);
        }
        EXPECT_EQ(got, expected) << "op " << op;
        break;
      }
    }
    EXPECT_EQ(table->size(), model.size());
  }

  // Final verification of every row.
  for (const auto& [id, ref] : model) {
    auto row = table->get(scbr::Value::of(id));
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->at("score").as_int(), ref.score);
    EXPECT_EQ(row->at("tag").as_string(), ref.tag);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableFuzz, ::testing::Values(41, 42, 43, 44));

// ------------------------------------------------ RLE + series codec fuzz

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RleRoundTripsArbitraryShapes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    Bytes data;
    const std::size_t segments = rng.uniform(20);
    for (std::size_t s = 0; s < segments; ++s) {
      if (rng.chance(0.5)) {
        data.insert(data.end(), rng.uniform(400) + 1,
                    static_cast<std::uint8_t>(rng.next()));  // run
      } else {
        const std::size_t n = rng.uniform(200) + 1;  // noise
        for (std::size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng.next()));
        }
      }
    }
    auto back = bigdata::rle_decompress(bigdata::rle_compress(data));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, data) << "trial " << trial;
  }
}

TEST_P(CodecFuzz, SeriesRoundTripsArbitraryWalks) {
  Rng rng(GetParam() + 99);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::int64_t> series;
    std::int64_t v = rng.uniform_in(-1'000'000, 1'000'000);
    const std::size_t n = rng.uniform(2'000);
    for (std::size_t i = 0; i < n; ++i) {
      v += rng.uniform_in(-100'000, 100'000);
      series.push_back(v);
    }
    auto back = bigdata::decode_series(bigdata::encode_series(series));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, series) << "trial " << trial;
  }
}

TEST_P(CodecFuzz, DecompressorSurvivesGarbage) {
  // Malformed input must error out, never crash or hang.
  Rng rng(GetParam() + 7);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage(rng.uniform(100));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    (void)bigdata::rle_decompress(garbage);
    (void)bigdata::decode_series(garbage);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace securecloud
