// GenPack tests: trace generation, server/power model, the three
// schedulers, migration correctness, and the headline energy comparison.
#include <gtest/gtest.h>

#include "genpack/simulator.hpp"

namespace securecloud::genpack {
namespace {

ContainerSpec spec(const std::string& id, ContainerClass cls, double cpu, double mem,
                   std::uint64_t arrival, std::uint64_t duration) {
  ContainerSpec c;
  c.id = id;
  c.cls = cls;
  c.cpu_cores = cpu;
  c.mem_gb = mem;
  c.arrival_s = arrival;
  c.duration_s = duration;
  return c;
}

// ------------------------------------------------------------------- Trace

TEST(Trace, CompositionMatchesConfig) {
  TraceConfig config;
  config.system_containers = 5;
  config.service_containers = 10;
  const auto trace = generate_trace(config, 1);

  std::size_t system = 0, service = 0, batch = 0;
  for (const auto& c : trace) {
    switch (c.cls) {
      case ContainerClass::kSystem: ++system; break;
      case ContainerClass::kService: ++service; break;
      case ContainerClass::kBatch: ++batch; break;
    }
  }
  EXPECT_EQ(system, 5u);
  EXPECT_EQ(service, 10u);
  // ~120/h for 24h => ~2880 batch jobs (Poisson).
  EXPECT_GT(batch, 2000u);
  EXPECT_LT(batch, 4000u);
}

TEST(Trace, SortedByArrivalAndDeterministic) {
  TraceConfig config;
  const auto a = generate_trace(config, 7);
  const auto b = generate_trace(config, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
  }
  const auto c = generate_trace(config, 8);
  EXPECT_NE(a.size(), c.size());  // different seed, different Poisson draw
}

TEST(Trace, SystemContainersAreImmortal) {
  const auto trace = generate_trace({}, 3);
  for (const auto& c : trace) {
    if (c.cls == ContainerClass::kSystem) {
      EXPECT_EQ(c.duration_s, 0u);
      EXPECT_EQ(c.departure_s(), UINT64_MAX);
    } else {
      EXPECT_GT(c.duration_s, 0u);
    }
  }
}

// ------------------------------------------------------------------ Server

TEST(Server, PlacementAndPower) {
  Server server(0, {});
  EXPECT_FALSE(server.powered_on());
  EXPECT_DOUBLE_EQ(server.power_watts(), 5.0);  // suspended

  const auto c = spec("c1", ContainerClass::kBatch, 8.0, 16.0, 0, 60);
  ASSERT_TRUE(server.can_fit(c));
  server.place(c);
  EXPECT_TRUE(server.powered_on());
  EXPECT_DOUBLE_EQ(server.cpu_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(server.power_watts(), 95.0 + 95.0 * 0.5);

  ASSERT_TRUE(server.remove("c1"));
  EXPECT_FALSE(server.powered_on());  // auto-suspend when drained
  EXPECT_FALSE(server.remove("c1"));
}

TEST(Server, CapacityEnforced) {
  Server server(0, {});
  server.place(spec("big", ContainerClass::kService, 15.0, 32.0, 0, 0));
  EXPECT_FALSE(server.can_fit(spec("more-cpu", ContainerClass::kBatch, 2.0, 1.0, 0, 60)));
  EXPECT_TRUE(server.can_fit(spec("small", ContainerClass::kBatch, 1.0, 1.0, 0, 60)));
  EXPECT_FALSE(server.can_fit(spec("more-mem", ContainerClass::kBatch, 0.5, 33.0, 0, 60)));
}

TEST(Server, IdleFloorDominatesPowerCurve) {
  Server idle_server(0, {}), busy(1, {});
  idle_server.place(spec("tiny", ContainerClass::kBatch, 0.1, 0.1, 0, 60));
  busy.place(spec("full", ContainerClass::kBatch, 16.0, 1.0, 0, 60));
  // A nearly idle powered-on server still burns >= half of a fully busy one.
  EXPECT_GT(idle_server.power_watts(), 0.5 * busy.power_watts());
}

// -------------------------------------------------------------- Schedulers

TEST(Spread, PicksLeastLoaded) {
  std::vector<Server> servers{Server(0, {}), Server(1, {}), Server(2, {})};
  servers[0].place(spec("a", ContainerClass::kBatch, 8, 8, 0, 60));
  servers[1].place(spec("b", ContainerClass::kBatch, 4, 4, 0, 60));
  SpreadScheduler spread;
  auto pick = spread.place(spec("new", ContainerClass::kBatch, 1, 1, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);  // the empty one
}

TEST(FirstFit, PacksInIdOrder) {
  std::vector<Server> servers{Server(0, {}), Server(1, {})};
  FirstFitScheduler ff;
  for (int i = 0; i < 4; ++i) {
    auto pick = ff.place(spec("c" + std::to_string(i), ContainerClass::kBatch, 4, 4, 0, 60),
                         servers);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 0u);
    servers[*pick].place(spec("c" + std::to_string(i), ContainerClass::kBatch, 4, 4, 0, 60));
  }
  // Server 0 full (16 cores): next goes to server 1.
  auto pick = ff.place(spec("c4", ContainerClass::kBatch, 4, 4, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(BestFit, PicksFullestFittingServer) {
  std::vector<Server> servers{Server(0, {}), Server(1, {}), Server(2, {})};
  servers[0].place(spec("a", ContainerClass::kBatch, 14, 8, 0, 60));  // nearly full
  servers[1].place(spec("b", ContainerClass::kBatch, 4, 4, 0, 60));
  BestFitScheduler bf;
  // A 4-core job does not fit server 0 (14+4 > 16): best fit is server 1.
  auto pick = bf.place(spec("new", ContainerClass::kBatch, 4, 4, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
  // A 2-core job fits server 0, the fullest.
  pick = bf.place(spec("small", ContainerClass::kBatch, 2, 2, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
}

TEST(BestFit, RejectsWhenNothingFits) {
  std::vector<Server> servers{Server(0, {})};
  servers[0].place(spec("hog", ContainerClass::kService, 16, 64, 0, 0));
  BestFitScheduler bf;
  EXPECT_FALSE(bf.place(spec("x", ContainerClass::kBatch, 1, 1, 0, 60), servers).has_value());
}

TEST(FirstFit, RejectsWhenClusterFull) {
  std::vector<Server> servers{Server(0, {})};
  servers[0].place(spec("hog", ContainerClass::kService, 16, 64, 0, 0));
  FirstFitScheduler ff;
  EXPECT_FALSE(ff.place(spec("x", ContainerClass::kBatch, 1, 1, 0, 60), servers).has_value());
}

TEST(GenPack, GenerationBoundaries) {
  GenPackScheduler genpack(20);
  EXPECT_EQ(genpack.nursery_end(), 6u);   // 30% of 20
  EXPECT_EQ(genpack.young_end(), 16u);    // 20% old => 4 old servers
}

TEST(GenPack, SystemContainersGoToOldGeneration) {
  GenPackScheduler genpack(10);
  std::vector<Server> servers;
  for (std::size_t i = 0; i < 10; ++i) servers.emplace_back(i, ServerConfig{});
  auto pick = genpack.place(spec("sys", ContainerClass::kSystem, 1, 1, 0, 0), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(*pick, genpack.young_end());
}

TEST(GenPack, NewContainersStartInNursery) {
  GenPackScheduler genpack(10);
  std::vector<Server> servers;
  for (std::size_t i = 0; i < 10; ++i) servers.emplace_back(i, ServerConfig{});
  auto pick = genpack.place(spec("job", ContainerClass::kBatch, 1, 1, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_LT(*pick, genpack.nursery_end());
}

TEST(GenPack, BestFitPacksTightly) {
  GenPackScheduler genpack(10);
  std::vector<Server> servers;
  for (std::size_t i = 0; i < 10; ++i) servers.emplace_back(i, ServerConfig{});
  servers[0].place(spec("a", ContainerClass::kBatch, 8, 8, 0, 60));
  servers[1].place(spec("b", ContainerClass::kBatch, 2, 2, 0, 60));
  // Best-fit prefers the fuller nursery server that still fits.
  auto pick = genpack.place(spec("new", ContainerClass::kBatch, 4, 4, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
}

TEST(GenPack, PromotesSurvivorsAfterMonitoringWindow) {
  GenPackConfig config;
  config.monitoring_window_s = 100;
  config.period_s = 50;
  GenPackScheduler genpack(10, config);
  std::vector<Server> servers;
  for (std::size_t i = 0; i < 10; ++i) servers.emplace_back(i, ServerConfig{});

  const auto young_svc = spec("svc", ContainerClass::kService, 2, 2, 0, 10'000);
  servers[0].place(young_svc);

  // Before the window: no migrations.
  EXPECT_TRUE(genpack.periodic(60, servers).empty());
  // After: promoted into the young generation.
  const auto migrations = genpack.periodic(200, servers);
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].container_id, "svc");
  EXPECT_GE(migrations[0].to_server, genpack.nursery_end());
  EXPECT_LT(migrations[0].to_server, genpack.young_end());
}

// --------------------------------------------------------------- Simulator

TEST(Simulator, EnergyAccountingSanity) {
  // One immortal container on one server for 1 hour.
  ClusterSimulator sim(2);
  FirstFitScheduler ff;
  std::vector<ContainerSpec> trace{spec("c", ContainerClass::kService, 16, 1, 0, 3600)};
  const auto report = sim.run(trace, ff);
  // Server 0 at 100% for 1h (190W) + server 1 suspended (5W).
  EXPECT_NEAR(report.total_energy_wh, 190.0 + 5.0, 1.0);
  EXPECT_EQ(report.placed, 1u);
  EXPECT_EQ(report.rejected, 0u);
}

TEST(Simulator, DeparturesFreeCapacity) {
  ClusterSimulator sim(1);
  FirstFitScheduler ff;
  std::vector<ContainerSpec> trace{
      spec("a", ContainerClass::kBatch, 16, 1, 0, 100),
      spec("b", ContainerClass::kBatch, 16, 1, 200, 100),  // fits after a leaves
  };
  const auto report = sim.run(trace, ff);
  EXPECT_EQ(report.placed, 2u);
  EXPECT_EQ(report.rejected, 0u);
}

TEST(Simulator, RejectsWhenNoCapacity) {
  ClusterSimulator sim(1);
  FirstFitScheduler ff;
  std::vector<ContainerSpec> trace{
      spec("a", ContainerClass::kBatch, 16, 1, 0, 1000),
      spec("b", ContainerClass::kBatch, 16, 1, 100, 100),  // overlaps
  };
  const auto report = sim.run(trace, ff);
  EXPECT_EQ(report.placed, 1u);
  EXPECT_EQ(report.rejected, 1u);
}

TEST(Simulator, MigrationsPreserveContainers) {
  GenPackConfig config;
  config.monitoring_window_s = 100;
  config.period_s = 100;
  GenPackScheduler genpack(10, config);
  ClusterSimulator sim(10);
  std::vector<ContainerSpec> trace{
      spec("svc", ContainerClass::kService, 2, 2, 0, 5000),
  };
  const auto report = sim.run(trace, genpack, config.period_s);
  EXPECT_EQ(report.placed, 1u);
  EXPECT_GE(report.migrations, 1u);  // promoted out of the nursery
  // At the end the container has departed; no server should still host it.
  for (const auto& server : sim.servers()) {
    EXPECT_FALSE(server.hosts("svc"));
    EXPECT_EQ(server.container_count(), 0u);
  }
}

TEST(Simulator, GenPackSavesEnergyVersusSpread) {
  // The §VI claim: "up to 23% energy savings ... for typical data-center
  // workloads". Expect GenPack to beat spread substantially and be at
  // least as good as first-fit.
  TraceConfig tconfig;
  const auto trace = generate_trace(tconfig, 42);

  const std::size_t cluster = 24;
  SpreadScheduler spread;
  FirstFitScheduler ff;
  GenPackScheduler genpack(cluster);

  const auto spread_report = ClusterSimulator(cluster).run(trace, spread);
  const auto ff_report = ClusterSimulator(cluster).run(trace, ff);
  const auto genpack_report = ClusterSimulator(cluster).run(trace, genpack);

  // All schedulers placed (almost) everything.
  EXPECT_LT(spread_report.rejected, trace.size() / 100);
  EXPECT_LT(genpack_report.rejected, trace.size() / 100);

  const double savings_vs_spread =
      1.0 - genpack_report.total_energy_wh / spread_report.total_energy_wh;
  EXPECT_GT(savings_vs_spread, 0.10) << "GenPack should save >=10% vs spread";
  EXPECT_LE(genpack_report.total_energy_wh, ff_report.total_energy_wh * 1.05)
      << "GenPack should be no worse than first-fit";
  // Consolidation shows up as fewer powered-on servers on average.
  EXPECT_LT(genpack_report.avg_servers_on, spread_report.avg_servers_on);
}

TEST(Simulator, InterferenceAccounting) {
  // One service sharing a server with a batch job for 1h = 1 exposure hour.
  ClusterSimulator sim(1);
  FirstFitScheduler ff;
  std::vector<ContainerSpec> trace{
      spec("svc", ContainerClass::kService, 2, 2, 0, 3600),
      spec("job", ContainerClass::kBatch, 2, 2, 0, 3600),
  };
  const auto report = sim.run(trace, ff);
  EXPECT_NEAR(report.interference_container_hours, 1.0, 0.01);
}

TEST(Simulator, BatchOnlyServersCauseNoInterference) {
  ClusterSimulator sim(1);
  FirstFitScheduler ff;
  std::vector<ContainerSpec> trace{
      spec("job1", ContainerClass::kBatch, 2, 2, 0, 3600),
      spec("job2", ContainerClass::kBatch, 2, 2, 0, 3600),
  };
  const auto report = sim.run(trace, ff);
  EXPECT_DOUBLE_EQ(report.interference_container_hours, 0.0);
}

// --------------------------------------------- integer accounting / EPC

TEST(Server, ChurnOfFractionalDemandsDoesNotDrift) {
  // Regression: with double accounting, 10k place/remove cycles of a
  // 0.1-core container accumulate ~1e-12 residue, and a container that
  // exactly fills the remaining capacity starts getting rejected.
  Server server(0, {});
  server.place(spec("resident", ContainerClass::kService, 0.5, 0.5, 0, 0));
  for (int i = 0; i < 10'000; ++i) {
    server.place(spec("churn", ContainerClass::kBatch, 0.1, 0.1, 0, 60));
    ASSERT_TRUE(server.remove("churn"));
  }
  EXPECT_EQ(server.cpu_used(), 0.5);  // exact, not approximately
  EXPECT_EQ(server.mem_used(), 0.5);
  // Exact fill of the remaining 15.5 cores must still be accepted.
  EXPECT_TRUE(server.can_fit(spec("fill", ContainerClass::kBatch, 15.5, 63.5, 0, 60)));
  EXPECT_FALSE(server.can_fit(spec("over", ContainerClass::kBatch, 15.501, 1.0, 0, 60)));
}

ContainerSpec enclave_spec(const std::string& id, double cpu, double epc) {
  ContainerSpec c = spec(id, ContainerClass::kService, cpu, 1.0, 0, 0);
  c.epc_mb = epc;
  return c;
}

TEST(Server, EpcCapacityEnforced) {
  ServerConfig sgx_cfg;
  sgx_cfg.epc_capacity = 93.0;
  Server sgx_server(0, sgx_cfg);
  Server plain(1, {});  // epc_capacity 0: no SGX

  EXPECT_TRUE(sgx_server.sgx_capable());
  EXPECT_FALSE(plain.sgx_capable());
  // An enclave container never fits a plain server, however empty.
  EXPECT_FALSE(plain.can_fit(enclave_spec("e", 0.1, 1.0)));
  EXPECT_TRUE(plain.can_fit(spec("p", ContainerClass::kBatch, 0.1, 0.1, 0, 60)));

  ASSERT_TRUE(sgx_server.can_fit(enclave_spec("e1", 1.0, 90.0)));
  sgx_server.place(enclave_spec("e1", 1.0, 90.0));
  EXPECT_FALSE(sgx_server.can_fit(enclave_spec("e2", 1.0, 4.0)));  // EPC, not CPU
  EXPECT_TRUE(sgx_server.can_fit(enclave_spec("e3", 1.0, 3.0)));
  EXPECT_EQ(sgx_server.epc_free_milli(), 3'000);
}

TEST(Server, FailEvacuatesContainersAndRejectsPlacements) {
  Server server(0, {});
  server.place(spec("a", ContainerClass::kBatch, 2, 2, 0, 60));
  server.place(spec("b", ContainerClass::kService, 1, 1, 0, 0));
  auto evacuated = server.fail();
  EXPECT_TRUE(server.failed());
  EXPECT_FALSE(server.powered_on());
  ASSERT_EQ(evacuated.size(), 2u);
  EXPECT_TRUE(evacuated.count("a") == 1 && evacuated.count("b") == 1);
  EXPECT_FALSE(server.can_fit(spec("c", ContainerClass::kBatch, 0.1, 0.1, 0, 60)));
  EXPECT_EQ(server.container_count(), 0u);
}

TEST(EpcAwareBestFit, EnclaveGoesToTightestEpcFit) {
  ServerConfig sgx_cfg;
  sgx_cfg.epc_capacity = 93.0;
  std::vector<Server> servers{Server(0, sgx_cfg), Server(1, sgx_cfg), Server(2, {})};
  servers[0].place(enclave_spec("warm", 1.0, 80.0));  // 13 MB EPC left
  // Server 1 untouched: 93 MB left. Tightest fit for a 10 MB enclave is 0.
  EpcAwareBestFitScheduler epc;
  auto pick = epc.place(enclave_spec("new", 1.0, 10.0), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
  // A 20 MB enclave no longer fits server 0's EPC: falls to server 1.
  pick = epc.place(enclave_spec("big", 1.0, 20.0), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
  // Never the non-SGX server.
  pick = epc.place(enclave_spec("any", 1.0, 1.0), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_NE(*pick, 2u);
}

TEST(EpcAwareBestFit, PlainContainersSpareSgxServers) {
  ServerConfig sgx_cfg;
  sgx_cfg.epc_capacity = 93.0;
  std::vector<Server> servers{Server(0, sgx_cfg), Server(1, {})};
  EpcAwareBestFitScheduler epc;
  // Plain container: prefers the non-SGX server even though server 0 is
  // just as empty (EPC machines are reserved for enclaves).
  auto pick = epc.place(spec("plain", ContainerClass::kBatch, 4, 4, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
  // Overflow: once the plain server is full, spill onto the SGX one.
  servers[1].place(spec("hog", ContainerClass::kService, 14, 60, 0, 0));
  pick = epc.place(spec("spill", ContainerClass::kBatch, 4, 4, 0, 60), servers);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
  // Failed servers are excluded entirely.
  (void)servers[0].fail();
  EXPECT_FALSE(epc.place(spec("x", ContainerClass::kBatch, 4, 4, 0, 60), servers)
                   .has_value());
}

TEST(Simulator, GenPackReducesNoisyNeighbourExposure) {
  const auto trace = generate_trace(TraceConfig{}, 42);
  BestFitScheduler best_fit;
  GenPackScheduler genpack(10);
  const auto bf = ClusterSimulator(10).run(trace, best_fit);
  const auto gp = ClusterSimulator(10).run(trace, genpack);
  // Generation separation keeps services away from batch churn.
  EXPECT_LT(gp.interference_container_hours, 0.85 * bf.interference_container_hours);
}

}  // namespace
}  // namespace securecloud::genpack
