// Cross-module integration scenarios: the full stack working together the
// way Fig. 1 describes — secure images, attested startup, shielded state,
// the encrypted event bus, stream analytics, and scheduling.
#include <gtest/gtest.h>

#include "bigdata/kvstore.hpp"
#include "bigdata/streaming.hpp"
#include "container/engine.hpp"
#include "container/scone_client.hpp"
#include "genpack/simulator.hpp"
#include "microservice/service.hpp"
#include "scone/stdio.hpp"
#include "smartgrid/fault.hpp"
#include "smartgrid/meter.hpp"

namespace securecloud {
namespace {

using crypto::DeterministicEntropy;

// ---------------------------------------------------------------------------
// Scenario 1: lifecycle of a stateful secure service across two runs.
// Build image -> run (mutates shielded state) -> owner refreshes the SCF
// hash -> second run continues from the state. A rollback of the image
// between runs is refused at attested startup.
// ---------------------------------------------------------------------------
TEST(Integration, OwnerRefreshesFspfHashBetweenRuns) {
  container::Registry registry;
  container::ContainerMonitor monitor;
  container::ContainerEngine engine(registry, monitor);
  sgx::Platform platform;
  sgx::AttestationService attestation;
  platform.provision(attestation);
  DeterministicEntropy entropy(600);
  DeterministicEntropy signer_seed(601);
  container::SconeClient client(registry, entropy,
                                crypto::ed25519_keypair(signer_seed.array<32>()));
  scone::ConfigurationService config(attestation, entropy);

  container::SecureImageSpec spec;
  spec.name = "counter";
  spec.app_code = to_bytes("counter binary");
  spec.protected_files["/state/count"] = to_bytes("41");
  auto manifest = client.build_secure_image(spec, config);
  ASSERT_TRUE(manifest.ok());

  auto increment = [](scone::AppContext& ctx) -> Result<Bytes> {
    auto count = ctx.fs.read_all("/state/count");
    if (!count.ok()) return count.error();
    const int value = std::stoi(securecloud::to_string(*count)) + 1;
    SC_RETURN_IF_ERROR(ctx.fs.write_all("/state/count", to_bytes(std::to_string(value))));
    return to_bytes(std::to_string(value));
  };

  // Run 1 in container A.
  auto ca = engine.create("counter:latest");
  ASSERT_TRUE(ca.ok());
  auto run1 = engine.run_secure(**ca, platform, config, increment);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(securecloud::to_string(run1->app_result), "42");

  // Owner-side refresh: rebuild the SCF entry with the new hash. We
  // reconstruct the SCF via a fresh fetch from an attested enclave, then
  // re-register with the updated hash.
  auto probe = platform.create_enclave(manifest->enclave_image);
  ASSERT_TRUE(probe.ok());
  auto scf = scone::fetch_scf(**probe, config, platform.entropy());
  ASSERT_TRUE(scf.ok());
  scone::StartupConfig updated = *scf;
  updated.fs_protection_hash = run1->new_fspf_hash;
  config.register_scf(manifest->enclave_image.expected_measurement(), updated);

  // Run 2 continues from the persisted state in the SAME rootfs.
  auto run2 = engine.run_secure(**ca, platform, config, increment);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(securecloud::to_string(run2->app_result), "43");

  // Rollback: host restores the run-1 FSPF; startup must refuse.
  // (The engine re-reads the rootfs, where the stale FSPF now sits.)
  scone::UntrustedFileSystem& rootfs = (*ca)->rootfs();
  const auto current = *rootfs.read_file(scone::SconeRuntime::kFspfPath);
  // Simulate by truncating the FSPF to a stale (different) value.
  Bytes stale = current;
  stale[0] ^= 1;
  ASSERT_TRUE(rootfs.write_file(scone::SconeRuntime::kFspfPath, stale).ok());
  auto rollback = engine.run_secure(**ca, platform, config, increment);
  ASSERT_FALSE(rollback.ok());
  EXPECT_EQ(rollback.error().code, ErrorCode::kIntegrityViolation);
}

// ---------------------------------------------------------------------------
// Scenario 2: streaming analytics over the encrypted event bus — meter
// readings flow through SCBR, a windowed aggregator feeds a fault
// detector, the orchestrator reacts. (Fig. 1 wiring, end to end.)
// ---------------------------------------------------------------------------
TEST(Integration, EventBusStreamingFaultPipeline) {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  platform.provision(attestation);
  DeterministicEntropy entropy(700);
  scbr::KeyService keys(attestation, entropy);

  sgx::EnclaveImage bus_image;
  bus_image.name = "bus";
  bus_image.code = to_bytes("bus code");
  DeterministicEntropy signer_seed(701);
  sign_image(bus_image, crypto::ed25519_keypair(signer_seed.array<32>()));
  auto enclave = platform.create_enclave(bus_image);
  ASSERT_TRUE(enclave.ok());
  keys.authorize_router((*enclave)->mrenclave());

  microservice::EventBus bus(**enclave, keys);
  microservice::MicroService ingest(bus, "ingest");
  microservice::MicroService analytics(bus, "analytics");
  microservice::MicroService orchestration(bus, "orchestration");
  ASSERT_TRUE(bus.start().ok());

  // Analytics: 60 s windows per feeder feed the fault detector.
  smartgrid::FaultDetector detector(
      {.window = 8, .drop_fraction = 0.15, .min_samples = 4, .process_cycles = 1000},
      platform.clock());
  std::vector<smartgrid::FaultAlert> alerts;
  bigdata::TumblingWindowAggregator windows(
      60, 0, [&](const bigdata::WindowResult& w) {
        if (auto alert = detector.observe(w.key, w.window_end_s, w.sum)) {
          alerts.push_back(*alert);
          scbr::Event alarm;
          alarm.set("kind", "fault");
          alarm.set("feeder", w.key);
          (void)analytics.emit(alarm);
        }
      });

  scbr::Filter readings;
  readings.where("kind", scbr::Op::kEq, scbr::Value::of(std::string("reading")));
  ASSERT_TRUE(analytics
                  .on(readings,
                      [&](const scbr::Event& e) {
                        windows.observe(e.find("feeder")->as_string(),
                                        static_cast<std::uint64_t>(e.find("t")->as_int()),
                                        e.find("power")->numeric());
                      })
                  .ok());

  smartgrid::Orchestrator orchestrator;
  scbr::Filter faults;
  faults.where("kind", scbr::Op::kEq, scbr::Value::of(std::string("fault")));
  ASSERT_TRUE(orchestration
                  .on(faults,
                      [&](const scbr::Event& e) {
                        smartgrid::FaultAlert alert;
                        alert.feeder_id = e.find("feeder")->as_string();
                        orchestrator.on_fault(alert);
                      })
                  .ok());

  // Feeder telemetry: healthy for 20 minutes, then feeder-1 collapses.
  Rng rng(3);
  for (std::uint64_t t = 0; t < 40 * 60; t += 30) {
    for (const char* feeder : {"feeder-0", "feeder-1"}) {
      double power = 5'000 + rng.normal(0, 100);
      if (std::string(feeder) == "feeder-1" && t >= 20 * 60) power = 10;
      scbr::Event e;
      e.set("kind", "reading");
      e.set("feeder", feeder);
      e.set("t", static_cast<std::int64_t>(t));
      e.set("power", power);
      ASSERT_TRUE(ingest.emit(e).ok());
    }
    bus.drain();
  }
  windows.flush();

  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].feeder_id, "feeder-1");
  // One more drain for the fault alarm emitted during flush (if any
  // alarms were emitted post-drain they are still queued).
  bus.drain();
  EXPECT_TRUE(orchestrator.is_isolated("feeder-1"));
  EXPECT_FALSE(orchestrator.is_isolated("feeder-0"));
}

// ---------------------------------------------------------------------------
// Scenario 3: secure KV store inside a secure container — the service's
// database survives via sealed index + encrypted values, and the host
// learns nothing.
// ---------------------------------------------------------------------------
TEST(Integration, KvStoreInsideSecureContainer) {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  platform.provision(attestation);
  DeterministicEntropy entropy(800);

  sgx::EnclaveImage image;
  image.name = "kv-service";
  image.code = to_bytes("kv service code");
  DeterministicEntropy signer_seed(801);
  sign_image(image, crypto::ed25519_keypair(signer_seed.array<32>()));
  auto enclave = platform.create_enclave(image);
  ASSERT_TRUE(enclave.ok());

  scone::UntrustedFileSystem host_storage;
  const Bytes data_key = entropy.bytes(16);

  Bytes sealed_index;
  {
    bigdata::SecureKvStore store(host_storage, data_key, "meters", entropy);
    smartgrid::GridConfig grid;
    grid.households = 5;
    grid.interval_s = 3600;
    const smartgrid::MeterFleet fleet(grid, 5);
    for (std::size_t h = 0; h < grid.households; ++h) {
      double total = 0;
      for (const auto& r : fleet.household_series(h)) total += r.power_w;
      ASSERT_TRUE(store
                      .put(fleet.meter_id(h),
                           to_bytes(std::to_string(total)))
                      .ok());
    }
    sealed_index = store.seal_index(**enclave);
  }

  // Host-side inspection: only hashed names + ciphertext.
  for (const auto& path : host_storage.list()) {
    EXPECT_EQ(path.find("meter-"), std::string::npos);
  }

  // Service restart (same enclave identity): restore and query.
  bigdata::SecureKvStore restored(host_storage, data_key, "meters", entropy);
  ASSERT_TRUE(restored.restore_index(**enclave, sealed_index).ok());
  EXPECT_EQ(restored.scan_prefix("meter-").size(), 5u);
  auto value = restored.get("meter-3");
  ASSERT_TRUE(value.ok());
  EXPECT_GT(std::stod(securecloud::to_string(*value)), 0);
}

// ---------------------------------------------------------------------------
// Scenario 4: GenPack schedules the deployment that the other scenarios
// run — container classes derived from the micro-service roles.
// ---------------------------------------------------------------------------
TEST(Integration, DeploymentSchedulingEndToEnd) {
  using namespace genpack;
  // A SecureCloud deployment: system monitors + long-lived services
  // (router, analytics) + bursts of batch jobs (map/reduce workers).
  TraceConfig config;
  config.system_containers = 4;
  config.service_containers = 12;
  config.batch_arrivals_per_hour = 60;
  const auto trace = generate_trace(config, 11);

  GenPackScheduler genpack(8);
  ClusterSimulator sim(8);
  const auto report = sim.run(trace, genpack);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_GT(report.placed, trace.size() - 1);
  // Consolidation: the day's average fleet is well under the full 8.
  EXPECT_LT(report.avg_servers_on, 6.0);
}

}  // namespace
}  // namespace securecloud
