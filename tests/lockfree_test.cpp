// common/lockfree: MPSC queue (conservation + ticket order under N
// producers), epoch domain / RcuCell (reader-writer churn with safe
// reclamation), arena (concurrent bump allocation), and the flight
// recorder's EventRing (single writer vs. concurrent exporter). These
// are the TSan hammer targets for the lock-free data plane — run them
// under scripts/tsan_check.sh as well as in the tier-1 suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/lockfree/arena.hpp"
#include "common/lockfree/epoch.hpp"
#include "common/lockfree/event_ring.hpp"
#include "common/lockfree/mpsc_queue.hpp"
#include "common/lockfree/spsc_ring.hpp"
#include "scone/ring_buffer.hpp"

namespace securecloud::lockfree {
namespace {

// ------------------------------------------------------------- MpscQueue

TEST(MpscQueue, SerialPushesDrainInCallOrder) {
  MpscQueue<int> queue(4);  // tiny segments force chain growth
  for (int i = 0; i < 100; ++i) queue.push(i);
  std::vector<MpscQueue<int>::Item> out;
  queue.drain(out);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].ticket, static_cast<std::uint64_t>(i));
    EXPECT_EQ(out[static_cast<std::size_t>(i)].value, i);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, InterleavedDrainsPreserveResidue) {
  MpscQueue<int> queue(8);
  std::vector<MpscQueue<int>::Item> out;
  queue.push(1);
  queue.drain(out);
  queue.push(2);
  queue.push(3);
  queue.drain(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, 1);
  EXPECT_EQ(out[1].value, 2);
  EXPECT_EQ(out[2].value, 3);
}

TEST(MpscQueue, HammerConservesEveryPush) {
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscQueue<std::uint64_t> queue(64);

  std::atomic<bool> stop{false};
  std::vector<MpscQueue<std::uint64_t>::Item> out;
  // Consumer drains concurrently with the producers; value encodes
  // producer id * kPerProducer + local index.
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) queue.drain(out);
    queue.drain(out);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        queue.push(static_cast<std::uint64_t>(p) * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(out.size(), kProducers * kPerProducer);
  // Every ticket exactly once...
  std::set<std::uint64_t> tickets;
  for (const auto& item : out) tickets.insert(item.ticket);
  EXPECT_EQ(tickets.size(), out.size());
  // ...every value exactly once...
  std::vector<std::uint64_t> values;
  values.reserve(out.size());
  for (const auto& item : out) values.push_back(item.value);
  std::sort(values.begin(), values.end());
  for (std::uint64_t i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(values[i], i);
  }
  // ...and per-producer values in push order within the merged stream.
  std::vector<std::uint64_t> next_local(kProducers, 0);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.ticket < b.ticket; });
  for (const auto& item : out) {
    const auto p = item.value / kPerProducer;
    EXPECT_EQ(item.value % kPerProducer, next_local[p]++);
  }
}

// ----------------------------------------------------- EpochDomain / Rcu

TEST(EpochDomain, ReclaimWaitsForActiveReaders) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  int* obj = new int(7);
  {
    EpochDomain::Guard guard(domain);
    domain.retire(obj, [](void* p) { delete static_cast<int*>(p); });
    // A reader pinned before the retirement blocks reclamation.
    EXPECT_EQ(domain.try_reclaim(), 0u);
    EXPECT_EQ(domain.retired_count(), 1u);
    (void)freed;
  }
  EXPECT_EQ(domain.try_reclaim(), 1u);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomain, GuardsNest) {
  EpochDomain domain;
  EpochDomain::Guard outer(domain);
  {
    EpochDomain::Guard inner(domain);
    EXPECT_NE(domain.min_active_epoch(), UINT64_MAX);
  }
  // Inner guard release must not unpin the outer critical section.
  EXPECT_NE(domain.min_active_epoch(), UINT64_MAX);
}

TEST(RcuCell, ReadersSeeConsistentSnapshots) {
  RcuCell<std::vector<int>> cell(std::vector<int>{0});
  cell.update([](std::vector<int>& v) { v.push_back(1); });
  auto ref = cell.read();
  ASSERT_EQ(ref->size(), 2u);
  // A writer racing the held reference must not invalidate it.
  cell.store(std::vector<int>{42});
  EXPECT_EQ((*ref)[1], 1);
  EXPECT_EQ(cell.read()->at(0), 42);
}

TEST(RcuCell, HammerReadersNeverSeeTornState) {
  // Invariant: the vector always holds k, k+1, ..., k+7 for some k.
  // A torn or reclaimed-under-reader snapshot breaks it (and TSan
  // flags the access).
  RcuCell<std::vector<std::uint64_t>> cell([] {
    std::vector<std::uint64_t> v(8);
    std::iota(v.begin(), v.end(), 0);
    return v;
  }());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 6; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto ref = cell.read();
        ASSERT_EQ(ref->size(), 8u);
        for (std::size_t i = 1; i < ref->size(); ++i) {
          ASSERT_EQ((*ref)[i], (*ref)[0] + i);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 2'000; ++i) {
        cell.update([](std::vector<std::uint64_t>& v) {
          for (auto& x : v) ++x;
        });
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
  const auto settled = cell.read();
  EXPECT_EQ((*settled)[0], 4'000u);
}

// ------------------------------------------------------------------ Arena

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(512);
  std::vector<std::pair<char*, std::size_t>> regions;
  for (std::size_t i = 1; i <= 64; ++i) {
    auto* p = static_cast<char*>(arena.allocate(i * 3, 16));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    std::memset(p, static_cast<int>(i), i * 3);
    regions.emplace_back(p, i * 3);
  }
  // Contents survive later allocations (no overlap).
  for (std::size_t i = 1; i <= 64; ++i) {
    auto [p, n] = regions[i - 1];
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(p[j]), i);
    }
  }
}

TEST(Arena, OversizedRequestGetsOwnBlock) {
  Arena arena(256);
  auto* big = static_cast<char*>(arena.allocate(10'000));
  std::memset(big, 0xAB, 10'000);
  auto* small = static_cast<char*>(arena.allocate(16));
  std::memset(small, 0xCD, 16);
  EXPECT_EQ(static_cast<unsigned char>(big[9'999]), 0xABu);
}

TEST(Arena, HammerConcurrentAllocatorsGetDisjointMemory) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4'000;
  Arena arena(4 * 1024);
  std::vector<std::vector<std::uint64_t*>> owned(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto* slot = arena.create<std::uint64_t>(
            static_cast<std::uint64_t>(t) << 32 | static_cast<std::uint32_t>(i));
        owned[static_cast<std::size_t>(t)].push_back(slot);
      }
    });
  }
  for (auto& t : threads) t.join();
  // If any two allocations overlapped, somebody's value got clobbered.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(*owned[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(t) << 32 | static_cast<std::uint32_t>(i));
    }
  }
}

// -------------------------------------------------------------- EventRing

struct StampedEvent {
  std::uint64_t seq;
  std::string detail;
};

TEST(EventRing, KeepsLastCapacityEvents) {
  EpochDomain domain;
  EventRing<StampedEvent> ring(domain, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.append(new StampedEvent{i, "e" + std::to_string(i)});
  }
  std::vector<const StampedEvent*> out;
  {
    EpochDomain::Guard guard(domain);
    ring.collect(out);
  }
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i]->seq, 6 + i);  // oldest-first tail of the stream
  }
  EXPECT_EQ(ring.appended(), 10u);
}

TEST(EventRing, HammerWriterVsExporterUnderReclamation) {
  EpochDomain domain;
  EventRing<StampedEvent> ring(domain, 32);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> exports{0};

  std::thread exporter([&] {
    std::vector<const StampedEvent*> out;
    while (!stop.load(std::memory_order_acquire)) {
      out.clear();
      EpochDomain::Guard guard(domain);
      ring.collect(out);
      // Dereference everything we collected: epoch reclamation must keep
      // each pointer alive for the whole guard (TSan + ASan checkable).
      for (const auto* ev : out) {
        ASSERT_FALSE(ev->detail.empty());
        ASSERT_LT(ev->seq, 50'000u);
      }
      exports.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Single writer churns far past capacity so every append retires an
  // event while the exporter may be mid-walk.
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    ring.append(new StampedEvent{i, "event-" + std::to_string(i)});
  }
  stop.store(true, std::memory_order_release);
  exporter.join();
  EXPECT_GT(exports.load(), 0u);
  EXPECT_EQ(ring.appended(), 50'000u);
}

// ---------------------------------------------------- scone alias intact

TEST(LockfreeSpsc, SconeAliasIsTheSameType) {
  // The consolidation kept scone::SpscRing as an alias; both names must
  // refer to one implementation.
  static_assert(
      std::is_same_v<SpscRing<int>, ::securecloud::scone::SpscRing<int>>);
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_EQ(ring.try_pop().value(), 1);
}

}  // namespace
}  // namespace securecloud::lockfree
