// Merkle tree tests: roots, proofs, tamper/forgery rejection, odd shapes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/merkle.hpp"

namespace securecloud::crypto {
namespace {

std::vector<Bytes> numbered_leaves(std::size_t n) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(to_bytes("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  const auto leaves = numbered_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::hash_leaf(leaves[0]));
  const auto proof = tree.prove(0);
  EXPECT_TRUE(proof.siblings.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], proof));
}

TEST(Merkle, RootIsDeterministicAndContentSensitive) {
  const auto a = MerkleTree(numbered_leaves(8)).root();
  const auto b = MerkleTree(numbered_leaves(8)).root();
  EXPECT_EQ(a, b);

  auto changed = numbered_leaves(8);
  changed[3][0] ^= 1;
  EXPECT_NE(MerkleTree(changed).root(), a);

  // Leaf count changes the root too.
  EXPECT_NE(MerkleTree(numbered_leaves(7)).root(), a);
}

TEST(Merkle, AllProofsVerifyAcrossShapes) {
  // Powers of two, odd counts, primes: all shapes must prove cleanly.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 13u, 16u, 31u, 33u}) {
    const auto leaves = numbered_leaves(n);
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      const auto proof = tree.prove(i);
      EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, WrongLeafContentRejected) {
  const auto leaves = numbered_leaves(16);
  MerkleTree tree(leaves);
  const auto proof = tree.prove(5);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), to_bytes("leaf-6"), proof));
  EXPECT_FALSE(MerkleTree::verify(tree.root(), to_bytes(""), proof));
}

TEST(Merkle, ProofForWrongPositionRejected) {
  const auto leaves = numbered_leaves(16);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(5);
  proof.leaf_index = 6;  // claim a different position
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[5], proof));
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[6], proof));
}

TEST(Merkle, TamperedSiblingRejected) {
  const auto leaves = numbered_leaves(9);
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < 9; ++i) {
    MerkleProof proof = tree.prove(i);
    if (proof.siblings.empty()) continue;
    proof.siblings[0].first[0] ^= 1;
    EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[i], proof)) << i;
  }
}

TEST(Merkle, TruncatedOrPaddedProofRejected) {
  const auto leaves = numbered_leaves(16);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(3);
  MerkleProof truncated = proof;
  truncated.siblings.pop_back();
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[3], truncated));
  MerkleProof padded = proof;
  padded.siblings.push_back(padded.siblings[0]);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[3], padded));
}

TEST(Merkle, LeafCannotImpersonateInteriorNode) {
  // Domain separation: a "leaf" whose content equals an interior node's
  // two children hashes must not produce the same parent.
  const auto leaves = numbered_leaves(4);
  MerkleTree tree(leaves);
  Bytes fake_leaf;
  const auto h0 = MerkleTree::hash_leaf(leaves[0]);
  const auto h1 = MerkleTree::hash_leaf(leaves[1]);
  append(fake_leaf, h0);
  append(fake_leaf, h1);
  EXPECT_NE(MerkleTree::hash_leaf(fake_leaf), MerkleTree::hash_node(h0, h1));
}

TEST(Merkle, RandomizedProofSweep) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform(200);
    std::vector<Bytes> leaves;
    for (std::size_t i = 0; i < n; ++i) {
      Bytes leaf(rng.uniform(64));
      for (auto& b : leaf) b = static_cast<std::uint8_t>(rng.next());
      leaves.push_back(std::move(leaf));
    }
    MerkleTree tree(leaves);
    const std::size_t i = rng.uniform(n);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], tree.prove(i)));
    // Cross-proof must fail unless the leaves happen to be identical.
    const std::size_t j = rng.uniform(n);
    if (leaves[i] != leaves[j]) {
      EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[j], tree.prove(i)));
    }
  }
}

}  // namespace
}  // namespace securecloud::crypto
