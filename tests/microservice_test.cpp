// Event bus + micro-service framework tests.
#include <gtest/gtest.h>

#include "microservice/service.hpp"
#include "scbr/sharded_engine.hpp"
#include "scbr/workload.hpp"
#include "sgx/platform.hpp"

namespace securecloud::microservice {
namespace {

using crypto::DeterministicEntropy;
using scbr::Event;
using scbr::Filter;
using scbr::Op;
using scbr::Value;

struct BusFixture {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  DeterministicEntropy entropy{31};
  scbr::KeyService keys{attestation, entropy};
  sgx::Enclave* enclave = nullptr;

  BusFixture() {
    platform.provision(attestation);
    sgx::EnclaveImage image;
    image.name = "bus-router";
    image.code = to_bytes("router");
    DeterministicEntropy signer(404);
    sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
    auto created = platform.create_enclave(image);
    EXPECT_TRUE(created.ok());
    enclave = *created;
    keys.authorize_router(enclave->mrenclave());
  }
};

Filter temp_above(std::int64_t threshold) {
  Filter f;
  f.where("temp", Op::kGt, Value::of(threshold));
  return f;
}

TEST(EventBus, PublishSubscribeDispatch) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  auto* sensor = bus.attach("sensor");
  auto* alarm = bus.attach("alarm");
  ASSERT_NE(sensor, nullptr);
  ASSERT_NE(alarm, nullptr);
  ASSERT_TRUE(bus.start().ok());

  std::vector<std::int64_t> seen;
  ASSERT_TRUE(bus.subscribe(*alarm, temp_above(30), [&](const Event& e) {
                   seen.push_back(e.find("temp")->as_int());
                 }).ok());

  Event hot;
  hot.set("temp", std::int64_t{42});
  Event cold;
  cold.set("temp", std::int64_t{10});
  ASSERT_TRUE(bus.publish(*sensor, hot).ok());
  ASSERT_TRUE(bus.publish(*sensor, cold).ok());
  bus.drain();

  EXPECT_EQ(seen, (std::vector<std::int64_t>{42}));
  EXPECT_EQ(bus.published(), 2u);
  EXPECT_EQ(bus.delivered(), 1u);
}

TEST(EventBus, AcceptsInjectedShardedEngine) {
  // Subscription-heavy buses swap the default poset engine for the
  // sharded containment index; dispatch semantics are unchanged.
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys,
               std::make_unique<scbr::ShardedPosetEngine>());
  auto* sensor = bus.attach("sensor");
  auto* alarm = bus.attach("alarm");
  ASSERT_TRUE(bus.start().ok());

  std::vector<std::int64_t> seen;
  ASSERT_TRUE(bus.subscribe(*alarm, temp_above(30), [&](const Event& e) {
                   seen.push_back(e.find("temp")->as_int());
                 }).ok());
  Event hot;
  hot.set("temp", std::int64_t{42});
  ASSERT_TRUE(bus.publish(*sensor, hot).ok());
  Event cold;
  cold.set("temp", std::int64_t{5});
  ASSERT_TRUE(bus.publish(*sensor, cold).ok());
  bus.drain();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{42}));
}

TEST(EventBus, AttachAfterStartFails) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  (void)bus.attach("early");
  ASSERT_TRUE(bus.start().ok());
  EXPECT_EQ(bus.attach("late"), nullptr);
}

TEST(EventBus, DuplicateServiceNameRejected) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  EXPECT_NE(bus.attach("svc"), nullptr);
  EXPECT_EQ(bus.attach("svc"), nullptr);
}

TEST(EventBus, OperationsBeforeStartFail) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  auto* svc = bus.attach("svc");
  ASSERT_NE(svc, nullptr);
  EXPECT_FALSE(bus.subscribe(*svc, temp_above(0), [](const Event&) {}).ok());
  Event e;
  e.set("temp", std::int64_t{1});
  EXPECT_FALSE(bus.publish(*svc, e).ok());
}

TEST(EventBus, CascadingPublication) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  auto* sensor = bus.attach("sensor");
  auto* detector = bus.attach("detector");
  auto* pager = bus.attach("pager");
  ASSERT_TRUE(bus.start().ok());

  // detector turns raw readings into alerts; pager receives alerts.
  ASSERT_TRUE(bus.subscribe(*detector, temp_above(30), [&](const Event& e) {
                   Event alert;
                   alert.set("alert", "overheat");
                   alert.set("severity", e.find("temp")->as_int() > 100
                                             ? std::int64_t{2}
                                             : std::int64_t{1});
                   (void)bus.publish(*detector, alert);
                 }).ok());
  Filter alerts;
  alerts.where("severity", Op::kGe, Value::of(std::int64_t{1}));
  int paged = 0;
  ASSERT_TRUE(bus.subscribe(*pager, alerts, [&](const Event&) { ++paged; }).ok());

  Event very_hot;
  very_hot.set("temp", std::int64_t{120});
  ASSERT_TRUE(bus.publish(*sensor, very_hot).ok());
  const std::size_t invocations = bus.drain();
  EXPECT_EQ(invocations, 2u);  // detector, then pager
  EXPECT_EQ(paged, 1);
}

TEST(EventBus, MultipleSubscribersEachDelivered) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  auto* pub = bus.attach("pub");
  auto* s1 = bus.attach("s1");
  auto* s2 = bus.attach("s2");
  ASSERT_TRUE(bus.start().ok());
  int count1 = 0, count2 = 0;
  ASSERT_TRUE(bus.subscribe(*s1, temp_above(0), [&](const Event&) { ++count1; }).ok());
  ASSERT_TRUE(bus.subscribe(*s2, temp_above(0), [&](const Event&) { ++count2; }).ok());

  Event e;
  e.set("temp", std::int64_t{5});
  ASSERT_TRUE(bus.publish(*pub, e).ok());
  bus.drain();
  EXPECT_EQ(count1, 1);
  EXPECT_EQ(count2, 1);
}

TEST(MicroService, SugarApi) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  MicroService producer(bus, "producer");
  MicroService consumer(bus, "consumer");
  ASSERT_TRUE(producer.valid());
  ASSERT_TRUE(consumer.valid());
  ASSERT_TRUE(bus.start().ok());

  int received = 0;
  ASSERT_TRUE(consumer.on(temp_above(10), [&](const Event&) { ++received; }).ok());
  Event e;
  e.set("temp", std::int64_t{20});
  ASSERT_TRUE(producer.emit(e).ok());
  bus.drain();
  EXPECT_EQ(received, 1);
}

TEST(MicroService, AttachAfterStartIsInvalid) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  ASSERT_TRUE(bus.start().ok());
  MicroService late(bus, "late");
  EXPECT_FALSE(late.valid());
}

TEST(MicroService, RequestReplyRoundTrip) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  MicroService client(bus, "client");
  MicroService calculator(bus, "calculator");
  ASSERT_TRUE(bus.start().ok());

  ASSERT_TRUE(calculator
                  .serve("square",
                         [](const Event& request) {
                           const std::int64_t x = request.find("x")->as_int();
                           Event reply;
                           reply.set("result", x * x);
                           return reply;
                         })
                  .ok());

  std::int64_t result = 0;
  Event request;
  request.set("x", std::int64_t{12});
  ASSERT_TRUE(client
                  .call("square", request,
                        [&](const Event& reply) { result = reply.find("result")->as_int(); })
                  .ok());
  bus.drain();
  EXPECT_EQ(result, 144);
}

TEST(MicroService, RepliesCorrelateUnderConcurrentCalls) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  MicroService client(bus, "client");
  MicroService echo(bus, "echo");
  ASSERT_TRUE(bus.start().ok());
  ASSERT_TRUE(echo.serve("echo",
                         [](const Event& request) {
                           Event reply;
                           reply.set("value", request.find("value")->as_int());
                           return reply;
                         })
                  .ok());

  std::map<int, std::int64_t> results;
  for (int i = 0; i < 10; ++i) {
    Event request;
    request.set("value", std::int64_t{i * 100});
    ASSERT_TRUE(client
                    .call("echo", request,
                          [&results, i](const Event& reply) {
                            results[i] = reply.find("value")->as_int();
                          })
                    .ok());
  }
  bus.drain();
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(results[i], i * 100);
}

TEST(MicroService, RepliesGoOnlyToTheCaller) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  MicroService alice(bus, "alice");
  MicroService bob(bus, "bob");
  MicroService server(bus, "server");
  ASSERT_TRUE(bus.start().ok());
  ASSERT_TRUE(server.serve("whoami",
                           [](const Event& request) {
                             Event reply;
                             reply.set("caller", request.find(kRpcFromAttr)->as_string());
                             return reply;
                           })
                  .ok());

  std::string alice_sees, bob_sees;
  Event empty1, empty2;
  ASSERT_TRUE(alice.call("whoami", empty1, [&](const Event& reply) {
                     alice_sees = reply.find("caller")->as_string();
                   }).ok());
  ASSERT_TRUE(bob.call("whoami", empty2, [&](const Event& reply) {
                    bob_sees = reply.find("caller")->as_string();
                  }).ok());
  bus.drain();
  EXPECT_EQ(alice_sees, "alice");
  EXPECT_EQ(bob_sees, "bob");
}

TEST(MicroService, CallToUnservedMethodGetsNoReply) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  MicroService client(bus, "client");
  ASSERT_TRUE(bus.start().ok());
  bool replied = false;
  Event request;
  ASSERT_TRUE(client.call("ghost-method", request,
                          [&](const Event&) { replied = true; }).ok());
  bus.drain();
  EXPECT_FALSE(replied);  // no responder: the call just never completes
}

TEST(EventBus, DeliveriesMatchDirectEvaluationGoldenModel) {
  // Whole-stack equivalence: N services with random filters; every
  // published event must reach exactly the services whose filter
  // matches (per direct evaluation), despite the encryption, signing,
  // and enclave routing in between.
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);

  scbr::ScbrWorkload workload({.attribute_universe = 4,
                               .attributes_per_filter = 2,
                               .value_range = 50,
                               .width_fraction = 0.5,
                               .hierarchy_fraction = 0.4,
                               .parent_pool = 32},
                              77);
  constexpr int kServices = 12;
  std::vector<MicroService> services;
  services.reserve(kServices + 1);
  for (int i = 0; i < kServices; ++i) {
    services.emplace_back(bus, "svc-" + std::to_string(i));
  }
  MicroService publisher(bus, "publisher");
  ASSERT_TRUE(bus.start().ok());

  std::vector<scbr::Filter> filters;
  std::vector<int> hits(kServices, 0);
  for (int i = 0; i < kServices; ++i) {
    filters.push_back(workload.next_filter());
    ASSERT_TRUE(services[i].on(filters[i], [&hits, i](const scbr::Event&) {
                           ++hits[i];
                         }).ok());
  }

  std::vector<int> expected(kServices, 0);
  for (int round = 0; round < 60; ++round) {
    const scbr::Event event = workload.next_event();
    for (int i = 0; i < kServices; ++i) {
      if (filters[i].matches(event)) ++expected[i];
    }
    ASSERT_TRUE(publisher.emit(event).ok());
  }
  bus.drain();
  EXPECT_EQ(hits, expected);
}

// ------------------------------------------------------------ Delivery faults
//
// Regression: drain() used to `continue` silently past deliveries whose
// subscriber had detached or whose wire failed to decrypt. Both paths now
// count in the bus stats and end in the dead-letter queue.

TEST(EventBus, TamperedDeliveryCountedAndDeadLettered) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  common::FaultInjector injector(7);
  injector.arm(common::FaultKind::kCorruptMessage, 1.0);
  bus.set_fault_injector(&injector);
  bus.set_max_delivery_attempts(2);
  auto* sensor = bus.attach("sensor");
  auto* alarm = bus.attach("alarm");
  ASSERT_TRUE(bus.start().ok());

  std::size_t invoked = 0;
  ASSERT_TRUE(bus.subscribe(*alarm, temp_above(30),
                            [&](const Event&) { ++invoked; }).ok());
  Event hot;
  hot.set("temp", std::int64_t{42});
  ASSERT_TRUE(bus.publish(*sensor, hot).ok());
  bus.drain();

  EXPECT_EQ(invoked, 0u);
  EXPECT_EQ(bus.delivered(), 0u);
  EXPECT_EQ(bus.stats().tampered, 2u);       // once per attempt — never silent
  EXPECT_EQ(bus.stats().redeliveries, 1u);
  ASSERT_EQ(bus.dead_letters().size(), 1u);
  EXPECT_EQ(bus.dead_letters().front().reason.code, ErrorCode::kIntegrityViolation);
}

TEST(EventBus, DetachedSubscriberDeliveryCountedAndDeadLettered) {
  BusFixture fx;
  EventBus bus(*fx.enclave, fx.keys);
  auto* sensor = bus.attach("sensor");
  auto* alarm = bus.attach("alarm");
  ASSERT_TRUE(bus.start().ok());
  ASSERT_TRUE(bus.subscribe(*alarm, temp_above(30), [](const Event&) {}).ok());

  Event hot;
  hot.set("temp", std::int64_t{42});
  ASSERT_TRUE(bus.publish(*sensor, hot).ok());
  ASSERT_TRUE(bus.detach("alarm").ok());
  EXPECT_FALSE(bus.detach("alarm").ok());  // already gone
  bus.drain();

  EXPECT_EQ(bus.delivered(), 0u);
  EXPECT_EQ(bus.stats().detached_drops, 1u);
  ASSERT_EQ(bus.dead_letters().size(), 1u);
  EXPECT_EQ(bus.dead_letters().front().reason.code, ErrorCode::kNotFound);
  EXPECT_EQ(bus.dead_letters().front().subscriber, "alarm");
}

}  // namespace
}  // namespace securecloud::microservice
