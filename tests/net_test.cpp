// Cluster fabric tests: deterministic event ordering, link modelling,
// fault behaviour, attested sessions, reliable flows, and the headline
// acceptance property — a distributed MapReduce job over a lossy,
// reordering, partitioning network is bit-identical (output, JobStats,
// and every obs counter) for a fixed fault seed at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>

#include "bigdata/distributed_mapreduce.hpp"
#include "bigdata/flow.hpp"
#include "bigdata/mapreduce.hpp"
#include "common/fault_injector.hpp"
#include "common/thread_pool.hpp"
#include "net/fabric.hpp"
#include "net/session.hpp"
#include "obs/registry.hpp"
#include "scbr/overlay.hpp"

namespace securecloud {
namespace {

using common::FaultArm;
using common::FaultInjector;
using common::FaultKind;

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

Bytes patterned(std::size_t n, std::uint8_t seed) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return out;
}

// ------------------------------------------------------------------ Fabric

TEST(Fabric, DeliversWithLatencyAndSerializationDelay) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  net::LinkConfig link;
  link.latency_ns = 1000;
  link.bandwidth_bytes_per_sec = 1'000'000'000;  // 1 byte per ns
  ASSERT_TRUE(fabric.connect(a, b, link).ok());

  std::vector<std::pair<std::uint64_t, Bytes>> got;
  ASSERT_TRUE(fabric
                  .set_handler(b, 7,
                               [&](const net::Message& m) {
                                 got.emplace_back(fabric.now_ns(), m.payload);
                                 EXPECT_EQ(m.src, a);
                                 EXPECT_EQ(m.dst, b);
                                 EXPECT_EQ(m.channel, 7u);
                               })
                  .ok());

  const Bytes payload = patterned(500, 1);
  ASSERT_TRUE(fabric.send(a, b, 7, payload).ok());
  fabric.run_until_idle();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 1500u);  // latency 1000 + 500 bytes at 1 B/ns
  EXPECT_EQ(got[0].second, payload);
  EXPECT_EQ(fabric.stats().messages_sent, 1u);
  EXPECT_EQ(fabric.stats().messages_delivered, 1u);
  EXPECT_EQ(fabric.stats().frames_sent, 1u);
  EXPECT_EQ(fabric.stats().bytes_sent, 500u);
  EXPECT_EQ(fabric.stats().bytes_delivered, 500u);
  // Simulated time landed in the shared clock.
  EXPECT_GE(clock.cycles(), 1u);
}

TEST(Fabric, SimultaneousDeliveriesKeepSendOrder) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());

  std::vector<char> order;
  ASSERT_TRUE(fabric
                  .set_handler(b, 1,
                               [&](const net::Message& m) {
                                 order.push_back(static_cast<char>(m.payload[0]));
                               })
                  .ok());
  // Equal sizes on separate back-to-back sends: identical delivery times;
  // the enqueue sequence must break the tie in send order.
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("A")).ok());
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("B")).ok());
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("C")).ok());
  fabric.run_until_idle();
  EXPECT_EQ((std::vector<char>{'A', 'B', 'C'}), order);
}

TEST(Fabric, RejectsBadTopologyAndUnroutableSends) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  const net::NodeId c = fabric.add_node("c");

  EXPECT_FALSE(fabric.connect(a, 99).ok());
  EXPECT_FALSE(fabric.connect(a, a).ok());
  ASSERT_TRUE(fabric.connect(a, b).ok());
  EXPECT_FALSE(fabric.connect(b, a).ok());  // duplicate (normalized) link

  EXPECT_FALSE(fabric.send(a, 99, 1, bytes_of("x")).ok());  // unknown node
  EXPECT_FALSE(fabric.send(a, c, 1, bytes_of("x")).ok());   // no link
  EXPECT_FALSE(fabric.set_handler(99, 1, [](const net::Message&) {}).ok());
  EXPECT_FALSE(fabric.set_partitioned(a, c, true).ok());
}

TEST(Fabric, FragmentsAndReassemblesAboveMtu) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  net::LinkConfig link;
  link.mtu_bytes = 100;
  ASSERT_TRUE(fabric.connect(a, b, link).ok());

  Bytes got;
  ASSERT_TRUE(
      fabric.set_handler(b, 2, [&](const net::Message& m) { got = m.payload; })
          .ok());
  const Bytes payload = patterned(250, 3);
  ASSERT_TRUE(fabric.send(a, b, 2, payload).ok());
  fabric.run_until_idle();

  EXPECT_EQ(got, payload);
  EXPECT_EQ(fabric.stats().frames_sent, 3u);  // 100 + 100 + 50
  EXPECT_EQ(fabric.stats().messages_delivered, 1u);
}

TEST(Fabric, LoopbackNeedsNoLink) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  int delivered = 0;
  ASSERT_TRUE(
      fabric.set_handler(a, 5, [&](const net::Message&) { ++delivered; }).ok());
  ASSERT_TRUE(fabric.send(a, a, 5, bytes_of("self")).ok());
  fabric.run_until_idle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(fabric.now_ns(), 0u);  // loopback is free
}

TEST(Fabric, TimersShareTheEventQueueOrder) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  net::LinkConfig link;
  link.latency_ns = 1000;
  ASSERT_TRUE(fabric.connect(a, b, link).ok());

  std::vector<std::string> order;
  ASSERT_TRUE(fabric
                  .set_handler(b, 1,
                               [&](const net::Message&) { order.push_back("msg"); })
                  .ok());
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("m")).ok());  // arrives ~1000
  fabric.schedule(100, [&] { order.push_back("t100"); });
  fabric.schedule(50, [&] { order.push_back("t50"); });
  fabric.run_until_idle();

  EXPECT_EQ((std::vector<std::string>{"t50", "t100", "msg"}), order);
  EXPECT_EQ(fabric.stats().timers_fired, 2u);
}

TEST(Fabric, PartitionDropsUntilHealed) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());
  int delivered = 0;
  ASSERT_TRUE(
      fabric.set_handler(b, 1, [&](const net::Message&) { ++delivered; }).ok());

  ASSERT_TRUE(fabric.set_partitioned(a, b, true).ok());
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("lost")).ok());
  fabric.run_until_idle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(fabric.stats().messages_dropped, 1u);

  ASSERT_TRUE(fabric.set_partitioned(a, b, false).ok());
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("ok")).ok());
  fabric.run_until_idle();
  EXPECT_EQ(delivered, 1);
}

TEST(Fabric, NetLossKillsTheWholeMessage) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(7, &clock);
  fabric.set_fault_injector(&faults);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  net::LinkConfig link;
  link.mtu_bytes = 100;
  ASSERT_TRUE(fabric.connect(a, b, link).ok());
  int delivered = 0;
  ASSERT_TRUE(
      fabric.set_handler(b, 1, [&](const net::Message&) { ++delivered; }).ok());

  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(fabric.send(a, b, 1, patterned(250, 9)).ok());  // 3 frames
  fabric.run_until_idle();
  EXPECT_EQ(delivered, 0);  // one lost fragment loses the message
  EXPECT_EQ(fabric.stats().frames_dropped, 1u);
  EXPECT_EQ(fabric.stats().messages_dropped, 1u);

  ASSERT_TRUE(fabric.send(a, b, 1, patterned(250, 9)).ok());  // fires spent
  fabric.run_until_idle();
  EXPECT_EQ(delivered, 1);
}

TEST(Fabric, NetDuplicateDeliversExactlyOnce) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(7, &clock);
  fabric.set_fault_injector(&faults);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());
  int delivered = 0;
  ASSERT_TRUE(
      fabric.set_handler(b, 1, [&](const net::Message&) { ++delivered; }).ok());

  faults.arm(FaultKind::kNetDuplicate,
             FaultArm{.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("once")).ok());
  fabric.run_until_idle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(fabric.stats().frames_duplicated, 1u);
}

TEST(Fabric, NetReorderDelaysAFrame) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(7, &clock);
  fabric.set_fault_injector(&faults);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());
  std::vector<char> order;
  ASSERT_TRUE(fabric
                  .set_handler(b, 1,
                               [&](const net::Message& m) {
                                 order.push_back(static_cast<char>(m.payload[0]));
                               })
                  .ok());

  faults.arm(FaultKind::kNetReorder, FaultArm{.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("A")).ok());  // reordered: +2x latency
  ASSERT_TRUE(fabric.send(a, b, 1, bytes_of("B")).ok());
  fabric.run_until_idle();
  EXPECT_EQ((std::vector<char>{'B', 'A'}), order);
  EXPECT_EQ(fabric.stats().frames_reordered, 1u);
}

TEST(Fabric, UnhandledMessagesAreCounted) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());
  ASSERT_TRUE(fabric.send(a, b, 42, bytes_of("nobody home")).ok());
  fabric.run_until_idle();
  EXPECT_EQ(fabric.stats().messages_unhandled, 1u);
}

// One chaotic scenario: same seed => same delivery log, stats, counters.
TEST(Fabric, FaultScheduleIsReproducible) {
  auto run = [](std::uint64_t seed) {
    SimClock clock;
    net::Fabric fabric(clock);
    FaultInjector faults(seed, &clock);
    fabric.set_fault_injector(&faults);
    obs::Registry registry;
    fabric.set_obs(&registry);
    const net::NodeId a = fabric.add_node("a");
    const net::NodeId b = fabric.add_node("b");
    net::LinkConfig link;
    link.mtu_bytes = 64;
    EXPECT_TRUE(fabric.connect(a, b, link).ok());

    std::ostringstream log;
    EXPECT_TRUE(fabric
                    .set_handler(b, 1,
                                 [&](const net::Message& m) {
                                   log << fabric.now_ns() << ':'
                                       << static_cast<int>(m.payload[0]) << ';';
                                 })
                    .ok());
    faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.3});
    faults.arm(FaultKind::kNetDuplicate, FaultArm{.probability = 0.3});
    faults.arm(FaultKind::kNetReorder, FaultArm{.probability = 0.3});
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(
          fabric.send(a, b, 1, patterned(32 + (i % 5) * 60, static_cast<std::uint8_t>(i)))
              .ok());
    }
    fabric.run_until_idle();
    log << "|stats:" << fabric.stats().messages_delivered << ','
        << fabric.stats().frames_dropped << ',' << fabric.stats().frames_duplicated
        << ',' << fabric.stats().frames_reordered;
    return std::make_pair(log.str(), registry.to_json());
  };

  const auto first = run(0xFEED);
  const auto second = run(0xFEED);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// --------------------------------------------------------- AttestedSession

struct SessionRig {
  SimClock clock;
  net::Fabric fabric{clock};
  sgx::AttestationService service;
  std::unique_ptr<sgx::Platform> platform_a;
  std::unique_ptr<sgx::Platform> platform_b;
  sgx::Enclave* enclave_a = nullptr;
  sgx::Enclave* enclave_b = nullptr;
  net::NodeId a = 0;
  net::NodeId b = 0;

  SessionRig() {
    a = fabric.add_node("a");
    b = fabric.add_node("b");
    EXPECT_TRUE(fabric.connect(a, b).ok());
    sgx::PlatformConfig ca;
    ca.platform_id = "platform-a";
    ca.entropy_seed = 11;
    sgx::PlatformConfig cb;
    cb.platform_id = "platform-b";
    cb.entropy_seed = 22;
    platform_a = std::make_unique<sgx::Platform>(ca);
    platform_b = std::make_unique<sgx::Platform>(cb);
    const sgx::EnclaveImage image = bigdata::mapreduce_worker_image();
    enclave_a = platform_a->create_enclave(image).value();
    enclave_b = platform_b->create_enclave(image).value();
  }

  net::AttestedSession::Config config(net::NodeId self, net::NodeId peer,
                                      sgx::Platform& platform,
                                      sgx::Enclave* enclave) {
    net::AttestedSession::Config c;
    c.fabric = &fabric;
    c.self = self;
    c.peer = peer;
    c.enclave = enclave;
    c.platform = &platform;
    c.attestation = &service;
    return c;
  }
};

TEST(AttestedSession, EstablishesAndExchangesRecords) {
  SessionRig rig;
  rig.platform_a->provision(rig.service);
  rig.platform_b->provision(rig.service);
  obs::Registry registry;

  net::AttestedSession responder(
      net::AttestedSession::Role::kResponder,
      rig.config(rig.b, rig.a, *rig.platform_b, rig.enclave_b));
  net::AttestedSession initiator(
      net::AttestedSession::Role::kInitiator,
      rig.config(rig.a, rig.b, *rig.platform_a, rig.enclave_a));
  responder.set_obs(&registry);
  initiator.set_obs(&registry);
  ASSERT_TRUE(responder.bind().ok());
  ASSERT_TRUE(initiator.bind().ok());

  // Records are queued only after establishment.
  EXPECT_EQ(initiator.send(bytes_of("early")).error().code,
            ErrorCode::kUnavailable);

  ASSERT_TRUE(initiator.start().ok());
  rig.fabric.run_until_idle();

  ASSERT_TRUE(initiator.established()) << initiator.failure().error().message;
  ASSERT_TRUE(responder.established()) << responder.failure().error().message;
  EXPECT_EQ(initiator.transcript_hash(), responder.transcript_hash());

  Bytes at_responder, at_initiator;
  responder.set_on_record([&](Bytes p) { at_responder = std::move(p); });
  initiator.set_on_record([&](Bytes p) { at_initiator = std::move(p); });
  ASSERT_TRUE(initiator.send(bytes_of("ping")).ok());
  ASSERT_TRUE(responder.send(bytes_of("pong")).ok());
  rig.fabric.run_until_idle();
  EXPECT_EQ(at_responder, bytes_of("ping"));
  EXPECT_EQ(at_initiator, bytes_of("pong"));
}

TEST(AttestedSession, UnknownPlatformFailsAttestation) {
  SessionRig rig;
  rig.platform_a->provision(rig.service);  // responder's platform NOT provisioned

  net::AttestedSession responder(
      net::AttestedSession::Role::kResponder,
      rig.config(rig.b, rig.a, *rig.platform_b, rig.enclave_b));
  net::AttestedSession initiator(
      net::AttestedSession::Role::kInitiator,
      rig.config(rig.a, rig.b, *rig.platform_a, rig.enclave_a));
  ASSERT_TRUE(responder.bind().ok());
  ASSERT_TRUE(initiator.bind().ok());
  ASSERT_TRUE(initiator.start().ok());
  rig.fabric.run_until_idle();

  EXPECT_EQ(initiator.state(), net::AttestedSession::State::kFailed);
  EXPECT_EQ(initiator.failure().error().code, ErrorCode::kAttestationFailure);
  EXPECT_FALSE(responder.established());
}

TEST(AttestedSession, MrenclavePinRejectsWrongCodeIdentity) {
  SessionRig rig;
  rig.platform_a->provision(rig.service);
  rig.platform_b->provision(rig.service);

  auto initiator_config = rig.config(rig.a, rig.b, *rig.platform_a, rig.enclave_a);
  sgx::Measurement wrong{};
  wrong.fill(0x42);
  initiator_config.expected_peer_mrenclave = wrong;

  net::AttestedSession responder(
      net::AttestedSession::Role::kResponder,
      rig.config(rig.b, rig.a, *rig.platform_b, rig.enclave_b));
  net::AttestedSession initiator(net::AttestedSession::Role::kInitiator,
                                 initiator_config);
  ASSERT_TRUE(responder.bind().ok());
  ASSERT_TRUE(initiator.bind().ok());
  ASSERT_TRUE(initiator.start().ok());
  rig.fabric.run_until_idle();

  EXPECT_EQ(initiator.state(), net::AttestedSession::State::kFailed);
  EXPECT_EQ(initiator.failure().error().code, ErrorCode::kAttestationFailure);
}

// End-to-end regression for the contributory-behaviour check: a Hello
// carrying the all-zero X25519 point must fail the handshake (the
// shared secret would be all-zero — RFC 7748 §6.1), not establish a
// channel keyed on attacker-chosen zeros.
TEST(AttestedSession, RejectsAllZeroClientPublicKey) {
  SessionRig rig;
  rig.platform_a->provision(rig.service);
  rig.platform_b->provision(rig.service);

  net::AttestedSession responder(
      net::AttestedSession::Role::kResponder,
      rig.config(rig.b, rig.a, *rig.platform_b, rig.enclave_b));
  ASSERT_TRUE(responder.bind().ok());

  Bytes hello;
  put_u8(hello, 1);  // kHello
  put_blob(hello, Bytes(crypto::kX25519KeySize, 0x00));
  ASSERT_TRUE(rig.fabric.send(rig.a, rig.b, 1, std::move(hello)).ok());
  rig.fabric.run_until_idle();

  EXPECT_EQ(responder.state(), net::AttestedSession::State::kFailed);
  EXPECT_EQ(responder.failure().error().code, ErrorCode::kProtocolError);
}

TEST(AttestedSession, RetransmitSurvivesHandshakeLoss) {
  SessionRig rig;
  rig.platform_a->provision(rig.service);
  rig.platform_b->provision(rig.service);
  FaultInjector faults(5, &rig.clock);
  rig.fabric.set_fault_injector(&faults);
  obs::Registry registry;

  auto config_a = rig.config(rig.a, rig.b, *rig.platform_a, rig.enclave_a);
  auto config_b = rig.config(rig.b, rig.a, *rig.platform_b, rig.enclave_b);
  config_a.retry = {.retransmit_timeout_ns = 1'000'000, .max_retries = 8};
  config_b.retry = config_a.retry;
  net::AttestedSession responder(net::AttestedSession::Role::kResponder, config_b);
  net::AttestedSession initiator(net::AttestedSession::Role::kInitiator, config_a);
  responder.set_obs(&registry);
  initiator.set_obs(&registry);
  ASSERT_TRUE(responder.bind().ok());
  ASSERT_TRUE(initiator.bind().ok());

  // The first two frames on the wire are handshake frames, both lost.
  // Without the retransmit timer the handshake hangs silently forever.
  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 1.0, .max_fires = 2});
  ASSERT_TRUE(initiator.start().ok());
  rig.fabric.run_until_idle();

  ASSERT_TRUE(initiator.established()) << initiator.failure().error().message;
  ASSERT_TRUE(responder.established()) << responder.failure().error().message;
  EXPECT_GE(registry.counter("net_session_handshake_retransmits_total").value(), 2u);

  // The channel works despite the rocky start.
  Bytes at_responder;
  responder.set_on_record([&](Bytes p) { at_responder = std::move(p); });
  ASSERT_TRUE(initiator.send(bytes_of("after-loss")).ok());
  rig.fabric.run_until_idle();
  EXPECT_EQ(at_responder, bytes_of("after-loss"));
}

TEST(AttestedSession, RetransmitBudgetExhaustsAsTypedFailure) {
  SessionRig rig;
  rig.platform_a->provision(rig.service);
  rig.platform_b->provision(rig.service);

  auto config_a = rig.config(rig.a, rig.b, *rig.platform_a, rig.enclave_a);
  config_a.retry = {.retransmit_timeout_ns = 1'000'000, .max_retries = 3};
  net::AttestedSession responder(
      net::AttestedSession::Role::kResponder,
      rig.config(rig.b, rig.a, *rig.platform_b, rig.enclave_b));
  net::AttestedSession initiator(net::AttestedSession::Role::kInitiator, config_a);
  ASSERT_TRUE(responder.bind().ok());
  ASSERT_TRUE(initiator.bind().ok());

  Status seen_failure;
  initiator.set_on_failure([&](const Status& s) { seen_failure = s; });

  // Total blackout: every retransmit is swallowed. The budget must
  // exhaust into a *typed* failure with the fabric idle — not an
  // infinite retransmit storm, not a silent hang.
  ASSERT_TRUE(rig.fabric.set_partitioned(rig.a, rig.b, true).ok());
  ASSERT_TRUE(initiator.start().ok());
  rig.fabric.run_until_idle();

  EXPECT_EQ(initiator.state(), net::AttestedSession::State::kFailed);
  EXPECT_EQ(initiator.failure().error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(seen_failure.error().code, ErrorCode::kUnavailable);
  EXPECT_TRUE(rig.fabric.idle());
}

TEST(AttestedSession, RehandshakeRotatesKeysOnLiveChannel) {
  SessionRig rig;
  rig.platform_a->provision(rig.service);
  rig.platform_b->provision(rig.service);
  obs::Registry registry;

  net::AttestedSession responder(
      net::AttestedSession::Role::kResponder,
      rig.config(rig.b, rig.a, *rig.platform_b, rig.enclave_b));
  net::AttestedSession initiator(
      net::AttestedSession::Role::kInitiator,
      rig.config(rig.a, rig.b, *rig.platform_a, rig.enclave_a));
  responder.set_obs(&registry);
  initiator.set_obs(&registry);
  ASSERT_TRUE(responder.bind().ok());
  ASSERT_TRUE(initiator.bind().ok());
  ASSERT_TRUE(initiator.start().ok());
  rig.fabric.run_until_idle();
  ASSERT_TRUE(initiator.established());
  const auto old_transcript = initiator.transcript_hash();

  ASSERT_TRUE(initiator.rehandshake().ok());
  rig.fabric.run_until_idle();

  // Fresh ephemeral keys, fresh transcript — and both ends agree on it.
  ASSERT_TRUE(initiator.established()) << initiator.failure().error().message;
  ASSERT_TRUE(responder.established()) << responder.failure().error().message;
  EXPECT_NE(initiator.transcript_hash(), old_transcript);
  EXPECT_EQ(initiator.transcript_hash(), responder.transcript_hash());
  // Both ends share the registry: the initiator counts its rehandshake()
  // and the responder counts the rekey it performs on the fresh Hello.
  EXPECT_EQ(registry.counter("net_session_rehandshakes_total").value(), 2u);

  // Records flow under the rotated keys, both directions.
  Bytes at_responder, at_initiator;
  responder.set_on_record([&](Bytes p) { at_responder = std::move(p); });
  initiator.set_on_record([&](Bytes p) { at_initiator = std::move(p); });
  ASSERT_TRUE(initiator.send(bytes_of("rotated")).ok());
  ASSERT_TRUE(responder.send(bytes_of("indeed")).ok());
  rig.fabric.run_until_idle();
  EXPECT_EQ(at_responder, bytes_of("rotated"));
  EXPECT_EQ(at_initiator, bytes_of("indeed"));
}

// ---------------------------------------------------------------- FlowNode

TEST(Flow, RecoversEveryPayloadOverLossyLink) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(1234, &clock);
  fabric.set_fault_injector(&faults);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  net::LinkConfig link;
  link.latency_ns = 20'000;
  ASSERT_TRUE(fabric.connect(a, b, link).ok());

  const Bytes key(16, 0xAB);
  bigdata::FlowConfig fc;
  fc.chunk_size = 1024;
  bigdata::FlowNode sender(fabric, a, key, fc);
  bigdata::FlowNode receiver(fabric, b, key, fc);

  std::vector<Bytes> got;
  receiver.set_on_payload([&](net::NodeId from, Bytes p) {
    EXPECT_EQ(from, a);
    got.push_back(std::move(p));
  });

  // First four frames on the wire are chunk frames: guaranteed losses,
  // all of which NACK/retransmit recovery must repair.
  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 1.0, .max_fires = 4});

  const std::vector<Bytes> payloads = {patterned(5000, 1), patterned(3000, 2),
                                       patterned(4000, 3)};
  for (const Bytes& p : payloads) ASSERT_TRUE(sender.send(b, p).ok());
  fabric.run_until_idle();

  EXPECT_EQ(got, payloads);  // exact, in order, despite 4 lost chunks
  EXPECT_TRUE(sender.health().ok());
  EXPECT_TRUE(receiver.health().ok());
  EXPECT_TRUE(sender.settled());
  EXPECT_TRUE(receiver.settled());
  EXPECT_EQ(receiver.stats().payloads_delivered, 3u);
  EXPECT_GE(sender.stats().retransmits, 4u);
  EXPECT_GE(receiver.stats().nacks_sent, 4u);
}

TEST(Flow, AbandonedGapSurfacesAsTypedFailure) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(99, &clock);
  fabric.set_fault_injector(&faults);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());

  const Bytes key(16, 0xCD);
  bigdata::FlowConfig fc;
  fc.chunk_size = 512;
  fc.retransmit_buffer_chunks = 1;  // retransmit requests will miss
  fc.recovery.max_nacks_per_gap = 3;
  bigdata::FlowNode sender(fabric, a, key, fc);
  bigdata::FlowNode receiver(fabric, b, key, fc);
  std::vector<Bytes> got;
  receiver.set_on_payload([&](net::NodeId, Bytes p) { got.push_back(std::move(p)); });

  // Lose chunk 0; with a one-chunk retransmit buffer the sender cannot
  // repair it, so the receiver's NACK budget exhausts and the stream
  // dies as a *typed* failure — and, critically, the fabric still idles
  // (the kDead control stops the sender's beacons).
  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(sender.send(b, patterned(4096, 7)).ok());
  fabric.run_until_idle();

  EXPECT_TRUE(got.empty());
  ASSERT_FALSE(receiver.health().ok());
  EXPECT_EQ(receiver.health().error().code, ErrorCode::kUnavailable);
  ASSERT_FALSE(sender.health().ok());
  EXPECT_EQ(sender.health().error().code, ErrorCode::kUnavailable);
  EXPECT_TRUE(fabric.idle());
}

TEST(Flow, DepthGaugesTrackBacklogAndDrainToZero) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(42, &clock);
  fabric.set_fault_injector(&faults);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  net::LinkConfig link;
  link.latency_ns = 20'000;
  ASSERT_TRUE(fabric.connect(a, b, link).ok());

  const Bytes key(16, 0x5A);
  bigdata::FlowConfig fc;
  fc.chunk_size = 512;
  bigdata::FlowNode sender(fabric, a, key, fc);
  bigdata::FlowNode receiver(fabric, b, key, fc);
  obs::Registry sender_obs;
  sender.set_obs(&sender_obs);
  receiver.set_on_payload([](net::NodeId, Bytes) {});

  // Lose the first chunk: the other seven arrive out of order and must
  // sit in the receiver's reorder buffer until the NACK repairs the gap.
  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 1.0, .max_fires = 1});
  ASSERT_TRUE(sender.send(b, patterned(4096, 6)).ok());

  // send() put every chunk on the wire before any ack can exist, and
  // the aggregate, per-peer, and gauge views must agree on the depth.
  const std::uint64_t launched = sender.stats().chunks_in_flight;
  EXPECT_GE(launched, 8u);  // 4096 bytes over 512-byte chunks
  EXPECT_EQ(sender.peer_depth(b).in_flight, launched);
  EXPECT_EQ(sender_obs.gauge("net_flow_chunks_in_flight").value(),
            static_cast<std::int64_t>(launched));

  // Step the fabric one event at a time and watch the depths move: the
  // reorder buffer must visibly fill behind the gap, then fully drain.
  std::uint64_t max_queued = 0;
  while (fabric.run_until_idle(1) > 0) {
    max_queued = std::max(max_queued, receiver.stats().chunks_queued);
  }
  EXPECT_GE(max_queued, 7u);

  // Settled means empty: no chunk in flight, nothing buffered, mirrored
  // by the gauges and the per-peer view.
  EXPECT_TRUE(sender.settled());
  EXPECT_EQ(sender.stats().chunks_in_flight, 0u);
  EXPECT_EQ(receiver.stats().chunks_queued, 0u);
  EXPECT_EQ(sender.peer_depth(b), (bigdata::FlowDepth{}));
  EXPECT_EQ(receiver.peer_depth(a), (bigdata::FlowDepth{}));
  EXPECT_EQ(sender_obs.gauge("net_flow_chunks_in_flight").value(), 0);
  EXPECT_EQ(receiver.stats().payloads_delivered, 1u);
}

TEST(Flow, QuiesceStopsCountersAndNotifiesPeers) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());

  const Bytes key(16, 0x77);
  bigdata::FlowNode sender(fabric, a, key);
  bigdata::FlowNode receiver(fabric, b, key);
  receiver.set_on_payload([](net::NodeId, Bytes) {});
  ASSERT_TRUE(sender.send(b, patterned(2000, 3)).ok());
  fabric.run_until_idle();
  ASSERT_EQ(receiver.stats().payloads_delivered, 1u);

  // b's process dies: last-gasp kDead, then total silence.
  net::NodeId pronounced_dead = 0;
  sender.set_on_peer_dead([&](net::NodeId peer) { pronounced_dead = peer; });
  const bigdata::FlowStats frozen = receiver.stats();
  receiver.quiesce();
  EXPECT_TRUE(receiver.quiesced());
  fabric.run_until_idle();

  // The kDead reached a: peer declared dead exactly once, sends fail typed.
  EXPECT_EQ(pronounced_dead, b);
  EXPECT_EQ(sender.send(b, patterned(64, 1)).error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(sender.health().error().code, ErrorCode::kUnavailable);

  // Frames aimed at the dead node are not parsed and bump NOTHING — the
  // counter bit-identity guarantee for chaos runs.
  (void)fabric.send(a, b, bigdata::FlowConfig{}.chunk_channel, patterned(128, 9));
  (void)fabric.send(a, b, bigdata::FlowConfig{}.control_channel, patterned(9, 1));
  fabric.run_until_idle();
  EXPECT_EQ(receiver.stats(), frozen);
  EXPECT_TRUE(fabric.idle());

  // Abandoning the dead peer clears the sender's health.
  sender.abandon_peer(b);
  EXPECT_TRUE(sender.health().ok());
}

TEST(Flow, BeaconThresholdDetectsSilentPeer) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());

  const Bytes key(16, 0x31);
  bigdata::FlowConfig fc;
  fc.beacon_death_threshold = 3;
  bigdata::FlowNode sender(fabric, a, key, fc);
  // No flow endpoint on b at all: the peer is silently gone — no kDead
  // will ever arrive, only the beacon threshold can catch it.
  net::NodeId pronounced_dead = 0;
  sender.set_on_peer_dead([&](net::NodeId peer) { pronounced_dead = peer; });

  ASSERT_TRUE(sender.send(b, patterned(4096, 2)).ok());
  fabric.run_until_idle();  // must terminate: beacons are bounded

  EXPECT_EQ(pronounced_dead, b);
  ASSERT_FALSE(sender.health().ok());
  EXPECT_EQ(sender.health().error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(sender.stats().beacons_sent, 3u);
  EXPECT_TRUE(fabric.idle());
}

// --------------------------------------------- BrokerOverlay over the fabric

TEST(Overlay, HopsChargeSimulatedNetworkTime) {
  SimClock clock;
  net::Fabric fabric(clock);
  std::vector<net::NodeId> broker_node;
  for (int i = 0; i < 3; ++i) {
    broker_node.push_back(fabric.add_node("broker-" + std::to_string(i)));
  }
  net::LinkConfig link;
  link.latency_ns = 50'000;
  ASSERT_TRUE(fabric.connect(broker_node[0], broker_node[1], link).ok());
  ASSERT_TRUE(fabric.connect(broker_node[1], broker_node[2], link).ok());
  for (net::NodeId n : broker_node) {
    ASSERT_TRUE(fabric.set_handler(n, 9, [](const net::Message&) {}).ok());
  }

  scbr::BrokerOverlay overlay(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(overlay.topology().ok());
  overlay.set_hop_transport([&](scbr::BrokerId from, scbr::BrokerId to,
                                std::size_t bytes) {
    ASSERT_TRUE(
        fabric.send(broker_node[from], broker_node[to], 9, Bytes(bytes, 0)).ok());
  });

  scbr::Filter hot;
  hot.where("temp", scbr::Op::kGe, scbr::Value::of(std::int64_t{30}));
  ASSERT_TRUE(overlay.subscribe(2, 7, hot).ok());  // propagates 2->1->0

  scbr::Event event;
  event.set("temp", std::int64_t{35});
  auto matches = overlay.publish(0, event);  // routes 0->1->2
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0], 7u);

  fabric.run_until_idle();
  // Every overlay link crossing became exactly one fabric message...
  EXPECT_EQ(fabric.stats().messages_sent,
            overlay.stats().subscriptions_forwarded + overlay.stats().publication_hops);
  EXPECT_EQ(fabric.stats().messages_delivered, fabric.stats().messages_sent);
  // ...and the hops charged real simulated time into the shared clock.
  EXPECT_GE(fabric.now_ns(), link.latency_ns);
  EXPECT_GT(clock.cycles(), 0u);
}

// ------------------------------------------------- Distributed MapReduce

std::vector<std::vector<Bytes>> word_partitions() {
  const std::vector<std::vector<std::string>> raw = {
      {"the quick brown fox", "jumps over the lazy dog"},
      {"secure map reduce in the untrusted cloud", "the cloud is untrusted"},
      {"attest then trust", "trust but verify", "verify the quote"},
      {"shuffle the encrypted blocks", "reduce the shuffled blocks"},
      {"latency bandwidth and loss", "loss duplication and reorder"},
      {"the fabric is deterministic", "the schedule is a pure function"},
      {"seeds make chaos reproducible", "the same seed the same run"},
      {"counters must match bit for bit", "or the test fails"},
  };
  std::vector<std::vector<Bytes>> partitions;
  for (const auto& lines : raw) {
    std::vector<Bytes> records;
    for (const std::string& line : lines) records.push_back(bytes_of(line));
    partitions.push_back(std::move(records));
  }
  return partitions;
}

std::map<std::string, double> expected_word_counts() {
  std::map<std::string, double> expect;
  for (const auto& partition : word_partitions()) {
    for (const Bytes& record : partition) {
      std::istringstream in(std::string(record.begin(), record.end()));
      std::string word;
      while (in >> word) expect[word] += 1.0;
    }
  }
  return expect;
}

bigdata::SecureMapReduce::MapFn word_count_map() {
  return [](ByteView record) {
    std::vector<bigdata::KeyValue> out;
    std::istringstream in(std::string(record.begin(), record.end()));
    std::string word;
    while (in >> word) out.push_back({word, 1.0});
    return out;
  };
}

bigdata::SecureMapReduce::ReduceFn sum_reduce() {
  return [](const std::string&, const std::vector<double>& values) {
    double total = 0;
    for (double v : values) total += v;
    return total;
  };
}

struct DistRun {
  bigdata::JobResult result;
  std::string obs_json;
  std::uint64_t fabric_now_ns = 0;
};

DistRun run_distributed_job(std::uint64_t seed, std::size_t threads,
                            bool with_faults) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(seed, &clock);
  obs::Registry registry;
  obs::Tracer tracer(clock);  // spans are wall-time-stamped: kept out of
                              // the determinism comparison by design
  fabric.set_obs(&registry, &tracer);
  sgx::AttestationService service;

  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 4;
  config.num_reducers = 5;
  config.enable_combiner = true;
  bigdata::DistributedMapReduce driver(fabric, config);
  driver.set_obs(&registry, &tracer);

  Status setup = driver.setup(service);
  EXPECT_TRUE(setup.ok()) << (setup.ok() ? "" : setup.error().message);

  // Arm chaos only after setup: handshakes are the setup phase; data
  // flows carry the recovery machinery.
  fabric.set_fault_injector(&faults);
  if (with_faults) {
    faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.3, .max_fires = 25});
    faults.arm(FaultKind::kNetReorder,
               FaultArm{.probability = 0.2, .max_fires = 15});
    faults.arm(FaultKind::kNetPartition,
               FaultArm{.probability = 0.05, .max_fires = 4});
  }

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }

  common::ThreadPool pool(threads);
  driver.set_pool(threads <= 1 ? nullptr : &pool);

  auto result = driver.run(encrypted, word_count_map(), sum_reduce());
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  DistRun out;
  if (result.ok()) out.result = std::move(*result);
  out.obs_json = registry.to_json();
  out.fabric_now_ns = fabric.now_ns();
  return out;
}

TEST(DistributedMapReduce, ComputesWordCountAcrossTheCluster) {
  const DistRun run = run_distributed_job(0xC0FFEE, 1, /*with_faults=*/false);
  EXPECT_EQ(run.result.output, expected_word_counts());
  EXPECT_EQ(run.result.stats.input_records, 17u);
  EXPECT_GT(run.result.stats.intermediate_pairs, 0u);
  EXPECT_GT(run.result.stats.shuffle_bytes, 0u);
  EXPECT_GT(run.result.stats.enclave_transitions, 0u);
  EXPECT_GT(run.result.stats.simulated_cycles, 0u);  // network time charged
  EXPECT_GT(run.fabric_now_ns, 0u);
}

TEST(DistributedMapReduce, BackToBackJobsStayCorrect) {
  // Same driver, two epochs: shuffle/result nonces must not collide.
  SimClock clock;
  net::Fabric fabric(clock);
  sgx::AttestationService service;
  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 4;
  bigdata::DistributedMapReduce driver(fabric, config);
  ASSERT_TRUE(driver.setup(service).ok());

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }
  auto first = driver.run(encrypted, word_count_map(), sum_reduce());
  ASSERT_TRUE(first.ok()) << first.error().message;
  auto second = driver.run(encrypted, word_count_map(), sum_reduce());
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(first->output, expected_word_counts());
  EXPECT_EQ(first->output, second->output);
}

// THE acceptance property: with loss, reorder, AND partition faults
// armed, the distributed job over a 5-node cluster produces
// bit-identical output, JobStats, and obs counters for a fixed seed —
// at 1 thread vs 8 threads, and across repeated runs — and that output
// equals the fault-free result (faults recover, never diverge).
TEST(DistributedMapReduce, DeterministicUnderFaultsAtAnyThreadCount) {
  const std::uint64_t seed = 42;
  const DistRun serial = run_distributed_job(seed, 1, /*with_faults=*/true);
  const DistRun pooled = run_distributed_job(seed, 8, /*with_faults=*/true);
  const DistRun repeat = run_distributed_job(seed, 1, /*with_faults=*/true);
  const DistRun clean = run_distributed_job(seed, 1, /*with_faults=*/false);

  // Output: correct, and bit-identical across thread counts and runs.
  EXPECT_EQ(serial.result.output, expected_word_counts());
  EXPECT_EQ(serial.result.output, pooled.result.output);
  EXPECT_EQ(serial.result.output, repeat.result.output);
  EXPECT_EQ(serial.result.output, clean.result.output);

  // JobStats: every field identical.
  EXPECT_EQ(serial.result.stats.input_records, pooled.result.stats.input_records);
  EXPECT_EQ(serial.result.stats.intermediate_pairs,
            pooled.result.stats.intermediate_pairs);
  EXPECT_EQ(serial.result.stats.shuffle_bytes, pooled.result.stats.shuffle_bytes);
  EXPECT_EQ(serial.result.stats.enclave_transitions,
            pooled.result.stats.enclave_transitions);
  EXPECT_EQ(serial.result.stats.simulated_cycles,
            pooled.result.stats.simulated_cycles);

  // The whole observability surface — net_*, net_flow_*, transfer_*,
  // net_session_*, dist_mapreduce_* — byte-for-byte.
  EXPECT_EQ(serial.obs_json, pooled.obs_json);
  EXPECT_EQ(serial.obs_json, repeat.obs_json);
  EXPECT_EQ(serial.fabric_now_ns, pooled.fabric_now_ns);

  // Sanity: chaos actually happened in the faulted runs (they took
  // longer in simulated time than the clean run) yet converged.
  EXPECT_GT(serial.fabric_now_ns, clean.fabric_now_ns);
}

// ------------------------------------------------------ FabricConcurrency
// Memory-safety hammers for scripts/tsan_check.sh: concurrent send()
// while another thread drains. (Schedule determinism is NOT claimed for
// concurrent producers — see the fabric header contract.)

TEST(FabricConcurrency, ParallelSendersAreRaceFree) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());

  std::atomic<std::uint64_t> received{0};
  ASSERT_TRUE(fabric
                  .set_handler(b, 1,
                               [&](const net::Message&) {
                                 received.fetch_add(1, std::memory_order_relaxed);
                               })
                  .ok());

  constexpr int kSenders = 4;
  constexpr int kPerSender = 200;
  std::atomic<bool> done{false};
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      fabric.run_until_idle();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&, t] {
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(
            fabric.send(a, b, 1, patterned(64, static_cast<std::uint8_t>(t))).ok());
      }
    });
  }
  for (auto& s : senders) s.join();
  done.store(true, std::memory_order_release);
  drainer.join();
  fabric.run_until_idle();  // drain the tail

  const auto total = static_cast<std::uint64_t>(kSenders) * kPerSender;
  EXPECT_EQ(fabric.stats().messages_sent, total);
  EXPECT_EQ(fabric.stats().messages_delivered, total);
  EXPECT_EQ(received.load(), total);
}

TEST(FabricConcurrency, ConcurrentTimersAndSendsConserveEvents) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());
  std::atomic<std::uint64_t> fired{0};
  std::atomic<std::uint64_t> received{0};
  ASSERT_TRUE(fabric
                  .set_handler(b, 1,
                               [&](const net::Message&) {
                                 received.fetch_add(1, std::memory_order_relaxed);
                               })
                  .ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        fabric.schedule(static_cast<std::uint64_t>(i + 1) * 10, [&] {
          fired.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_TRUE(fabric.send(a, b, 1, patterned(16, 5)).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  fabric.run_until_idle();

  const auto each = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(fired.load(), each);
  EXPECT_EQ(received.load(), each);
  EXPECT_EQ(fabric.stats().timers_fired, each);
  EXPECT_TRUE(fabric.idle());
}

// ------------------------------------------- distributed tracing (obs v2)

TEST(Fabric, TraceContextRidesFrameEnvelope) {
  SimClock clock;
  net::Fabric fabric(clock);
  fabric.enable_delivery_log();
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());

  const obs::TraceContext ctx{0xABCDull, 0x1234ull};
  std::vector<obs::TraceContext> seen;
  ASSERT_TRUE(fabric
                  .set_handler(b, 3,
                               [&](const net::Message& m) { seen.push_back(m.trace); })
                  .ok());
  ASSERT_TRUE(fabric.send(a, b, 3, patterned(100, 1), ctx).ok());
  ASSERT_TRUE(fabric.send(a, b, 3, patterned(100, 2)).ok());  // untraced
  fabric.run_until_idle();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], ctx);
  EXPECT_FALSE(seen[1].valid());

  const auto& log = fabric.deliveries();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].src, a);
  EXPECT_EQ(log[0].dst, b);
  EXPECT_EQ(log[0].channel, 3u);
  EXPECT_EQ(log[0].bytes, 100u);
  EXPECT_EQ(log[0].trace_id, ctx.trace_id);
  EXPECT_GT(log[0].deliver_cycles, log[0].send_cycles);
  EXPECT_EQ(log[1].trace_id, 0u);  // untraced message logs trace 0
}

TEST(Fabric, ComputeSkewScalesNodeCompute) {
  SimClock clock;
  net::Fabric fabric(clock);
  const net::NodeId fast = fabric.add_node("fast");
  const net::NodeId slow = fabric.add_node("slow");
  const net::NodeId half = fabric.add_node("half");

  EXPECT_EQ(fabric.scaled_compute_ns(fast, 1000), 1000u);  // identity default
  ASSERT_TRUE(fabric.set_compute_skew(slow, 4).ok());
  ASSERT_TRUE(fabric.set_compute_skew(half, 3, 2).ok());
  EXPECT_EQ(fabric.scaled_compute_ns(slow, 1000), 4000u);
  EXPECT_EQ(fabric.scaled_compute_ns(half, 1000), 1500u);
  EXPECT_EQ(fabric.scaled_compute_ns(fast, 1000), 1000u);

  EXPECT_FALSE(fabric.set_compute_skew(99, 2).ok());      // unknown node
  EXPECT_FALSE(fabric.set_compute_skew(slow, 1, 0).ok());  // div by zero
}

TEST(Flow, TraceContextSurvivesChunkingAndLoss) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(777, &clock);
  fabric.set_fault_injector(&faults);
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  ASSERT_TRUE(fabric.connect(a, b).ok());

  const Bytes key(16, 0x5A);
  bigdata::FlowConfig fc;
  fc.chunk_size = 1024;
  bigdata::FlowNode sender(fabric, a, key, fc);
  bigdata::FlowNode receiver(fabric, b, key, fc);

  std::vector<obs::TraceContext> seen;
  receiver.set_on_payload_ctx(
      [&](net::NodeId, Bytes, obs::TraceContext ctx) { seen.push_back(ctx); });

  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.4, .max_fires = 6});
  const obs::TraceContext ctx{42, 43};
  ASSERT_TRUE(sender.send(b, patterned(10'000, 9), ctx).ok());
  fabric.run_until_idle();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], ctx);  // the context rode every chunk, loss repaired
  EXPECT_TRUE(sender.settled());
}

struct TracedRun {
  bigdata::JobResult result;
  std::string obs_v2;
  std::string trace_v2;
  std::string critical_path_json;
  std::string critical_path_text;
  std::string dominant_node;
};

/// Distributed word count in cluster-obs mode: per-node registries /
/// tracers / flight recorders, fabric delivery log, optional chaos and
/// an optional compute-skew straggler; returns the merged v2 exports
/// and the critical-path report.
TracedRun run_traced_job(std::uint64_t seed, std::size_t threads, bool with_faults,
                         std::size_t straggler_index, std::uint32_t straggler_skew) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(seed, &clock);
  sgx::AttestationService service;

  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 4;
  config.num_reducers = 5;
  config.enable_combiner = true;
  // Heavy per-record compute: the straggler's skewed map work must
  // dominate even the multi-millisecond retransmit-backoff stalls a
  // chaos run inserts (which the analyzer rightly charges to whichever
  // node sat waiting).
  config.map_compute_ns_per_record = 1'000'000;
  bigdata::DistributedMapReduce driver(fabric, config);
  driver.enable_cluster_obs();

  Status setup = driver.setup(service);
  EXPECT_TRUE(setup.ok()) << (setup.ok() ? "" : setup.error().message);
  fabric.enable_delivery_log();
  if (straggler_skew > 1) {
    EXPECT_TRUE(
        fabric.set_compute_skew(driver.worker_node(straggler_index), straggler_skew)
            .ok());
  }
  fabric.set_fault_injector(&faults);
  if (with_faults) {
    faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.3, .max_fires = 25});
    faults.arm(FaultKind::kNetReorder,
               FaultArm{.probability = 0.2, .max_fires = 15});
    faults.arm(FaultKind::kNetPartition,
               FaultArm{.probability = 0.05, .max_fires = 4});
  }

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }
  common::ThreadPool pool(threads);
  driver.set_pool(threads <= 1 ? nullptr : &pool);

  auto result = driver.run(encrypted, word_count_map(), sum_reduce());
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);

  TracedRun out;
  if (result.ok()) out.result = std::move(*result);

  auto snapshot = driver.collect_cluster_snapshot();
  EXPECT_TRUE(snapshot.ok()) << (snapshot.ok() ? "" : snapshot.error().message);
  if (!snapshot.ok()) return out;
  out.obs_v2 = snapshot->to_obs_json();
  out.trace_v2 = snapshot->to_trace_json();

  const std::vector<std::string> names = fabric.node_names();
  obs::CriticalPathOptions opts;
  opts.deliveries = &fabric.deliveries();
  opts.node_names = &names;
  auto report = obs::critical_path(*snapshot, opts);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().message);
  if (report.ok()) {
    out.critical_path_json = report->to_json();
    out.critical_path_text = report->to_text();
    out.dominant_node = report->dominant_node;
  }
  return out;
}

TEST(DistributedTrace, WorkerSpansParentToCoordinatorJobSpan) {
  const TracedRun run =
      run_traced_job(0xBEEF, 1, /*with_faults=*/false, 0, /*skew=*/1);
  EXPECT_EQ(run.result.output, expected_word_counts());
  // The merged trace carries node-labelled worker spans in the job trace.
  EXPECT_NE(run.trace_v2.find("\"schema\":\"securecloud.trace.v2\""),
            std::string::npos);
  EXPECT_NE(run.trace_v2.find("dist_mapreduce.job"), std::string::npos);
  EXPECT_NE(run.trace_v2.find("dist_mapreduce.map_task"), std::string::npos);
  EXPECT_NE(run.trace_v2.find("dist_mapreduce.reduce"), std::string::npos);
  EXPECT_NE(run.trace_v2.find("\"node\":\"worker-2\""), std::string::npos);
  EXPECT_NE(run.obs_v2.find("\"schema\":\"securecloud.obs.v2\""),
            std::string::npos);
  EXPECT_NE(run.obs_v2.find("\"coordinator\""), std::string::npos);
  // The critical path reaches into worker map compute.
  EXPECT_NE(run.critical_path_text.find("dist_mapreduce.map_task"),
            std::string::npos);
}

TEST(DistributedTrace, StragglerDominatesCriticalPath) {
  // Worker 2 computes 4x slower: the analyzer must name it as the
  // dominant node and route the path through its map task.
  const TracedRun run =
      run_traced_job(0xBEEF, 1, /*with_faults=*/false, 2, /*skew=*/4);
  EXPECT_EQ(run.result.output, expected_word_counts());
  EXPECT_EQ(run.dominant_node, "worker-2");
  EXPECT_NE(run.critical_path_text.find("worker-2/dist_mapreduce.map_task"),
            std::string::npos);
}

TEST(DistributedTrace, MergedExportsAreThreadCountInvariant) {
  // Chaos + straggler, 1 thread vs 8 threads vs a repeat: the merged
  // obs/trace exports and the critical-path report must be
  // byte-identical — every stamp comes from the serial fabric loop.
  const TracedRun one = run_traced_job(42, 1, /*with_faults=*/true, 1, 4);
  const TracedRun eight = run_traced_job(42, 8, /*with_faults=*/true, 1, 4);
  const TracedRun again = run_traced_job(42, 8, /*with_faults=*/true, 1, 4);

  EXPECT_EQ(one.result.output, expected_word_counts());
  EXPECT_EQ(one.dominant_node, "worker-1");  // named even under chaos
  EXPECT_EQ(one.obs_v2, eight.obs_v2);
  EXPECT_EQ(one.trace_v2, eight.trace_v2);
  EXPECT_EQ(one.critical_path_json, eight.critical_path_json);
  EXPECT_EQ(one.critical_path_text, eight.critical_path_text);
  EXPECT_EQ(eight.obs_v2, again.obs_v2);
  EXPECT_EQ(eight.trace_v2, again.trace_v2);
  EXPECT_EQ(eight.critical_path_json, again.critical_path_json);
  EXPECT_FALSE(one.trace_v2.empty());
}

std::string run_postmortem_job(std::size_t threads) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(99, &clock);
  sgx::AttestationService service;

  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 3;
  config.num_reducers = 3;
  // Small chunks (tasks span several) + one-chunk retransmit buffer +
  // tiny NACK budget: the first lost chunk is unrepairable, so the
  // stream dies as a typed failure and the fabric still idles (a total
  // blackout would beacon forever).
  config.flow.chunk_size = 256;
  config.flow.retransmit_buffer_chunks = 1;
  config.flow.recovery.max_nacks_per_gap = 3;
  // This test *wants* the typed failure: recovery would re-execute the
  // lost task and rescue the job.
  config.recovery.enabled = false;
  bigdata::DistributedMapReduce driver(fabric, config);
  driver.enable_cluster_obs();
  Status setup = driver.setup(service);
  EXPECT_TRUE(setup.ok()) << (setup.ok() ? "" : setup.error().message);

  // Mirror fault-injector decisions into the coordinator's flight
  // recorder so the postmortem shows *why* the stream died.
  faults.set_observer([&](const common::FaultEvent& ev) {
    driver.coordinator_obs()->flight.record(
        "fault", std::string(common::to_string(ev.kind)) + " op=" +
                     std::to_string(ev.op));
  });
  fabric.set_fault_injector(&faults);
  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 1.0, .max_fires = 1});

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }
  common::ThreadPool pool(threads);
  driver.set_pool(threads <= 1 ? nullptr : &pool);

  auto result = driver.run(encrypted, word_count_map(), sum_reduce());
  EXPECT_FALSE(result.ok());  // first map-task chunk was unrepairable
  EXPECT_TRUE(fabric.idle());
  return driver.last_postmortem();
}

TEST(DistributedTrace, PostmortemFlightDumpIsDeterministic) {
  const std::string one = run_postmortem_job(1);
  ASSERT_FALSE(one.empty());
  EXPECT_NE(one.find("\"schema\":\"securecloud.flight.v2\""), std::string::npos);
  EXPECT_NE(one.find("net-loss"), std::string::npos);  // observer-mirrored
  EXPECT_NE(one.find("dead_stream"), std::string::npos);  // flow's own event
  EXPECT_EQ(one, run_postmortem_job(4));
}

// ------------------------------------- worker-death recovery / speculation

struct ChaosRun {
  bool ok = false;
  std::string error;
  bigdata::JobResult result;
  std::string obs_v2;
  std::uint64_t worker_deaths = 0;
  std::uint64_t tasks_reexecuted = 0;
};

/// Word count in cluster-obs mode with loss+reorder armed and (optionally)
/// worker 1 killed at a fixed point of fabric time mid-job.
ChaosRun run_chaos_kill_job(std::uint64_t seed, std::size_t threads,
                            std::uint64_t kill_delay_ns, bool with_faults) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(seed, &clock);
  sgx::AttestationService service;

  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 4;
  config.num_reducers = 5;
  config.enable_combiner = true;
  // Stretch map and reduce across enough fabric time that the kill
  // delays below land mid-map / mid-shuffle deterministically.
  config.map_compute_ns_per_record = 500'000;
  config.reduce_compute_ns_per_pair = 50'000;
  bigdata::DistributedMapReduce driver(fabric, config);
  driver.enable_cluster_obs();
  Status setup = driver.setup(service);
  EXPECT_TRUE(setup.ok()) << (setup.ok() ? "" : setup.error().message);

  fabric.set_fault_injector(&faults);
  if (with_faults) {
    faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.3, .max_fires = 25});
    faults.arm(FaultKind::kNetReorder,
               FaultArm{.probability = 0.2, .max_fires = 15});
  }

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }
  common::ThreadPool pool(threads);
  driver.set_pool(threads <= 1 ? nullptr : &pool);
  if (kill_delay_ns > 0) driver.schedule_worker_kill(1, kill_delay_ns);

  auto result = driver.run(encrypted, word_count_map(), sum_reduce());
  ChaosRun out;
  out.ok = result.ok();
  if (result.ok()) {
    out.result = std::move(*result);
  } else {
    out.error = result.error().message;
  }
  out.worker_deaths = driver.coordinator_obs()
                          ->registry.counter("dist_mapreduce_worker_deaths_total")
                          .value();
  out.tasks_reexecuted =
      driver.coordinator_obs()
          ->registry.counter("dist_mapreduce_tasks_reexecuted_total")
          .value();
  auto snapshot = driver.collect_cluster_snapshot();
  EXPECT_TRUE(snapshot.ok()) << (snapshot.ok() ? "" : snapshot.error().message);
  if (snapshot.ok()) out.obs_v2 = snapshot->to_obs_json();
  return out;
}

void expect_chaos_runs_identical(const ChaosRun& a, const ChaosRun& b) {
  EXPECT_EQ(a.result.output, b.result.output);
  EXPECT_EQ(a.result.stats.input_records, b.result.stats.input_records);
  EXPECT_EQ(a.result.stats.intermediate_pairs, b.result.stats.intermediate_pairs);
  EXPECT_EQ(a.result.stats.shuffle_bytes, b.result.stats.shuffle_bytes);
  EXPECT_EQ(a.result.stats.enclave_transitions,
            b.result.stats.enclave_transitions);
  EXPECT_EQ(a.result.stats.simulated_cycles, b.result.stats.simulated_cycles);
  // Strongest form: the merged per-node obs v2 export (every counter on
  // every surviving node) byte-for-byte.
  EXPECT_EQ(a.obs_v2, b.obs_v2);
}

// Tentpole acceptance: a worker killed MID-MAP with loss+reorder armed.
// The job must still complete with output equal to the failure-free run,
// and the whole thing must be bit-identical at 1 vs 8 threads.
TEST(DistributedRecovery, KilledWorkerMidMapRecoversDeterministically) {
  const std::uint64_t seed = 0xD1E5;
  const std::uint64_t kill_ns = 1'500'000;  // inside worker 1's map compute
  const ChaosRun serial = run_chaos_kill_job(seed, 1, kill_ns, true);
  const ChaosRun pooled = run_chaos_kill_job(seed, 8, kill_ns, true);
  const ChaosRun clean = run_chaos_kill_job(seed, 1, /*kill=*/0, false);

  ASSERT_TRUE(serial.ok) << serial.error;
  ASSERT_TRUE(pooled.ok) << pooled.error;
  ASSERT_TRUE(clean.ok) << clean.error;

  // Recovery actually ran.
  EXPECT_GE(serial.worker_deaths, 1u);
  EXPECT_GE(serial.tasks_reexecuted, 1u);

  // Same output as if the worker had never died — epoch-baked nonces
  // make the re-executed task byte-identical, dedup keeps stats exact.
  EXPECT_EQ(serial.result.output, expected_word_counts());
  EXPECT_EQ(serial.result.output, clean.result.output);
  EXPECT_EQ(serial.result.stats.input_records, clean.result.stats.input_records);
  EXPECT_EQ(serial.result.stats.intermediate_pairs,
            clean.result.stats.intermediate_pairs);
  EXPECT_EQ(serial.result.stats.shuffle_bytes, clean.result.stats.shuffle_bytes);
  EXPECT_EQ(serial.result.stats.enclave_transitions,
            clean.result.stats.enclave_transitions);

  expect_chaos_runs_identical(serial, pooled);
}

// Same, but the worker dies MID-SHUFFLE: its map finished and reported,
// yet its produced blocks died with it, so its task re-executes anyway
// and its reduce bundle moves to a survivor.
TEST(DistributedRecovery, KilledWorkerMidShuffleRecoversDeterministically) {
  const std::uint64_t seed = 0x5AFE;
  const std::uint64_t kill_ns = 3'600'000;  // after map, inside the shuffle
  const ChaosRun serial = run_chaos_kill_job(seed, 1, kill_ns, true);
  const ChaosRun pooled = run_chaos_kill_job(seed, 8, kill_ns, true);
  const ChaosRun clean = run_chaos_kill_job(seed, 1, /*kill=*/0, false);

  ASSERT_TRUE(serial.ok) << serial.error;
  ASSERT_TRUE(pooled.ok) << pooled.error;
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_GE(serial.worker_deaths, 1u);
  EXPECT_EQ(serial.result.output, expected_word_counts());
  EXPECT_EQ(serial.result.output, clean.result.output);
  EXPECT_EQ(serial.result.stats.shuffle_bytes, clean.result.stats.shuffle_bytes);
  expect_chaos_runs_identical(serial, pooled);
}

TEST(DistributedRecovery, SetupHandshakesSurviveArmedLoss) {
  // Loss armed BEFORE setup: the handshake retransmit timers (wired by
  // RecoveryConfig) must repair the lost handshake frames; pre-PR this
  // hung the fabric or failed setup outright.
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(3, &clock);
  fabric.set_fault_injector(&faults);
  faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 1.0, .max_fires = 2});
  sgx::AttestationService service;

  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 3;
  config.num_reducers = 3;
  bigdata::DistributedMapReduce driver(fabric, config);
  ASSERT_TRUE(driver.setup(service).ok());

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }
  auto result = driver.run(encrypted, word_count_map(), sum_reduce());
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->output, expected_word_counts());
}

TEST(DistributedRecovery, IntegrityFailureAbortsAndQuiescesDeterministically) {
  // A tampered input record is an *attack*, not a crash: the victim
  // worker must abort the job (typed integrity error), NOT recover —
  // and its quiesced counters must leave the obs surface bit-identical
  // across thread counts.
  auto run_once = [](std::size_t threads) {
    SimClock clock;
    net::Fabric fabric(clock);
    sgx::AttestationService service;
    bigdata::DistributedMapReduceConfig config;
    config.num_workers = 3;
    config.num_reducers = 3;
    bigdata::DistributedMapReduce driver(fabric, config);
    driver.enable_cluster_obs();
    EXPECT_TRUE(driver.setup(service).ok());

    std::vector<std::vector<Bytes>> encrypted;
    for (const auto& partition : word_partitions()) {
      encrypted.push_back(driver.encrypt_partition(partition));
    }
    encrypted[0][0][8] ^= 0x01;  // integrity violation at worker 0

    common::ThreadPool pool(threads);
    driver.set_pool(threads <= 1 ? nullptr : &pool);
    auto result = driver.run(encrypted, word_count_map(), sum_reduce());
    EXPECT_FALSE(result.ok());
    std::string error = result.ok() ? "" : result.error().message;
    EXPECT_NE(error.find("worker 0"), std::string::npos) << error;
    auto snapshot = driver.collect_cluster_snapshot();
    EXPECT_TRUE(snapshot.ok());
    return std::make_pair(error, snapshot.ok() ? snapshot->to_obs_json() : "");
  };
  const auto serial = run_once(1);
  const auto pooled = run_once(8);
  ASSERT_FALSE(serial.second.empty());
  EXPECT_EQ(serial.first, pooled.first);
  EXPECT_EQ(serial.second, pooled.second);
}

TEST(DistributedRecovery, SpeculationShiftsCriticalPathOffStraggler) {
  // Without speculation the 4x-skewed worker 2 dominates the critical
  // path (StragglerDominatesCriticalPath above). With speculation on,
  // a copy of its map task launches on a healthy peer, the straggler's
  // execution is cancelled, and the analyzer must no longer name
  // worker-2 as dominant.
  SimClock clock;
  net::Fabric fabric(clock);
  sgx::AttestationService service;

  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 4;
  config.num_reducers = 5;
  config.enable_combiner = true;
  config.map_compute_ns_per_record = 1'000'000;
  // Slack low enough that the copy launches (and the straggler's span is
  // cancelled) well before the straggler would have finished; with 50%
  // slack the cancelled span alone still out-weighs a full healthy map.
  config.speculation.enabled = true;
  config.speculation.slack_percent = 10;
  bigdata::DistributedMapReduce driver(fabric, config);
  driver.enable_cluster_obs();
  ASSERT_TRUE(driver.setup(service).ok());
  fabric.enable_delivery_log();
  ASSERT_TRUE(fabric.set_compute_skew(driver.worker_node(2), 4).ok());

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }
  auto result = driver.run(encrypted, word_count_map(), sum_reduce());
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->output, expected_word_counts());

  auto& registry = driver.coordinator_obs()->registry;
  EXPECT_GE(registry.counter("dist_mapreduce_speculative_launched_total").value(),
            1u);
  EXPECT_GE(registry.counter("dist_mapreduce_speculative_wins_total").value(), 1u);

  auto snapshot = driver.collect_cluster_snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message;
  const std::vector<std::string> names = fabric.node_names();
  obs::CriticalPathOptions opts;
  opts.deliveries = &fabric.deliveries();
  opts.node_names = &names;
  auto report = obs::critical_path(*snapshot, opts);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_NE(report->dominant_node, "worker-2");
}

TEST(DistributedRecovery, AllWorkersDeadIsTypedUnavailable) {
  SimClock clock;
  net::Fabric fabric(clock);
  sgx::AttestationService service;
  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 2;
  config.num_reducers = 2;
  bigdata::DistributedMapReduce driver(fabric, config);
  ASSERT_TRUE(driver.setup(service).ok());

  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& partition : word_partitions()) {
    encrypted.push_back(driver.encrypt_partition(partition));
  }
  driver.schedule_worker_kill(0, 100'000);
  driver.schedule_worker_kill(1, 200'000);
  auto result = driver.run(encrypted, word_count_map(), sum_reduce());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
  EXPECT_TRUE(fabric.idle());
}

}  // namespace
}  // namespace securecloud
