// Observability layer tests: metric primitives, registry concurrency and
// export formats, span tracing, and the cross-subsystem determinism
// invariant (fixed seed + any thread count => bit-identical counters).
#include <gtest/gtest.h>

#include <memory>

#include "bigdata/kvstore.hpp"
#include "bigdata/mapreduce.hpp"
#include "bigdata/transfer.hpp"
#include "common/sim_clock.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "scbr/poset_engine.hpp"
#include "scbr/router.hpp"
#include "scbr/workload.hpp"
#include "sgx/platform.hpp"

namespace securecloud::obs {
namespace {

// ------------------------------------------------------------- primitives

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramLogBuckets) {
  Histogram h;
  // Bucket 0 is exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b).
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(1024);

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 1034u);
  // Non-empty cells only, as (inclusive upper bound, count).
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {0, 1},     // 0
      {1, 1},     // 1
      {3, 2},     // 2, 3
      {7, 1},     // 4
      {2047, 1},  // 1024 (bucket 11: [1024, 2048))
  };
  EXPECT_EQ(snap.buckets, expected);

  // Bucket edges: 2^k - 1 stays in bucket k, 2^k moves to bucket k + 1.
  Histogram edges;
  edges.observe((1ull << 16) - 1);
  edges.observe(1ull << 16);
  const auto esnap = edges.snapshot();
  ASSERT_EQ(esnap.buckets.size(), 2u);
  EXPECT_EQ(esnap.buckets[0].first, (1ull << 16) - 1);
  EXPECT_EQ(esnap.buckets[1].first, (1ull << 17) - 1);

  // The last bucket covers the top of the u64 range.
  Histogram top;
  top.observe(UINT64_MAX);
  EXPECT_EQ(top.snapshot().buckets[0].first, UINT64_MAX);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_TRUE(h.snapshot().buckets.empty());
}

TEST(Metrics, CounterShardBatchesIncrements) {
  Counter c;
  {
    CounterShard shard(c);
    shard.inc(5);
    shard.inc();
    EXPECT_EQ(shard.pending(), 6u);
    EXPECT_EQ(c.value(), 0u);  // nothing published before flush
    shard.flush();
    EXPECT_EQ(c.value(), 6u);
    shard.inc(4);
  }  // destructor flushes the rest
  EXPECT_EQ(c.value(), 10u);
}

// --------------------------------------------------------------- registry

TEST(Registry, SameNameReturnsSameHandle) {
  Registry registry;
  Counter& a = registry.counter("x_total");
  Counter& b = registry.counter("x_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
}

TEST(Registry, ConcurrentRegistrationAndIncrements) {
  Registry registry;
  Counter& total = registry.counter("work_total");
  common::ThreadPool pool(4);
  // Every task resolves the same names (racing registration) and batches
  // its increments through a CounterShard, flushed at task end.
  common::run_indexed(&pool, 64, [&](std::size_t) {
    Counter& same = registry.counter("work_total");
    CounterShard shard(same);
    for (int i = 0; i < 1000; ++i) shard.inc();
    registry.histogram("work_hist").observe(8);
    registry.gauge("work_gauge").add(1);
  });
  EXPECT_EQ(total.value(), 64'000u);
  EXPECT_EQ(registry.histogram("work_hist").count(), 64u);
  EXPECT_EQ(registry.gauge("work_gauge").value(), 64);
}

TEST(Registry, SnapshotJsonIsStableAndSorted) {
  Registry a, b;
  // Register in different orders; export must not care.
  a.counter("zz_total").inc(3);
  a.counter("aa_total").inc(1);
  a.gauge("mid_gauge").set(-5);
  a.histogram("lat").observe(100);

  b.histogram("lat").observe(100);
  b.gauge("mid_gauge").set(-5);
  b.counter("aa_total").inc(1);
  b.counter("zz_total").inc(3);

  EXPECT_EQ(a.snapshot(), b.snapshot());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"schema\":\"securecloud.obs.v1\""), std::string::npos);
  // Sorted keys: aa before zz.
  EXPECT_LT(a.to_json().find("aa_total"), a.to_json().find("zz_total"));
}

TEST(Registry, PrometheusExposition) {
  Registry registry;
  registry.counter("req_total").inc(7);
  registry.gauge("depth").set(-2);
  registry.histogram("lat").observe(3);
  registry.histogram("lat").observe(100);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  // Cumulative buckets end at +Inf with the total count.
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 103"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2"), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  Registry registry;
  Counter& c = registry.counter("c_total");
  c.inc(9);
  registry.gauge("g").set(4);
  registry.histogram("h").observe(2);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  EXPECT_EQ(registry.gauge("g").value(), 0);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
  c.inc();
  EXPECT_EQ(registry.snapshot().counters.at("c_total"), 1u);
}

// ---------------------------------------------------------------- tracing

TEST(Trace, SpansNestViaThreadLocalStack) {
  SimClock clock;
  Tracer tracer(clock);
  {
    Span job(&tracer, "job");
    job.set_attribute("partitions", "4");
    clock.advance_cycles(10);
    {
      Span map(&tracer, "map");
      clock.advance_cycles(5);
    }
    // A sibling opened after `map` ended nests under `job`, not `map`.
    Span reduce(&tracer, "reduce");
    clock.advance_cycles(3);
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 3u);
  // Finish order: map, reduce, job.
  EXPECT_EQ(spans[0].name, "map");
  EXPECT_EQ(spans[1].name, "reduce");
  EXPECT_EQ(spans[2].name, "job");
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[0].parent_id, spans[2].span_id);
  EXPECT_EQ(spans[1].parent_id, spans[2].span_id);
  EXPECT_EQ(spans[0].start_cycles, 10u);
  EXPECT_EQ(spans[0].end_cycles, 15u);
  EXPECT_EQ(spans[2].start_cycles, 0u);
  EXPECT_EQ(spans[2].end_cycles, 18u);
  ASSERT_EQ(spans[2].attributes.size(), 1u);
  EXPECT_EQ(spans[2].attributes[0].first, "partitions");

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"schema\":\"securecloud.trace.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"map\""), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.finished_count(), 0u);
}

TEST(Trace, NullTracerSpanIsInert) {
  Span span(nullptr, "nothing");
  span.set_attribute("k", "v");
  span.end();  // must not crash; nothing recorded anywhere
  EXPECT_EQ(span.id(), 0u);
}

TEST(Trace, EndIsIdempotent) {
  SimClock clock;
  Tracer tracer(clock);
  Span span(&tracer, "once");
  span.end();
  span.end();
  EXPECT_EQ(tracer.finished_count(), 1u);
}

// ----------------------------------------------- cross-subsystem invariant

/// Drives MapReduce + SCBR routing + secure transfer + the KV store with
/// fixed seeds at the given thread count, all wired into one registry,
/// and returns the exported JSON. The acceptance criterion: runs at 1
/// and 8 threads export bit-identical counter values.
std::string run_workload(std::size_t threads) {
  common::ThreadPool pool(threads);
  common::ThreadPool* p = threads > 1 ? &pool : nullptr;
  Registry registry;

  // --- secure map/reduce (word count) -----------------------------------
  {
    sgx::Platform platform;
    crypto::DeterministicEntropy entropy(5);
    bigdata::SecureMapReduce job(platform, entropy);
    job.set_pool(p);
    job.set_obs(&registry);
    platform.set_obs(&registry);

    const char* words[] = {"enclave", "cloud", "secure", "data"};
    std::vector<std::vector<Bytes>> partitions;
    std::uint64_t lcg = 99;
    for (std::size_t part = 0; part < 8; ++part) {
      std::vector<Bytes> records;
      for (std::size_t rec = 0; rec < 8; ++rec) {
        std::string text;
        for (int w = 0; w < 12; ++w) {
          lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
          text += words[(lcg >> 33) % 4];
          text += ' ';
        }
        records.push_back(to_bytes(text));
      }
      partitions.push_back(job.encrypt_partition(records));
    }
    bigdata::MapReduceConfig config;
    config.num_mappers = 4;
    config.num_reducers = 4;
    auto out = job.run(
        config, partitions,
        [](ByteView record) {
          std::vector<bigdata::KeyValue> kvs;
          std::string word;
          for (std::uint8_t c : record) {
            if (c == ' ') {
              if (!word.empty()) kvs.push_back({word, 1.0});
              word.clear();
            } else {
              word += static_cast<char>(c);
            }
          }
          return kvs;
        },
        [](const std::string&, const std::vector<double>& vs) {
          double sum = 0;
          for (double v : vs) sum += v;
          return sum;
        });
    EXPECT_TRUE(out.ok());
  }

  // --- SCBR router batch publish ----------------------------------------
  {
    sgx::Platform platform;
    sgx::AttestationService attestation;
    platform.provision(attestation);
    crypto::DeterministicEntropy entropy(55);
    scbr::KeyService keys(attestation, entropy);

    sgx::EnclaveImage image;
    image.name = "scbr-router";
    image.code = to_bytes("router-binary");
    crypto::DeterministicEntropy signer(808);
    sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
    auto enclave = platform.create_enclave(image);
    EXPECT_TRUE(enclave.ok());
    keys.authorize_router((*enclave)->mrenclave());
    auto publisher = keys.register_client("publisher");
    auto subscriber = keys.register_client("subscriber");

    scbr::ScbrRouter router(**enclave, std::make_unique<scbr::PosetEngine>());
    EXPECT_TRUE(router.provision(keys).ok());
    router.set_obs(&registry);
    platform.set_obs(&registry);

    scbr::WorkloadConfig wl;
    wl.attribute_universe = 10;
    wl.attributes_per_filter = 3;
    wl.value_range = 10'000;
    wl.width_fraction = 0.25;
    wl.hierarchy_fraction = 0.8;
    scbr::ScbrWorkload workload(wl, 11);
    for (std::size_t i = 0; i < 64; ++i) {
      auto sub = router.subscribe(
          subscriber.name,
          encrypt_subscription(subscriber, workload.next_filter(), i + 1));
      EXPECT_TRUE(sub.ok());
    }
    std::vector<scbr::ScbrRouter::PublishRequest> batch;
    for (std::size_t i = 0; i < 64; ++i) {
      batch.push_back({publisher.name,
                       encrypt_publication(publisher, workload.next_event(), i + 1)});
    }
    for (const auto& outcome : router.publish_batch(batch, p)) {
      EXPECT_TRUE(outcome.ok());
    }
  }

  // --- secure transfer round trip ---------------------------------------
  {
    bigdata::SecureTransferSender sender(Bytes(16, 0x31), 1, 4 * 1024);
    sender.set_pool(p);
    sender.set_obs(&registry);
    bigdata::SecureTransferReceiver receiver(Bytes(16, 0x31), 1);
    receiver.set_obs(&registry);

    Bytes payload;
    std::uint64_t lcg = 7;
    while (payload.size() < 64 * 1024) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      payload.push_back(static_cast<std::uint8_t>(lcg >> 33));
    }
    auto back = receiver.receive_all(sender.send(payload), p);
    EXPECT_TRUE(back.ok());
  }

  // --- secure KV store (serial) -----------------------------------------
  {
    scone::UntrustedFileSystem storage;
    crypto::DeterministicEntropy entropy(3);
    bigdata::SecureKvStore store(storage, Bytes(16, 0x2a), "obs", entropy);
    store.set_obs(&registry);
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(store.put("k" + std::to_string(i), to_bytes("v")).ok());
    }
    EXPECT_TRUE(store.get("k0").ok());
  }

  return registry.to_json();
}

TEST(ObsIntegration, FiveSubsystemsReportAndCountersAreThreadCountInvariant) {
  const std::string one = run_workload(1);
  const std::string eight = run_workload(8);
  EXPECT_EQ(one, eight) << "obs export must be bit-identical across thread counts";

  // One snapshot shows non-zero metrics from >= 5 subsystems
  // (mapreduce, scbr, transfer, kvstore, sgx).
  for (const char* needle :
       {"\"mapreduce_jobs_total\":1", "\"scbr_publications_total\":64",
        "\"transfer_recv_accepted_total\":", "\"kvstore_puts_total\":8",
        "\"sgx_epc_accesses_total\":"}) {
    const auto pos = one.find(needle);
    ASSERT_NE(pos, std::string::npos) << needle << " missing in " << one;
    // The character after the needle is the value's first digit; the
    // counters above are all expected non-zero.
    EXPECT_NE(one[pos + std::string(needle).size()], '0') << needle;
  }
}

TEST(ObsIntegration, RepeatRunsAreBitIdentical) {
  EXPECT_EQ(run_workload(2), run_workload(2));
}

}  // namespace
}  // namespace securecloud::obs
