// Observability layer tests: metric primitives, registry concurrency and
// export formats, span tracing, and the cross-subsystem determinism
// invariant (fixed seed + any thread count => bit-identical counters).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "bigdata/kvstore.hpp"
#include "bigdata/mapreduce.hpp"
#include "bigdata/transfer.hpp"
#include "common/sim_clock.hpp"
#include "common/thread_pool.hpp"
#include "obs/cluster.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "scbr/poset_engine.hpp"
#include "scbr/router.hpp"
#include "scbr/workload.hpp"
#include "sgx/platform.hpp"

namespace securecloud::obs {
namespace {

// ------------------------------------------------------------- primitives

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramLogBuckets) {
  Histogram h;
  // Bucket 0 is exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b).
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(1024);

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 1034u);
  // Non-empty cells only, as (inclusive upper bound, count).
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {0, 1},     // 0
      {1, 1},     // 1
      {3, 2},     // 2, 3
      {7, 1},     // 4
      {2047, 1},  // 1024 (bucket 11: [1024, 2048))
  };
  EXPECT_EQ(snap.buckets, expected);

  // Bucket edges: 2^k - 1 stays in bucket k, 2^k moves to bucket k + 1.
  Histogram edges;
  edges.observe((1ull << 16) - 1);
  edges.observe(1ull << 16);
  const auto esnap = edges.snapshot();
  ASSERT_EQ(esnap.buckets.size(), 2u);
  EXPECT_EQ(esnap.buckets[0].first, (1ull << 16) - 1);
  EXPECT_EQ(esnap.buckets[1].first, (1ull << 17) - 1);

  // The last bucket covers the top of the u64 range.
  Histogram top;
  top.observe(UINT64_MAX);
  EXPECT_EQ(top.snapshot().buckets[0].first, UINT64_MAX);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_TRUE(h.snapshot().buckets.empty());
}

TEST(Metrics, CounterShardBatchesIncrements) {
  Counter c;
  {
    CounterShard shard(c);
    shard.inc(5);
    shard.inc();
    EXPECT_EQ(shard.pending(), 6u);
    EXPECT_EQ(c.value(), 0u);  // nothing published before flush
    shard.flush();
    EXPECT_EQ(c.value(), 6u);
    shard.inc(4);
  }  // destructor flushes the rest
  EXPECT_EQ(c.value(), 10u);
}

// --------------------------------------------------------------- registry

TEST(Registry, SameNameReturnsSameHandle) {
  Registry registry;
  Counter& a = registry.counter("x_total");
  Counter& b = registry.counter("x_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
}

TEST(Registry, ConcurrentRegistrationAndIncrements) {
  Registry registry;
  Counter& total = registry.counter("work_total");
  common::ThreadPool pool(4);
  // Every task resolves the same names (racing registration) and batches
  // its increments through a CounterShard, flushed at task end.
  common::run_indexed(&pool, 64, [&](std::size_t) {
    Counter& same = registry.counter("work_total");
    CounterShard shard(same);
    for (int i = 0; i < 1000; ++i) shard.inc();
    registry.histogram("work_hist").observe(8);
    registry.gauge("work_gauge").add(1);
  });
  EXPECT_EQ(total.value(), 64'000u);
  EXPECT_EQ(registry.histogram("work_hist").count(), 64u);
  EXPECT_EQ(registry.gauge("work_gauge").value(), 64);
}

TEST(Registry, SnapshotJsonIsStableAndSorted) {
  Registry a, b;
  // Register in different orders; export must not care.
  a.counter("zz_total").inc(3);
  a.counter("aa_total").inc(1);
  a.gauge("mid_gauge").set(-5);
  a.histogram("lat").observe(100);

  b.histogram("lat").observe(100);
  b.gauge("mid_gauge").set(-5);
  b.counter("aa_total").inc(1);
  b.counter("zz_total").inc(3);

  EXPECT_EQ(a.snapshot(), b.snapshot());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"schema\":\"securecloud.obs.v1\""), std::string::npos);
  // Sorted keys: aa before zz.
  EXPECT_LT(a.to_json().find("aa_total"), a.to_json().find("zz_total"));
}

TEST(Registry, PrometheusExposition) {
  Registry registry;
  registry.counter("req_total").inc(7);
  registry.gauge("depth").set(-2);
  registry.histogram("lat").observe(3);
  registry.histogram("lat").observe(100);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  // Cumulative buckets end at +Inf with the total count.
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 103"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2"), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  Registry registry;
  Counter& c = registry.counter("c_total");
  c.inc(9);
  registry.gauge("g").set(4);
  registry.histogram("h").observe(2);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  EXPECT_EQ(registry.gauge("g").value(), 0);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
  c.inc();
  EXPECT_EQ(registry.snapshot().counters.at("c_total"), 1u);
}

// Regression: export used to hold the interning mutex while formatting
// JSON, so a slow serialization stalled every registration and (via the
// registration path) new components attaching mid-run. Export now walks
// RCU index snapshots only — writers intern fresh names and bump
// counters at full speed while exporters loop, and every export is a
// coherent prefix of the registration stream.
TEST(Registry, ExportNeverBlocksInterningOrBumps) {
  Registry registry;
  // Pre-size the document so each to_json() has real formatting work.
  for (int i = 0; i < 256; ++i) {
    registry.counter("warm_" + std::to_string(i) + "_total").inc();
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> exports{0};
  std::vector<std::thread> exporters;
  for (int e = 0; e < 2; ++e) {
    exporters.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::string json = registry.to_json();
        ASSERT_NE(json.find("\"schema\":\"securecloud.obs.v1\""),
                  std::string::npos);
        exports.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr int kWriters = 4;
  constexpr int kNamesPerWriter = 400;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kNamesPerWriter; ++i) {
        Counter& c = registry.counter("hot_" + std::to_string(w) + "_" +
                                      std::to_string(i) + "_total");
        c.inc(static_cast<std::uint64_t>(i) + 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : exporters) t.join();

  EXPECT_GT(exports.load(), 0u);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 256u + kWriters * kNamesPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kNamesPerWriter; ++i) {
      ASSERT_EQ(snap.counters.at("hot_" + std::to_string(w) + "_" +
                                 std::to_string(i) + "_total"),
                static_cast<std::uint64_t>(i) + 1);
    }
  }
}

// ---------------------------------------------------------------- tracing

TEST(Trace, SpansNestViaThreadLocalStack) {
  SimClock clock;
  Tracer tracer(clock);
  {
    Span job(&tracer, "job");
    job.set_attribute("partitions", "4");
    clock.advance_cycles(10);
    {
      Span map(&tracer, "map");
      clock.advance_cycles(5);
    }
    // A sibling opened after `map` ended nests under `job`, not `map`.
    Span reduce(&tracer, "reduce");
    clock.advance_cycles(3);
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 3u);
  // Finish order: map, reduce, job.
  EXPECT_EQ(spans[0].name, "map");
  EXPECT_EQ(spans[1].name, "reduce");
  EXPECT_EQ(spans[2].name, "job");
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[0].parent_id, spans[2].span_id);
  EXPECT_EQ(spans[1].parent_id, spans[2].span_id);
  EXPECT_EQ(spans[0].start_cycles, 10u);
  EXPECT_EQ(spans[0].end_cycles, 15u);
  EXPECT_EQ(spans[2].start_cycles, 0u);
  EXPECT_EQ(spans[2].end_cycles, 18u);
  ASSERT_EQ(spans[2].attributes.size(), 1u);
  EXPECT_EQ(spans[2].attributes[0].first, "partitions");

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"schema\":\"securecloud.trace.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"map\""), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.finished_count(), 0u);
}

TEST(Trace, NullTracerSpanIsInert) {
  Span span(nullptr, "nothing");
  span.set_attribute("k", "v");
  span.end();  // must not crash; nothing recorded anywhere
  EXPECT_EQ(span.id(), 0u);
}

TEST(Trace, EndIsIdempotent) {
  SimClock clock;
  Tracer tracer(clock);
  Span span(&tracer, "once");
  span.end();
  span.end();
  EXPECT_EQ(tracer.finished_count(), 1u);
}

// ----------------------------------------------- cross-subsystem invariant

/// Drives MapReduce + SCBR routing + secure transfer + the KV store with
/// fixed seeds at the given thread count, all wired into one registry,
/// and returns the exported JSON. The acceptance criterion: runs at 1
/// and 8 threads export bit-identical counter values.
std::string run_workload(std::size_t threads) {
  common::ThreadPool pool(threads);
  common::ThreadPool* p = threads > 1 ? &pool : nullptr;
  Registry registry;

  // --- secure map/reduce (word count) -----------------------------------
  {
    sgx::Platform platform;
    crypto::DeterministicEntropy entropy(5);
    bigdata::SecureMapReduce job(platform, entropy);
    job.set_pool(p);
    job.set_obs(&registry);
    platform.set_obs(&registry);

    const char* words[] = {"enclave", "cloud", "secure", "data"};
    std::vector<std::vector<Bytes>> partitions;
    std::uint64_t lcg = 99;
    for (std::size_t part = 0; part < 8; ++part) {
      std::vector<Bytes> records;
      for (std::size_t rec = 0; rec < 8; ++rec) {
        std::string text;
        for (int w = 0; w < 12; ++w) {
          lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
          text += words[(lcg >> 33) % 4];
          text += ' ';
        }
        records.push_back(to_bytes(text));
      }
      partitions.push_back(job.encrypt_partition(records));
    }
    bigdata::MapReduceConfig config;
    config.num_mappers = 4;
    config.num_reducers = 4;
    auto out = job.run(
        config, partitions,
        [](ByteView record) {
          std::vector<bigdata::KeyValue> kvs;
          std::string word;
          for (std::uint8_t c : record) {
            if (c == ' ') {
              if (!word.empty()) kvs.push_back({word, 1.0});
              word.clear();
            } else {
              word += static_cast<char>(c);
            }
          }
          return kvs;
        },
        [](const std::string&, const std::vector<double>& vs) {
          double sum = 0;
          for (double v : vs) sum += v;
          return sum;
        });
    EXPECT_TRUE(out.ok());
  }

  // --- SCBR router batch publish ----------------------------------------
  {
    sgx::Platform platform;
    sgx::AttestationService attestation;
    platform.provision(attestation);
    crypto::DeterministicEntropy entropy(55);
    scbr::KeyService keys(attestation, entropy);

    sgx::EnclaveImage image;
    image.name = "scbr-router";
    image.code = to_bytes("router-binary");
    crypto::DeterministicEntropy signer(808);
    sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
    auto enclave = platform.create_enclave(image);
    EXPECT_TRUE(enclave.ok());
    keys.authorize_router((*enclave)->mrenclave());
    auto publisher = keys.register_client("publisher");
    auto subscriber = keys.register_client("subscriber");

    scbr::ScbrRouter router(**enclave, std::make_unique<scbr::PosetEngine>());
    EXPECT_TRUE(router.provision(keys).ok());
    router.set_obs(&registry);
    platform.set_obs(&registry);

    scbr::WorkloadConfig wl;
    wl.attribute_universe = 10;
    wl.attributes_per_filter = 3;
    wl.value_range = 10'000;
    wl.width_fraction = 0.25;
    wl.hierarchy_fraction = 0.8;
    scbr::ScbrWorkload workload(wl, 11);
    for (std::size_t i = 0; i < 64; ++i) {
      auto sub = router.subscribe(
          subscriber.name,
          encrypt_subscription(subscriber, workload.next_filter(), i + 1));
      EXPECT_TRUE(sub.ok());
    }
    std::vector<scbr::ScbrRouter::PublishRequest> batch;
    for (std::size_t i = 0; i < 64; ++i) {
      batch.push_back({publisher.name,
                       encrypt_publication(publisher, workload.next_event(), i + 1)});
    }
    for (const auto& outcome : router.publish_batch(batch, p)) {
      EXPECT_TRUE(outcome.ok());
    }
  }

  // --- secure transfer round trip ---------------------------------------
  {
    bigdata::SecureTransferSender sender(Bytes(16, 0x31), 1, 4 * 1024);
    sender.set_pool(p);
    sender.set_obs(&registry);
    bigdata::SecureTransferReceiver receiver(Bytes(16, 0x31), 1);
    receiver.set_obs(&registry);

    Bytes payload;
    std::uint64_t lcg = 7;
    while (payload.size() < 64 * 1024) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      payload.push_back(static_cast<std::uint8_t>(lcg >> 33));
    }
    auto back = receiver.receive_all(sender.send(payload), p);
    EXPECT_TRUE(back.ok());
  }

  // --- secure KV store (serial) -----------------------------------------
  {
    scone::UntrustedFileSystem storage;
    crypto::DeterministicEntropy entropy(3);
    bigdata::SecureKvStore store(storage, Bytes(16, 0x2a), "obs", entropy);
    store.set_obs(&registry);
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(store.put("k" + std::to_string(i), to_bytes("v")).ok());
    }
    EXPECT_TRUE(store.get("k0").ok());
  }

  return registry.to_json();
}

TEST(ObsIntegration, FiveSubsystemsReportAndCountersAreThreadCountInvariant) {
  const std::string one = run_workload(1);
  const std::string eight = run_workload(8);
  EXPECT_EQ(one, eight) << "obs export must be bit-identical across thread counts";

  // One snapshot shows non-zero metrics from >= 5 subsystems
  // (mapreduce, scbr, transfer, kvstore, sgx).
  for (const char* needle :
       {"\"mapreduce_jobs_total\":1", "\"scbr_publications_total\":64",
        "\"transfer_recv_accepted_total\":", "\"kvstore_puts_total\":8",
        "\"sgx_epc_accesses_total\":"}) {
    const auto pos = one.find(needle);
    ASSERT_NE(pos, std::string::npos) << needle << " missing in " << one;
    // The character after the needle is the value's first digit; the
    // counters above are all expected non-zero.
    EXPECT_NE(one[pos + std::string(needle).size()], '0') << needle;
  }
}

TEST(ObsIntegration, RepeatRunsAreBitIdentical) {
  EXPECT_EQ(run_workload(2), run_workload(2));
}

// ----------------------------------------------- distributed tracing (v2)

TEST(Trace, ContextWireCodecRoundTrips) {
  const TraceContext ctx{0x1234'5678'9abc'def0ull, 0x0fed'cba9'8765'4321ull};
  Bytes wire;
  put_trace_context(wire, ctx);
  EXPECT_EQ(wire.size(), 16u);

  ByteReader r(wire);
  TraceContext back;
  ASSERT_TRUE(get_trace_context(r, back));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, ctx);

  Bytes truncated(wire.begin(), wire.begin() + 15);
  ByteReader tr(truncated);
  TraceContext scratch;
  EXPECT_FALSE(get_trace_context(tr, scratch));
}

TEST(Trace, RemoteParentContextIsAdopted) {
  SimClock clock;
  Tracer coordinator(clock);
  coordinator.set_id_prefix(1ull << 40);
  Tracer worker(clock);
  worker.set_id_prefix(2ull << 40);

  TraceContext job_ctx;
  {
    Span job(&coordinator, "job");
    job_ctx = job.context();
    EXPECT_TRUE(job_ctx.valid());
    clock.advance_cycles(5);
    Span remote(&worker, "task", job_ctx);
    EXPECT_EQ(remote.trace_id(), job_ctx.trace_id);
    clock.advance_cycles(5);
  }
  const auto spans = worker.finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent_id, job_ctx.parent_span_id);
  EXPECT_EQ(spans[0].trace_id, job_ctx.trace_id);
  EXPECT_EQ(spans[0].span_id >> 40, 2u);  // node-unique id prefix applied

  // An invalid remote context falls back to the local stack / root rules.
  Span local_root(&worker, "detached", TraceContext{});
  EXPECT_EQ(local_root.trace_id(), local_root.id());
}

TEST(Trace, ParentScopeHandsParentAcrossThreads) {
  SimClock clock;
  Tracer tracer(clock);
  TraceContext ctx;
  std::uint64_t phase_id = 0;
  {
    Span phase(&tracer, "phase");
    ctx = phase.context();
    phase_id = phase.id();
    std::thread worker([&] {
      // A fresh thread has an empty span stack: without the handover
      // this span would become a root.
      ParentScope handover(&tracer, ctx);
      Span task(&tracer, "task");
    });
    worker.join();
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "task");
  EXPECT_EQ(spans[0].parent_id, phase_id);
  EXPECT_EQ(spans[0].trace_id, ctx.trace_id);
}

// Regression: SecureMapReduce's pool tasks used to open spans on pool
// threads with an empty parent stack, silently producing root spans.
TEST(Trace, MapReducePoolTaskSpansParentToPhaseSpans) {
  sgx::Platform platform;
  crypto::DeterministicEntropy entropy(7);
  bigdata::SecureMapReduce job(platform, entropy);
  Registry registry;
  Tracer tracer(platform.clock());
  job.set_obs(&registry, &tracer);
  common::ThreadPool pool(4);
  job.set_pool(&pool);

  std::vector<std::vector<Bytes>> encrypted;
  for (int p = 0; p < 4; ++p) {
    encrypted.push_back(job.encrypt_partition(
        {to_bytes("a b"), to_bytes("b c"), to_bytes("c a")}));
  }
  bigdata::MapReduceConfig config;
  config.num_mappers = 4;
  config.num_reducers = 3;
  auto result = job.run(
      config, encrypted,
      [](ByteView record) {
        std::vector<bigdata::KeyValue> out;
        std::string word;
        for (std::uint8_t c : record) {
          if (c == ' ') {
            if (!word.empty()) out.push_back({word, 1.0});
            word.clear();
          } else {
            word += static_cast<char>(c);
          }
        }
        if (!word.empty()) out.push_back({word, 1.0});
        return out;
      },
      [](const std::string&, const std::vector<double>& values) {
        double total = 0;
        for (double v : values) total += v;
        return total;
      });
  ASSERT_TRUE(result.ok()) << result.error().message;

  std::uint64_t map_phase_id = 0, reduce_phase_id = 0, job_trace = 0;
  for (const SpanRecord& s : tracer.finished()) {
    if (s.name == "mapreduce.map") map_phase_id = s.span_id;
    if (s.name == "mapreduce.reduce") reduce_phase_id = s.span_id;
    if (s.name == "mapreduce.job") job_trace = s.trace_id;
  }
  ASSERT_NE(map_phase_id, 0u);
  ASSERT_NE(reduce_phase_id, 0u);
  std::size_t map_tasks = 0, reduce_tasks = 0;
  for (const SpanRecord& s : tracer.finished()) {
    if (s.name == "mapreduce.map.task") {
      ++map_tasks;
      EXPECT_EQ(s.parent_id, map_phase_id) << "map task span became a root";
      EXPECT_EQ(s.trace_id, job_trace);
    }
    if (s.name == "mapreduce.reduce.task") {
      ++reduce_tasks;
      EXPECT_EQ(s.parent_id, reduce_phase_id) << "reduce task span became a root";
      EXPECT_EQ(s.trace_id, job_trace);
    }
  }
  EXPECT_EQ(map_tasks, 4u);
  EXPECT_EQ(reduce_tasks, 3u);
}

// -------------------------------------------------------- flight recorder

TEST(FlightRecorder, BoundedRingKeepsNewestAndCountsDrops) {
  SimClock clock;
  FlightRecorder rec(clock, 4);
  EXPECT_EQ(rec.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    clock.advance_cycles(10);
    rec.record("cat", "event-" + std::to_string(i));
  }
  EXPECT_EQ(rec.total_recorded(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().detail, "event-2");  // two oldest evicted
  EXPECT_EQ(events.back().detail, "event-5");
  EXPECT_EQ(events.front().seq, 2u);
  EXPECT_EQ(events.back().at_cycles, 60u);

  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"schema\":\"securecloud.flight.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
  EXPECT_EQ(json.find("event-0"), std::string::npos);

  rec.clear();
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(FlightRecorder, ConcurrentAppendsNeverLoseCounts) {
  SimClock clock;
  FlightRecorder rec(clock, 64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < 500; ++i) {
        rec.record("hammer", "t" + std::to_string(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.total_recorded(), 2000u);
  EXPECT_EQ(rec.events().size(), 64u);
  // Sequence numbers in the retained window are strictly increasing.
  const auto events = rec.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

// ------------------------------------------------- cluster snapshot merge

TEST(ClusterObs, NodeSnapshotSerializationRoundTrips) {
  SimClock clock;
  NodeObs node("worker-1", clock, 1);
  node.registry.counter("x_total").inc(3);
  node.registry.gauge("g").set(-2);
  node.registry.histogram("h").observe(5);
  clock.advance_cycles(7);
  {
    Span s(&node.tracer, "op");
    s.set_attribute("k", "v");
    clock.advance_cycles(3);
  }
  node.flight.record("cat", "detail");

  const NodeSnapshot snap = node.snapshot();
  const Bytes wire = serialize_node_snapshot(snap);
  auto back = deserialize_node_snapshot(wire);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back->node, "worker-1");
  EXPECT_EQ(back->metrics.counters.at("x_total"), 3u);
  EXPECT_EQ(back->metrics.gauges.at("g"), -2);
  EXPECT_EQ(back->metrics.histograms.at("h").count, 1u);
  ASSERT_EQ(back->spans.size(), 1u);
  EXPECT_EQ(back->spans[0].name, "op");
  EXPECT_EQ(back->spans[0].span_id >> 40, 2u);
  EXPECT_EQ(back->spans[0].start_cycles, 7u);
  EXPECT_EQ(back->spans[0].end_cycles, 10u);
  ASSERT_EQ(back->spans[0].attributes.size(), 1u);
  ASSERT_EQ(back->flight.size(), 1u);
  EXPECT_EQ(back->flight[0].category, "cat");
  EXPECT_EQ(back->flight_total, 1u);

  // Truncated wire is a typed error, never UB.
  const Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(deserialize_node_snapshot(truncated).ok());
}

// Deserialization must be total: every prefix and every single-byte
// corruption of a real encoding yields either a typed error or a valid
// alternate decode — never a crash, hang, or huge allocation. (A flip
// can land in a count field; the reserve guards in the decoder are what
// this exercises.)
TEST(ClusterObs, NodeSnapshotFuzzPrefixesAndByteFlips) {
  SimClock clock;
  NodeObs node("fuzz-node", clock, 3);
  node.registry.counter("a_total").inc(17);
  node.registry.counter("b_total").inc(1);
  node.registry.gauge("g").set(-9);
  node.registry.histogram("h").observe(1);
  node.registry.histogram("h").observe(1 << 20);
  clock.advance_cycles(5);
  {
    Span s(&node.tracer, "span-name");
    s.set_attribute("key", "value");
    clock.advance_cycles(2);
  }
  node.flight.record("category", "some detail");
  node.flight.record("category", "more detail");

  const Bytes wire = serialize_node_snapshot(node.snapshot());
  ASSERT_FALSE(wire.empty());

  // Every strict prefix fails with a typed error (the full encoding is
  // self-delimiting, so no prefix can be a complete valid message).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(),
                       wire.begin() + static_cast<std::ptrdiff_t>(len));
    auto r = deserialize_node_snapshot(prefix);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }

  // Every single-byte flip either errors or decodes to *something* —
  // flips inside string bodies are legitimately valid alternates.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80},
                              std::uint8_t{0xFF}}) {
      Bytes mutated = wire;
      mutated[i] ^= flip;
      auto r = deserialize_node_snapshot(mutated);
      if (!r.ok()) {
        EXPECT_FALSE(r.error().message.empty());
      }
    }
  }
}

TEST(ClusterObs, MergeSortsNodesAndExportsAreLabelled) {
  SimClock clock;
  NodeObs b("node-b", clock, 2);
  NodeObs a("node-a", clock, 1);
  a.registry.counter("c_total").inc();
  b.registry.counter("c_total").inc(2);
  { Span s(&b.tracer, "beta"); }
  clock.advance_cycles(1);
  { Span s(&a.tracer, "alpha"); }
  b.flight.record("nack", "peer=1 seq=4");

  std::vector<NodeSnapshot> nodes;
  nodes.push_back(b.snapshot());
  nodes.push_back(a.snapshot());
  const ClusterSnapshot merged = merge_snapshots(std::move(nodes));
  ASSERT_EQ(merged.nodes.size(), 2u);
  EXPECT_EQ(merged.nodes[0].node, "node-a");

  const std::string obs = merged.to_obs_json();
  EXPECT_NE(obs.find("\"schema\":\"securecloud.obs.v2\""), std::string::npos);
  EXPECT_LT(obs.find("node-a"), obs.find("node-b"));

  const std::string trace = merged.to_trace_json();
  EXPECT_NE(trace.find("\"schema\":\"securecloud.trace.v2\""), std::string::npos);
  // Merged span order is (start, end, id) — beta started first.
  EXPECT_LT(trace.find("beta"), trace.find("alpha"));
  EXPECT_NE(trace.find("\"node\":\"node-a\""), std::string::npos);

  const std::string flight = merged.to_flight_json();
  EXPECT_NE(flight.find("\"schema\":\"securecloud.flight.v2\""), std::string::npos);
  EXPECT_NE(flight.find("peer=1 seq=4"), std::string::npos);
}

// --------------------------------------------------- critical-path walker

TEST(ClusterObs, CriticalPathChargesDeepestCoveringSpan) {
  SimClock clock;
  NodeObs coord("coord", clock, 0);
  NodeObs worker("worker", clock, 1);
  {
    Span job(&coord.tracer, "job");  // [0, 100]
    const TraceContext job_ctx = job.context();
    clock.advance_cycles(10);
    {
      Span task(&worker.tracer, "task", job_ctx);  // [10, 70]
      clock.advance_cycles(60);
    }
    clock.advance_cycles(30);
  }
  std::vector<NodeSnapshot> nodes;
  nodes.push_back(coord.snapshot());
  nodes.push_back(worker.snapshot());
  const ClusterSnapshot merged = merge_snapshots(std::move(nodes));

  auto report = critical_path(merged);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->total_cycles, 100u);
  ASSERT_EQ(report->steps.size(), 2u);
  // Steps appear in timeline order of first chain contribution.
  EXPECT_EQ(report->steps[0].name, "job");
  EXPECT_EQ(report->steps[0].self_cycles, 40u);  // [0,10) + [70,100)
  EXPECT_EQ(report->steps[0].depth, 0u);
  EXPECT_EQ(report->steps[1].name, "task");
  EXPECT_EQ(report->steps[1].self_cycles, 60u);
  EXPECT_EQ(report->steps[1].depth, 1u);
  EXPECT_EQ(report->node_self_cycles.at("coord"), 40u);
  EXPECT_EQ(report->node_self_cycles.at("worker"), 60u);
  EXPECT_EQ(report->dominant_node, "worker");

  const std::string json = report->to_json();
  EXPECT_NE(json.find("\"schema\":\"securecloud.critical_path.v1\""),
            std::string::npos);
  const std::string text = report->to_text();
  EXPECT_NE(text.find("- coord/job"), std::string::npos);
  EXPECT_NE(text.find("  - worker/task"), std::string::npos);

  // An empty snapshot has no root to walk.
  EXPECT_FALSE(critical_path(ClusterSnapshot{}).ok());
}

}  // namespace
}  // namespace securecloud::obs
