// Broker-overlay tests: propagation, covering suppression, uncovering on
// retraction, hop-efficient routing — all validated against a flat
// golden model (direct evaluation of every subscription).
#include <gtest/gtest.h>

#include <algorithm>

#include "scbr/overlay.hpp"
#include "scbr/workload.hpp"

namespace securecloud::scbr {
namespace {

Filter range_filter(const std::string& attr, std::int64_t lo, std::int64_t hi) {
  Filter f;
  f.where(attr, Op::kGe, Value::of(lo)).where(attr, Op::kLe, Value::of(hi));
  return f;
}

Event point_event(const std::string& attr, std::int64_t v) {
  Event e;
  e.set(attr, v);
  return e;
}

/// Line topology: 0 - 1 - 2 - 3.
BrokerOverlay line4() { return BrokerOverlay(4, {{0, 1}, {1, 2}, {2, 3}}); }

/// Star: 0 in the middle.
BrokerOverlay star4() { return BrokerOverlay(4, {{0, 1}, {0, 2}, {0, 3}}); }

TEST(Overlay, DeliversAcrossBrokers) {
  BrokerOverlay overlay = line4();
  ASSERT_TRUE(overlay.subscribe(3, 1, range_filter("x", 0, 100)).ok());

  auto matched = overlay.publish(0, point_event("x", 50));
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, (std::vector<SubscriptionId>{1}));
  // Event traveled 0->1->2->3.
  EXPECT_EQ(overlay.stats().publication_hops, 3u);
}

TEST(Overlay, LocalDeliveryNoHops) {
  BrokerOverlay overlay = line4();
  ASSERT_TRUE(overlay.subscribe(0, 1, range_filter("x", 0, 100)).ok());
  auto matched = overlay.publish(0, point_event("x", 50));
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(matched->size(), 1u);
  EXPECT_EQ(overlay.stats().publication_hops, 0u);
}

TEST(Overlay, NonMatchingEventDoesNotPropagate) {
  BrokerOverlay overlay = line4();
  ASSERT_TRUE(overlay.subscribe(3, 1, range_filter("x", 0, 100)).ok());
  overlay.reset_stats();
  auto matched = overlay.publish(0, point_event("x", 500));
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched->empty());
  EXPECT_EQ(overlay.stats().publication_hops, 0u);  // filtered at the edge
}

TEST(Overlay, CoveringSuppressesForwarding) {
  BrokerOverlay overlay = line4();
  // Broad filter from broker 3 propagates everywhere (3 forwards).
  ASSERT_TRUE(overlay.subscribe(3, 1, range_filter("x", 0, 1000)).ok());
  const auto forwarded_before = overlay.stats().subscriptions_forwarded;
  EXPECT_EQ(forwarded_before, 3u);

  // A narrower filter from the same edge is suppressed at the first hop.
  ASSERT_TRUE(overlay.subscribe(3, 2, range_filter("x", 10, 20)).ok());
  EXPECT_EQ(overlay.stats().subscriptions_forwarded, forwarded_before);
  EXPECT_EQ(overlay.stats().subscriptions_suppressed, 1u);

  // Both still deliver.
  auto matched = overlay.publish(0, point_event("x", 15));
  ASSERT_TRUE(matched.ok());
  std::sort(matched->begin(), matched->end());
  EXPECT_EQ(*matched, (std::vector<SubscriptionId>{1, 2}));
}

TEST(Overlay, UncoveringReAdvertisesOnRetraction) {
  BrokerOverlay overlay = line4();
  ASSERT_TRUE(overlay.subscribe(3, 1, range_filter("x", 0, 1000)).ok());  // broad
  ASSERT_TRUE(overlay.subscribe(3, 2, range_filter("x", 10, 20)).ok());   // covered

  // Remove the broad filter: the narrow one must now reach the rest of
  // the overlay, or publications at broker 0 would be dropped.
  ASSERT_TRUE(overlay.unsubscribe(3, 1).ok());
  auto matched = overlay.publish(0, point_event("x", 15));
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, (std::vector<SubscriptionId>{2}));

  // And events only the broad filter wanted no longer propagate.
  overlay.reset_stats();
  auto gone = overlay.publish(0, point_event("x", 500));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty());
  EXPECT_EQ(overlay.stats().publication_hops, 0u);
}

TEST(Overlay, StarRoutesOnlyTowardInterest) {
  BrokerOverlay overlay = star4();
  ASSERT_TRUE(overlay.subscribe(1, 1, range_filter("x", 0, 10)).ok());
  ASSERT_TRUE(overlay.subscribe(2, 2, range_filter("x", 20, 30)).ok());
  overlay.reset_stats();

  auto matched = overlay.publish(3, point_event("x", 25));
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, (std::vector<SubscriptionId>{2}));
  // 3 -> 0 -> 2 only; the link to 1 is never used.
  EXPECT_EQ(overlay.stats().publication_hops, 2u);
}

TEST(Overlay, RejectsBadInputs) {
  BrokerOverlay overlay = line4();
  EXPECT_FALSE(overlay.subscribe(99, 1, range_filter("x", 0, 1)).ok());
  EXPECT_FALSE(overlay.publish(99, point_event("x", 0)).ok());
  ASSERT_TRUE(overlay.subscribe(0, 1, range_filter("x", 0, 1)).ok());
  EXPECT_FALSE(overlay.subscribe(1, 1, range_filter("x", 0, 1)).ok());  // dup id
  EXPECT_FALSE(overlay.unsubscribe(1, 1).ok());  // wrong home broker
  EXPECT_TRUE(overlay.unsubscribe(0, 1).ok());
  EXPECT_FALSE(overlay.unsubscribe(0, 1).ok());  // already gone
}

// Golden-model equivalence: overlay delivery == flat evaluation of every
// live subscription, across random topologies-of-interest and churn.
class OverlayEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlayEquivalence, MatchesFlatEvaluationUnderChurn) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  // Random tree over 8 brokers: node i links to a random earlier node.
  std::vector<std::pair<BrokerId, BrokerId>> links;
  for (BrokerId b = 1; b < 8; ++b) {
    links.emplace_back(b, static_cast<BrokerId>(rng.uniform(b)));
  }
  BrokerOverlay overlay(8, links);

  ScbrWorkload workload({.attribute_universe = 4,
                         .attributes_per_filter = 2,
                         .value_range = 100,
                         .width_fraction = 0.4,
                         .hierarchy_fraction = 0.6,
                         .parent_pool = 64},
                        seed + 1);

  std::map<SubscriptionId, std::pair<BrokerId, Filter>> live;
  SubscriptionId next_id = 1;

  for (int round = 0; round < 300; ++round) {
    if (live.empty() || rng.chance(0.65)) {
      const BrokerId home = static_cast<BrokerId>(rng.uniform(8));
      const Filter f = workload.next_filter();
      ASSERT_TRUE(overlay.subscribe(home, next_id, f).ok());
      live[next_id] = {home, f};
      ++next_id;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.uniform(live.size())));
      ASSERT_TRUE(overlay.unsubscribe(it->second.first, it->first).ok());
      live.erase(it);
    }

    if (round % 10 == 0) {
      const Event event = workload.next_event();
      const BrokerId origin = static_cast<BrokerId>(rng.uniform(8));
      auto got = overlay.publish(origin, event);
      ASSERT_TRUE(got.ok());
      std::sort(got->begin(), got->end());

      std::vector<SubscriptionId> expected;
      for (const auto& [id, sub] : live) {
        if (sub.second.matches(event)) expected.push_back(id);
      }
      ASSERT_EQ(*got, expected) << "round " << round << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Overlay, DeepChainDoesNotOverflowStack) {
  // Regression: propagate/retract/publish used to recurse once per hop,
  // so a long chain blew the stack. Worklists must handle ~10⁴ brokers.
  constexpr std::size_t kBrokers = 10000;
  std::vector<std::pair<BrokerId, BrokerId>> links;
  links.reserve(kBrokers - 1);
  for (BrokerId b = 0; b + 1 < kBrokers; ++b) links.emplace_back(b, b + 1);
  BrokerOverlay overlay(kBrokers, links);
  ASSERT_TRUE(overlay.topology().ok());

  ASSERT_TRUE(overlay.subscribe(0, 1, range_filter("x", 0, 1000)).ok());
  EXPECT_EQ(overlay.stats().subscriptions_forwarded, kBrokers - 1);

  auto matched = overlay.publish(kBrokers - 1, point_event("x", 50));
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, (std::vector<SubscriptionId>{1}));
  EXPECT_EQ(overlay.stats().publication_hops, kBrokers - 1);

  // A covered subscription is suppressed at the first hop; retracting
  // its coverer cascades the retraction and the uncovering
  // re-advertisement down the whole chain.
  ASSERT_TRUE(overlay.subscribe(0, 2, range_filter("x", 10, 20)).ok());
  EXPECT_EQ(overlay.stats().subscriptions_suppressed, 1u);
  ASSERT_TRUE(overlay.unsubscribe(0, 1).ok());
  auto narrow = overlay.publish(kBrokers - 1, point_event("x", 15));
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(*narrow, (std::vector<SubscriptionId>{2}));
  ASSERT_TRUE(overlay.unsubscribe(0, 2).ok());
  EXPECT_EQ(overlay.remote_entries(kBrokers / 2), 0u);
}

TEST(Overlay, ResubscribeAfterRetractionMatchesFreshState) {
  // Regression: uncovering used to re-advertise every uncovered filter
  // without applying covering among the re-advertised set, so the order
  // of re-advertisement could leave covered entries in per_link tables
  // forever. After subscribe→unsubscribe→re-subscribe the routing state
  // must equal the fresh-subscribe state.
  const Filter broad = range_filter("x", 0, 1000);
  const Filter narrow = range_filter("x", 40, 60);  // covered by mid
  const Filter mid = range_filter("x", 10, 100);    // covered by broad

  BrokerOverlay cycled = line4();
  ASSERT_TRUE(cycled.subscribe(3, 1, broad).ok());
  ASSERT_TRUE(cycled.subscribe(3, 2, narrow).ok());  // suppressed (broad)
  ASSERT_TRUE(cycled.subscribe(3, 3, mid).ok());     // suppressed (broad)
  ASSERT_TRUE(cycled.unsubscribe(3, 1).ok());  // uncovering: mid, then narrow
  ASSERT_TRUE(cycled.subscribe(3, 1, broad).ok());  // prunes mid back out

  BrokerOverlay fresh = line4();
  ASSERT_TRUE(fresh.subscribe(3, 1, broad).ok());
  ASSERT_TRUE(fresh.subscribe(3, 2, narrow).ok());
  ASSERT_TRUE(fresh.subscribe(3, 3, mid).ok());

  for (BrokerId b = 0; b < 4; ++b) {
    EXPECT_EQ(cycled.remote_entries(b), fresh.remote_entries(b)) << "broker " << b;
  }

  auto got = cycled.publish(0, point_event("x", 50));
  ASSERT_TRUE(got.ok());
  std::sort(got->begin(), got->end());
  EXPECT_EQ(*got, (std::vector<SubscriptionId>{1, 2, 3}));
}

TEST(Overlay, ChurnedTablesMatchFreshTablesOnRandomWorkload) {
  // Covering suppression + covering-triggered pruning keep every
  // per-link table a minimal frontier of the filters behind the link, so
  // routing state after arbitrary churn must equal the state of a fresh
  // overlay holding only the survivors.
  Rng rng(41);
  std::vector<std::pair<BrokerId, BrokerId>> links;
  for (BrokerId b = 1; b < 8; ++b) {
    links.emplace_back(b, static_cast<BrokerId>(rng.uniform(b)));
  }
  BrokerOverlay churned(8, links);
  ScbrWorkload workload({.attribute_universe = 4,
                         .attributes_per_filter = 2,
                         .value_range = 100,
                         .width_fraction = 0.4,
                         .hierarchy_fraction = 0.7,
                         .parent_pool = 64},
                        43);

  std::vector<std::tuple<SubscriptionId, BrokerId, Filter>> live;
  SubscriptionId next_id = 1;
  for (int round = 0; round < 400; ++round) {
    if (live.empty() || rng.chance(0.6)) {
      const BrokerId home = static_cast<BrokerId>(rng.uniform(8));
      const Filter f = workload.next_filter();
      ASSERT_TRUE(churned.subscribe(home, next_id, f).ok());
      live.emplace_back(next_id++, home, f);
    } else {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform(live.size()));
      ASSERT_TRUE(
          churned.unsubscribe(std::get<1>(live[pick]), std::get<0>(live[pick])).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }

  BrokerOverlay fresh(8, links);
  for (const auto& [id, home, filter] : live) {
    ASSERT_TRUE(fresh.subscribe(home, id, filter).ok());
  }
  for (BrokerId b = 0; b < 8; ++b) {
    EXPECT_EQ(churned.remote_entries(b), fresh.remote_entries(b)) << "broker " << b;
  }
}

TEST(Overlay, CoveringReducesRoutingState) {
  // Hierarchical workload: covering should keep remote tables far
  // smaller than the subscription count.
  BrokerOverlay overlay = line4();
  ScbrWorkload workload({.attribute_universe = 6,
                         .attributes_per_filter = 2,
                         .value_range = 1000,
                         .width_fraction = 0.3,
                         .hierarchy_fraction = 0.9,
                         .parent_pool = 256},
                        3);
  for (SubscriptionId id = 1; id <= 500; ++id) {
    ASSERT_TRUE(overlay.subscribe(3, id, workload.next_filter()).ok());
  }
  // Broker 0 is three hops from every subscriber; its routing table
  // should hold only the uncovered "frontier".
  EXPECT_LT(overlay.remote_entries(0), 200u);
  EXPECT_GT(overlay.stats().subscriptions_suppressed, 300u);
}

// --------------------------------------------------------- Topology validation
//
// Regressions: the constructor used to accept any link list. Out-of-range
// ids indexed brokers_ out of bounds (UB), and a cycle made
// propagate()/retract()/route() recurse forever. Both are now rejected at
// construction; the overlay stays inert and every operation returns the
// validation error.

Filter any_filter() {
  Filter f;
  f.where("a", Op::kGe, Value::of(std::int64_t{0}));
  return f;
}

TEST(OverlayTopology, RejectsCycle) {
  BrokerOverlay overlay(3, {{0, 1}, {1, 2}, {2, 0}});
  ASSERT_FALSE(overlay.topology().ok());
  EXPECT_EQ(overlay.topology().error().code, ErrorCode::kInvalidArgument);

  // Every op surfaces the same typed error instead of recursing forever.
  EXPECT_EQ(overlay.subscribe(0, 1, any_filter()).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(overlay.unsubscribe(0, 1).error().code, ErrorCode::kInvalidArgument);
  Event e;
  e.set("a", std::int64_t{1});
  EXPECT_EQ(overlay.publish(0, e).error().code, ErrorCode::kInvalidArgument);
}

TEST(OverlayTopology, RejectsOutOfRangeBrokerId) {
  BrokerOverlay overlay(2, {{0, 5}});
  ASSERT_FALSE(overlay.topology().ok());
  EXPECT_EQ(overlay.topology().error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(overlay.topology().error().message.find("5"), std::string::npos);
}

TEST(OverlayTopology, RejectsSelfLoopAndDuplicateLink) {
  EXPECT_FALSE(BrokerOverlay(3, {{1, 1}}).topology().ok());
  EXPECT_FALSE(BrokerOverlay(3, {{0, 1}, {1, 0}}).topology().ok());  // same edge
  EXPECT_FALSE(BrokerOverlay(3, {{0, 1}, {0, 1}}).topology().ok());
}

TEST(OverlayTopology, AcceptsForestAndDisconnectedBrokers) {
  // A forest (two components + an isolated broker) is a legal overlay.
  BrokerOverlay overlay(5, {{0, 1}, {2, 3}});
  ASSERT_TRUE(overlay.topology().ok());
  ASSERT_TRUE(overlay.subscribe(1, 1, any_filter()).ok());
  Event e;
  e.set("a", std::int64_t{1});
  auto hits = overlay.publish(0, e);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);  // reaches broker 1 through the tree
  auto misses = overlay.publish(4, e);  // isolated broker: no path
  ASSERT_TRUE(misses.ok());
  EXPECT_TRUE(misses->empty());
  EXPECT_EQ(overlay.remote_entries(99), 0u);  // out of range: 0, not UB
}

}  // namespace
}  // namespace securecloud::scbr
