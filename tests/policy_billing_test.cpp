// Attestation policy (TCB recovery), billing, and router state
// persistence tests.
#include <gtest/gtest.h>

#include "container/billing.hpp"
#include "scbr/poset_engine.hpp"
#include "scbr/router.hpp"
#include "sgx/platform.hpp"
#include "sgx/counters.hpp"
#include "sgx/policy.hpp"

namespace securecloud {
namespace {

using crypto::DeterministicEntropy;

sgx::EnclaveImage image_with(const std::string& name, std::uint64_t signer_seed,
                             std::uint64_t prod_id = 1, std::uint64_t svn = 1) {
  sgx::EnclaveImage image;
  image.name = name;
  image.code = to_bytes("code:" + name);
  image.isv_prod_id = prod_id;
  image.isv_svn = svn;
  DeterministicEntropy entropy(signer_seed);
  sign_image(image, crypto::ed25519_keypair(entropy.array<32>()));
  return image;
}

// ------------------------------------------------------- AttestationPolicy

struct PolicyFixture {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  PolicyFixture() { platform.provision(attestation); }

  sgx::Quote quote_of(sgx::Enclave& enclave) {
    auto q = platform.quote(enclave.create_report(sgx::ReportData{}));
    EXPECT_TRUE(q.ok());
    return *q;
  }
};

TEST(AttestationPolicy, AllowsByMrEnclave) {
  PolicyFixture fx;
  auto enclave = fx.platform.create_enclave(image_with("svc", 1));
  ASSERT_TRUE(enclave.ok());

  sgx::AttestationPolicy policy;
  policy.allow_enclave((*enclave)->mrenclave());
  auto r = verify_with_policy(fx.attestation, fx.quote_of(**enclave), policy);
  EXPECT_TRUE(r.ok());
}

TEST(AttestationPolicy, AllowsBySigner) {
  PolicyFixture fx;
  auto a = fx.platform.create_enclave(image_with("svc-a", 1));
  auto b = fx.platform.create_enclave(image_with("svc-b", 1));  // same signer
  auto c = fx.platform.create_enclave(image_with("svc-c", 2));  // other signer
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  sgx::AttestationPolicy policy;
  policy.allow_signer((*a)->mrsigner());
  EXPECT_TRUE(verify_with_policy(fx.attestation, fx.quote_of(**a), policy).ok());
  EXPECT_TRUE(verify_with_policy(fx.attestation, fx.quote_of(**b), policy).ok());
  EXPECT_FALSE(verify_with_policy(fx.attestation, fx.quote_of(**c), policy).ok());
}

TEST(AttestationPolicy, SvnFloorImplementsTcbRecovery) {
  PolicyFixture fx;
  auto vulnerable = fx.platform.create_enclave(image_with("svc", 1, 1, /*svn=*/2));
  auto patched = fx.platform.create_enclave(image_with("svc", 1, 1, /*svn=*/3));
  ASSERT_TRUE(vulnerable.ok() && patched.ok());

  sgx::AttestationPolicy policy;
  policy.allow_signer((*patched)->mrsigner()).require_min_svn(3);
  EXPECT_FALSE(verify_with_policy(fx.attestation, fx.quote_of(**vulnerable), policy).ok());
  EXPECT_TRUE(verify_with_policy(fx.attestation, fx.quote_of(**patched), policy).ok());
}

TEST(AttestationPolicy, ProductLineEnforced) {
  PolicyFixture fx;
  auto router = fx.platform.create_enclave(image_with("router", 1, /*prod=*/7));
  auto other = fx.platform.create_enclave(image_with("other", 1, /*prod=*/8));
  ASSERT_TRUE(router.ok() && other.ok());

  sgx::AttestationPolicy policy;
  policy.allow_signer((*router)->mrsigner()).require_product(7);
  EXPECT_TRUE(verify_with_policy(fx.attestation, fx.quote_of(**router), policy).ok());
  EXPECT_FALSE(verify_with_policy(fx.attestation, fx.quote_of(**other), policy).ok());
}

TEST(AttestationPolicy, EmptyPolicyAllowsNothing) {
  PolicyFixture fx;
  auto enclave = fx.platform.create_enclave(image_with("svc", 1));
  ASSERT_TRUE(enclave.ok());
  sgx::AttestationPolicy policy;  // nothing allowed
  EXPECT_FALSE(verify_with_policy(fx.attestation, fx.quote_of(**enclave), policy).ok());
}

// ----------------------------------------------------------------- Billing

TEST(Billing, PricesResources) {
  container::ContainerMonitor monitor;
  monitor.record("acme/web-1", {.at_cycles = 0,
                                .cpu_cycles = 10'000'000'000,  // 10 B cycles
                                .mem_bytes = 2'000'000'000,    // 2 GB resident
                                .io_bytes = 5'000'000'000});   // 5 GB
  container::BillingEngine billing;  // default tariff

  const auto line = billing.price_container("acme/web-1", monitor);
  EXPECT_DOUBLE_EQ(line.cpu_cost, 10 * 0.02);
  EXPECT_DOUBLE_EQ(line.io_cost, 5 * 0.01);
  // 2 GB for one 300 s sample = 2 * 300/3600 GB-hours.
  EXPECT_NEAR(line.memory_cost, 2.0 * 300 / 3600 * 0.005, 1e-9);
  EXPECT_GT(line.total(), 0);
}

TEST(Billing, UnknownContainerBillsZero) {
  container::ContainerMonitor monitor;
  container::BillingEngine billing;
  EXPECT_DOUBLE_EQ(billing.price_container("ghost", monitor).total(), 0);
}

TEST(Billing, InvoicesGroupByTenant) {
  container::ContainerMonitor monitor;
  monitor.record("acme/web-1", {.at_cycles = 0, .cpu_cycles = 1'000'000'000, .mem_bytes = 0, .io_bytes = 0});
  monitor.record("acme/db-1", {.at_cycles = 0, .cpu_cycles = 2'000'000'000, .mem_bytes = 0, .io_bytes = 0});
  monitor.record("globex/web-1", {.at_cycles = 0, .cpu_cycles = 4'000'000'000, .mem_bytes = 0, .io_bytes = 0});
  monitor.record("orphan-1", {.at_cycles = 0, .cpu_cycles = 1'000'000'000, .mem_bytes = 0, .io_bytes = 0});

  container::BillingEngine billing;
  const auto invoices = billing.generate_invoices(
      monitor, {"acme/web-1", "acme/db-1", "globex/web-1", "orphan-1"});
  ASSERT_EQ(invoices.size(), 3u);  // acme, default, globex (sorted)

  const auto* acme = &invoices[0];
  EXPECT_EQ(acme->tenant, "acme");
  EXPECT_EQ(acme->lines.size(), 2u);
  EXPECT_NEAR(acme->total(), 3 * 0.02, 1e-9);
  EXPECT_EQ(invoices[1].tenant, "default");
  EXPECT_EQ(invoices[2].tenant, "globex");
  EXPECT_NEAR(invoices[2].total(), 4 * 0.02, 1e-9);
}

TEST(Billing, TenantParsing) {
  EXPECT_EQ(container::tenant_of("acme/web-1"), "acme");
  EXPECT_EQ(container::tenant_of("web-1"), "default");
  EXPECT_EQ(container::tenant_of("a/b/c"), "a");
}

// ------------------------------------------------ Router state persistence

struct RouterPersistenceFixture {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  DeterministicEntropy entropy{90};
  scbr::KeyService keys{attestation, entropy};
  sgx::Enclave* enclave = nullptr;

  RouterPersistenceFixture() {
    platform.provision(attestation);
    auto created = platform.create_enclave(image_with("router", 5));
    EXPECT_TRUE(created.ok());
    enclave = *created;
    keys.authorize_router(enclave->mrenclave());
  }
};

TEST(RouterPersistence, StateSurvivesRestart) {
  RouterPersistenceFixture fx;
  auto alice = fx.keys.register_client("alice");
  auto bob = fx.keys.register_client("bob");

  Bytes sealed;
  {
    scbr::ScbrRouter router(*fx.enclave, std::make_unique<scbr::PosetEngine>());
    ASSERT_TRUE(router.provision(fx.keys).ok());
    scbr::Filter f;
    f.where("temp", scbr::Op::kGt, scbr::Value::of(std::int64_t{30}));
    ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, f, 1)).ok());
    sealed = router.seal_state();
  }

  // "Restarted" router: fresh engine, restored subscriptions.
  scbr::ScbrRouter restarted(*fx.enclave, std::make_unique<scbr::PosetEngine>());
  ASSERT_TRUE(restarted.provision(fx.keys).ok());
  ASSERT_TRUE(restarted.restore_state(sealed).ok());
  EXPECT_EQ(restarted.engine().size(), 1u);

  scbr::Event e;
  e.set("temp", std::int64_t{40});
  auto deliveries = restarted.publish("alice", encrypt_publication(alice, e, 1));
  ASSERT_TRUE(deliveries.ok());
  ASSERT_EQ(deliveries->size(), 1u);
  EXPECT_EQ((*deliveries)[0].subscriber, "bob");
  EXPECT_TRUE(decrypt_delivery(bob, (*deliveries)[0].wire).ok());
}

TEST(RouterPersistence, SubscriptionIdsContinueAfterRestore) {
  RouterPersistenceFixture fx;
  auto bob = fx.keys.register_client("bob");
  scbr::Filter f;
  f.where("x", scbr::Op::kGe, scbr::Value::of(std::int64_t{0}));

  Bytes sealed;
  scbr::SubscriptionId first_id = 0;
  {
    scbr::ScbrRouter router(*fx.enclave, std::make_unique<scbr::PosetEngine>());
    ASSERT_TRUE(router.provision(fx.keys).ok());
    auto id = router.subscribe("bob", encrypt_subscription(bob, f, 1));
    ASSERT_TRUE(id.ok());
    first_id = *id;
    sealed = router.seal_state();
  }
  scbr::ScbrRouter restarted(*fx.enclave, std::make_unique<scbr::PosetEngine>());
  ASSERT_TRUE(restarted.provision(fx.keys).ok());
  ASSERT_TRUE(restarted.restore_state(sealed).ok());
  auto second = restarted.subscribe("bob", encrypt_subscription(bob, f, 2));
  ASSERT_TRUE(second.ok());
  EXPECT_GT(*second, first_id);  // no id reuse after restore
}

TEST(RouterPersistence, TamperedStateRejected) {
  RouterPersistenceFixture fx;
  auto bob = fx.keys.register_client("bob");
  scbr::ScbrRouter router(*fx.enclave, std::make_unique<scbr::PosetEngine>());
  ASSERT_TRUE(router.provision(fx.keys).ok());
  scbr::Filter f;
  f.where("x", scbr::Op::kGe, scbr::Value::of(std::int64_t{0}));
  ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, f, 1)).ok());

  Bytes sealed = router.seal_state();
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(router.restore_state(sealed).ok());
  // Failed restore must not clobber the live table.
  EXPECT_EQ(router.engine().size(), 1u);
}

TEST(RouterPersistence, DifferentRouterBuildCannotRestore) {
  RouterPersistenceFixture fx;
  auto bob = fx.keys.register_client("bob");
  scbr::ScbrRouter router(*fx.enclave, std::make_unique<scbr::PosetEngine>());
  ASSERT_TRUE(router.provision(fx.keys).ok());
  scbr::Filter f;
  f.where("x", scbr::Op::kGe, scbr::Value::of(std::int64_t{0}));
  ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, f, 1)).ok());
  const Bytes sealed = router.seal_state();

  // A different (e.g. trojaned) router build on the same platform.
  auto other = fx.platform.create_enclave(image_with("evil-router", 6));
  ASSERT_TRUE(other.ok());
  fx.keys.authorize_router((*other)->mrenclave());
  scbr::ScbrRouter impostor(**other, std::make_unique<scbr::PosetEngine>());
  ASSERT_TRUE(impostor.provision(fx.keys).ok());
  EXPECT_FALSE(impostor.restore_state(sealed).ok());
}

TEST(RouterPersistence, MonotonicCounterDefeatsSnapshotRollback) {
  // Composition: router state sealed through VersionedSealedState. The
  // host keeps every sealed snapshot; replaying an old one after a newer
  // persist is detected even though the old blob unseals correctly.
  RouterPersistenceFixture fx;
  auto bob = fx.keys.register_client("bob");
  sgx::MonotonicCounterService counters;
  sgx::VersionedSealedState state(*fx.enclave, counters);

  scbr::ScbrRouter router(*fx.enclave, std::make_unique<scbr::PosetEngine>());
  ASSERT_TRUE(router.provision(fx.keys).ok());
  scbr::Filter f;
  f.where("x", scbr::Op::kGe, scbr::Value::of(std::int64_t{0}));
  ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, f, 1)).ok());
  // Snapshot v1 (one subscription), then v2 (two).
  auto v1 = state.persist(router.seal_state());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, f, 2)).ok());
  auto v2 = state.persist(router.seal_state());
  ASSERT_TRUE(v2.ok());

  // Restart from the current snapshot: works.
  auto current = state.restore(*v2);
  ASSERT_TRUE(current.ok());
  scbr::ScbrRouter restarted(*fx.enclave, std::make_unique<scbr::PosetEngine>());
  ASSERT_TRUE(restarted.provision(fx.keys).ok());
  ASSERT_TRUE(restarted.restore_state(*current).ok());
  EXPECT_EQ(restarted.engine().size(), 2u);

  // Restart from the stale snapshot: the counter exposes the rollback
  // (plain seal_state alone could not — v1 still unseals fine).
  auto rollback = state.restore(*v1);
  ASSERT_FALSE(rollback.ok());
  EXPECT_EQ(rollback.error().code, ErrorCode::kProtocolError);
}

}  // namespace
}  // namespace securecloud
