// Robustness suite: adversarial and pathological corners across layers
// that the per-module suites do not reach.
#include <gtest/gtest.h>

#include "bigdata/kvstore.hpp"
#include "bigdata/transfer.hpp"
#include "container/engine.hpp"
#include "microservice/service.hpp"
#include "genpack/simulator.hpp"
#include "scbr/overlay.hpp"
#include "sgx/platform.hpp"

namespace securecloud {
namespace {

using crypto::DeterministicEntropy;

// ----------------------------------------------------------- quote attacks

TEST(Robustness, QuotePlatformIdSwapRejected) {
  // Two genuine platforms; a quote signed by A but re-labeled as B must
  // fail (B's key does not verify A's signature).
  sgx::PlatformConfig ca, cb;
  ca.platform_id = "a";
  ca.entropy_seed = 1;
  cb.platform_id = "b";
  cb.entropy_seed = 2;
  sgx::Platform pa(ca), pb(cb);
  sgx::AttestationService ias;
  pa.provision(ias);
  pb.provision(ias);

  sgx::EnclaveImage image;
  image.name = "svc";
  image.code = to_bytes("code");
  DeterministicEntropy signer(3);
  sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
  auto enclave = pa.create_enclave(image);
  ASSERT_TRUE(enclave.ok());

  auto quote = pa.quote((*enclave)->create_report(sgx::ReportData{}));
  ASSERT_TRUE(quote.ok());
  ASSERT_TRUE(ias.verify(*quote).ok());

  sgx::Quote relabeled = *quote;
  relabeled.platform_id = "b";
  auto r = ias.verify(relabeled);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kAttestationFailure);
}

TEST(Robustness, QuoteReportDataTamperRejected) {
  sgx::Platform platform;
  sgx::AttestationService ias;
  platform.provision(ias);
  sgx::EnclaveImage image;
  image.name = "svc";
  image.code = to_bytes("code");
  DeterministicEntropy signer(4);
  sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
  auto enclave = platform.create_enclave(image);
  ASSERT_TRUE(enclave.ok());

  auto quote = platform.quote((*enclave)->create_report(
      sgx::report_data_from_hash(crypto::Sha256::hash(to_bytes("honest")))));
  ASSERT_TRUE(quote.ok());
  sgx::Quote tampered = *quote;
  tampered.report.report_data[0] ^= 1;  // rebind to a different channel
  EXPECT_FALSE(ias.verify(tampered).ok());
}

// ------------------------------------------------------- event bus bounds

TEST(Robustness, DrainBoundsInfinitePingPong) {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  platform.provision(attestation);
  DeterministicEntropy entropy(5);
  scbr::KeyService keys(attestation, entropy);
  sgx::EnclaveImage image;
  image.name = "bus";
  image.code = to_bytes("bus");
  DeterministicEntropy signer(6);
  sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
  auto enclave = platform.create_enclave(image);
  ASSERT_TRUE(enclave.ok());
  keys.authorize_router((*enclave)->mrenclave());

  microservice::EventBus bus(**enclave, keys);
  microservice::MicroService ping(bus, "ping");
  microservice::MicroService pong(bus, "pong");
  ASSERT_TRUE(bus.start().ok());

  // Mutual subscriptions that re-publish forever.
  scbr::Filter pings, pongs;
  pings.where("kind", scbr::Op::kEq, scbr::Value::of(std::string("ping")));
  pongs.where("kind", scbr::Op::kEq, scbr::Value::of(std::string("pong")));
  int handled = 0;
  ASSERT_TRUE(pong.on(pings, [&](const scbr::Event&) {
                    ++handled;
                    scbr::Event e;
                    e.set("kind", "pong");
                    (void)pong.emit(e);
                  })
                  .ok());
  ASSERT_TRUE(ping.on(pongs, [&](const scbr::Event&) {
                    ++handled;
                    scbr::Event e;
                    e.set("kind", "ping");
                    (void)ping.emit(e);
                  })
                  .ok());

  scbr::Event first;
  first.set("kind", "ping");
  ASSERT_TRUE(ping.emit(first).ok());
  // An unbounded cascade must terminate at the round bound.
  const std::size_t invocations = bus.drain(/*max_rounds=*/10);
  EXPECT_EQ(invocations, 10u);
  EXPECT_EQ(handled, 10);
}

// ---------------------------------------------------- overlay stats/shape

TEST(Robustness, OverlayStarForwardingCounts) {
  scbr::BrokerOverlay overlay(4, {{0, 1}, {0, 2}, {0, 3}});
  scbr::Filter f;
  f.where("x", scbr::Op::kGe, scbr::Value::of(std::int64_t{0}));
  ASSERT_TRUE(overlay.subscribe(1, 1, f).ok());
  // Propagates 1->0, then 0->2 and 0->3: three forwards.
  EXPECT_EQ(overlay.stats().subscriptions_forwarded, 3u);
  EXPECT_EQ(overlay.remote_entries(0), 1u);  // learned via link to 1
  EXPECT_EQ(overlay.remote_entries(2), 1u);
}

// -------------------------------------------------------- container paths

TEST(Robustness, ExitedContainerCanRunAgain) {
  container::Registry registry;
  container::ContainerMonitor monitor;
  container::ContainerEngine engine(registry, monitor);
  container::Layer layer;
  layer.files["/state"] = to_bytes("0");
  container::ImageManifest manifest;
  manifest.name = "restartable";
  manifest.layer_digests.push_back(registry.push_layer(layer));
  ASSERT_TRUE(registry.push_manifest(manifest).ok());

  auto cont = engine.create("restartable:latest");
  ASSERT_TRUE(cont.ok());
  auto bump = [](scone::UntrustedFileSystem& fs) -> Result<Bytes> {
    auto v = fs.read_file("/state");
    if (!v.ok()) return v.error();
    const int n = std::stoi(securecloud::to_string(*v)) + 1;
    SC_RETURN_IF_ERROR(fs.write_file("/state", to_bytes(std::to_string(n))));
    return to_bytes(std::to_string(n));
  };
  auto r1 = engine.run(**cont, bump);
  auto r2 = engine.run(**cont, bump);  // rootfs persists across runs
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(securecloud::to_string(*r2), "2");
}

TEST(Robustness, WhiteoutThenReAddInLaterLayer) {
  container::Layer base, mid, top;
  base.files["/cfg"] = to_bytes("v1");
  mid.whiteouts.push_back("/cfg");
  top.files["/cfg"] = to_bytes("v3");
  scone::UntrustedFileSystem rootfs;
  container::materialize_rootfs({base, mid, top}, rootfs);
  auto v = rootfs.read_file("/cfg");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(securecloud::to_string(*v), "v3");
}

// ------------------------------------------------------------ data layers

TEST(Robustness, KvStoreEmptyValueRoundTrip) {
  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy(7);
  bigdata::SecureKvStore store(storage, Bytes(16, 1), "ns", entropy);
  ASSERT_TRUE(store.put("empty", {}).ok());
  auto v = store.get("empty");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
}

TEST(Robustness, TransferEmptyPayload) {
  bigdata::SecureTransferSender sender(Bytes(16, 2), 9);
  bigdata::SecureTransferReceiver receiver(Bytes(16, 2), 9);
  const auto chunks = sender.send({});
  ASSERT_EQ(chunks.size(), 1u);  // single (empty) final chunk
  auto r = receiver.receive(chunks[0]);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_TRUE((*r)->empty());
}

TEST(Robustness, TransferCrossStreamReplayRejected) {
  bigdata::SecureTransferSender sender_a(Bytes(16, 3), 1);
  bigdata::SecureTransferReceiver receiver_b(Bytes(16, 3), 2);  // stream 2
  const auto chunks = sender_a.send(Bytes(100, 0x11));
  // Same key, wrong stream id: AAD binding rejects.
  EXPECT_FALSE(receiver_b.receive(chunks[0]).ok());
}

// ----------------------------------------------------------- genpack edges

TEST(Robustness, TraceWithoutBatchJobs) {
  genpack::TraceConfig config;
  config.batch_arrivals_per_hour = 0;
  config.system_containers = 2;
  config.service_containers = 3;
  const auto trace = genpack::generate_trace(config, 1);
  EXPECT_EQ(trace.size(), 5u);
  genpack::FirstFitScheduler ff;
  const auto report = genpack::ClusterSimulator(4).run(trace, ff);
  EXPECT_EQ(report.placed, 5u);
  EXPECT_DOUBLE_EQ(report.interference_container_hours, 0.0);
}

TEST(Robustness, SingleServerClusterGenPackStillWorks) {
  genpack::GenPackScheduler genpack(1);
  genpack::ClusterSimulator sim(1);
  genpack::TraceConfig config;
  config.system_containers = 1;
  config.service_containers = 2;
  config.batch_arrivals_per_hour = 5;
  config.max_cpu_cores = 1.0;
  config.max_mem_gb = 1.0;
  const auto trace = genpack::generate_trace(config, 2);
  const auto report = sim.run(trace, genpack);
  EXPECT_GT(report.placed, 0u);  // overflow path places on the only host
}

}  // namespace
}  // namespace securecloud
