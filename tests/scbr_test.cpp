// SCBR tests: values/constraints, filter matching + containment, both
// matching engines (equivalence + pruning), the secure router
// (encryption, signatures, authorization), and the workload generator.
#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "scbr/naive_engine.hpp"
#include "scbr/poset_engine.hpp"
#include "scbr/router.hpp"
#include "scbr/sharded_engine.hpp"
#include "scbr/workload.hpp"
#include "sgx/platform.hpp"

namespace securecloud::scbr {
namespace {

using crypto::DeterministicEntropy;

// -------------------------------------------------------------------- Value

TEST(Value, TypedComparisons) {
  EXPECT_TRUE(Value::of(std::int64_t{5}) == Value::of(5.0));  // cross-numeric
  EXPECT_TRUE(Value::of(std::int64_t{3}) < Value::of(3.5));
  EXPECT_TRUE(Value::of(std::string("a")) < Value::of(std::string("b")));
  EXPECT_FALSE(Value::of(std::string("5")) == Value::of(std::int64_t{5}));
  EXPECT_FALSE(Value::of(std::string("x")).comparable(Value::of(std::int64_t{1})));
}

TEST(Value, SerializationRoundTrip) {
  for (const Value& v : {Value::of(std::int64_t{-42}), Value::of(2.75),
                         Value::of(std::string("hello"))}) {
    Bytes b;
    v.serialize_to(b);
    ByteReader r(b);
    auto parsed = Value::deserialize(r);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(*parsed == v);
  }
}

TEST(Constraint, AllOperators) {
  const Value ten = Value::of(std::int64_t{10});
  EXPECT_TRUE((Constraint{"a", Op::kEq, ten}.matches(Value::of(std::int64_t{10}))));
  EXPECT_FALSE((Constraint{"a", Op::kEq, ten}.matches(Value::of(std::int64_t{11}))));
  EXPECT_TRUE((Constraint{"a", Op::kNe, ten}.matches(Value::of(std::int64_t{11}))));
  EXPECT_TRUE((Constraint{"a", Op::kLt, ten}.matches(Value::of(std::int64_t{9}))));
  EXPECT_FALSE((Constraint{"a", Op::kLt, ten}.matches(Value::of(std::int64_t{10}))));
  EXPECT_TRUE((Constraint{"a", Op::kLe, ten}.matches(Value::of(std::int64_t{10}))));
  EXPECT_TRUE((Constraint{"a", Op::kGt, ten}.matches(Value::of(std::int64_t{11}))));
  EXPECT_TRUE((Constraint{"a", Op::kGe, ten}.matches(Value::of(std::int64_t{10}))));
  EXPECT_FALSE((Constraint{"a", Op::kGe, ten}.matches(Value::of(std::int64_t{9}))));
}

// ------------------------------------------------------------------- Filter

TEST(Filter, ConjunctionSemantics) {
  Filter f;
  f.where("temp", Op::kGe, Value::of(std::int64_t{20}))
      .where("temp", Op::kLe, Value::of(std::int64_t{30}))
      .where("city", Op::kEq, Value::of(std::string("zurich")));

  Event in_range;
  in_range.set("temp", std::int64_t{25});
  in_range.set("city", "zurich");
  EXPECT_TRUE(f.matches(in_range));

  Event wrong_city = in_range;
  wrong_city.set("city", "basel");
  EXPECT_FALSE(f.matches(wrong_city));

  Event missing_attr;
  missing_attr.set("temp", std::int64_t{25});
  EXPECT_FALSE(f.matches(missing_attr));  // absent attribute fails
}

TEST(Filter, MatchCountsComparisons) {
  Filter f;
  f.where("a", Op::kGe, Value::of(std::int64_t{0}))
      .where("b", Op::kGe, Value::of(std::int64_t{0}));
  Event e;
  e.set("a", std::int64_t{1});
  e.set("b", std::int64_t{1});
  std::uint64_t comparisons = 0;
  EXPECT_TRUE(f.matches(e, &comparisons));
  EXPECT_EQ(comparisons, 2u);

  // Short-circuits on first failure.
  Event bad;
  bad.set("a", std::int64_t{-1});
  bad.set("b", std::int64_t{1});
  comparisons = 0;
  EXPECT_FALSE(f.matches(bad, &comparisons));
  EXPECT_EQ(comparisons, 1u);
}

TEST(Filter, CoversRangeContainment) {
  Filter broad, narrow;
  broad.where("x", Op::kGe, Value::of(std::int64_t{0}))
      .where("x", Op::kLe, Value::of(std::int64_t{100}));
  narrow.where("x", Op::kGe, Value::of(std::int64_t{10}))
      .where("x", Op::kLe, Value::of(std::int64_t{90}));
  EXPECT_TRUE(broad.covers(narrow));
  EXPECT_FALSE(narrow.covers(broad));
  EXPECT_TRUE(broad.covers(broad));
}

TEST(Filter, CoversEqualityPin) {
  Filter range, pin;
  range.where("x", Op::kGe, Value::of(std::int64_t{0}))
      .where("x", Op::kLe, Value::of(std::int64_t{100}));
  pin.where("x", Op::kEq, Value::of(std::int64_t{50}));
  EXPECT_TRUE(range.covers(pin));
  EXPECT_FALSE(pin.covers(range));

  Filter pin_outside;
  pin_outside.where("x", Op::kEq, Value::of(std::int64_t{200}));
  EXPECT_FALSE(range.covers(pin_outside));
}

TEST(Filter, CoversStrictnessMatters) {
  Filter open_filter, closed;
  open_filter.where("x", Op::kGt, Value::of(std::int64_t{10}));
  closed.where("x", Op::kGe, Value::of(std::int64_t{10}));
  EXPECT_TRUE(closed.covers(open_filter));   // (10,inf) ⊆ [10,inf)
  EXPECT_FALSE(open_filter.covers(closed));  // 10 itself not admitted
}

TEST(Filter, CoversRequiresAttributeConstrainedInInner) {
  Filter outer, inner;
  outer.where("x", Op::kGe, Value::of(std::int64_t{0}));
  inner.where("y", Op::kGe, Value::of(std::int64_t{0}));
  // inner admits events without attribute x; outer does not.
  EXPECT_FALSE(outer.covers(inner));
  // More attributes constrained = narrower.
  Filter both;
  both.where("x", Op::kGe, Value::of(std::int64_t{5}))
      .where("y", Op::kGe, Value::of(std::int64_t{5}));
  EXPECT_TRUE(outer.covers(both));
}

TEST(Filter, CoversStringEquality) {
  Filter any_city, zurich;
  any_city.where("city", Op::kNe, Value::of(std::string("geneva")));
  zurich.where("city", Op::kEq, Value::of(std::string("zurich")));
  EXPECT_TRUE(any_city.covers(zurich));
  Filter geneva;
  geneva.where("city", Op::kEq, Value::of(std::string("geneva")));
  EXPECT_FALSE(any_city.covers(geneva));
}

TEST(Filter, CoversIsSoundOnRandomPairs) {
  // Soundness property: whenever covers() says yes, every matching event
  // of the inner filter must match the outer one.
  ScbrWorkload workload({.attribute_universe = 4,
                         .attributes_per_filter = 2,
                         .value_range = 50,
                         .width_fraction = 0.5,
                         .hierarchy_fraction = 0.6,
                         .parent_pool = 64},
                        7);
  std::vector<Filter> filters;
  for (int i = 0; i < 60; ++i) filters.push_back(workload.next_filter());

  Rng rng(3);
  std::uint64_t cover_pairs = 0;
  for (const auto& outer : filters) {
    for (const auto& inner : filters) {
      if (!outer.covers(inner)) continue;
      ++cover_pairs;
      for (int trial = 0; trial < 40; ++trial) {
        Event e;
        for (int a = 0; a < 4; ++a) {
          e.set("attr" + std::to_string(a), rng.uniform_in(0, 50));
        }
        if (inner.matches(e)) {
          EXPECT_TRUE(outer.matches(e)) << "covers() unsound";
        }
      }
    }
  }
  EXPECT_GT(cover_pairs, 60u);  // hierarchy produces plenty of containment
}

// Minimized regressions for covers() type confusion. Constraint::matches
// is type-gated — a numeric constraint never matches a string event value
// and vice versa, for every operator including != — so a != of one kind
// cannot cover a range of the other kind, and a string bound must not
// leak into the numeric interval as 0.
TEST(Filter, CoversRejectsKindMismatchedNe) {
  Filter not_foo, ge5;
  not_foo.where("x", Op::kNe, Value::of(std::string("foo")));
  ge5.where("x", Op::kGe, Value::of(std::int64_t{5}));
  Event e;
  e.set("x", std::int64_t{7});
  EXPECT_TRUE(ge5.matches(e));
  EXPECT_FALSE(not_foo.matches(e));  // 7 is not comparable to "foo"
  EXPECT_FALSE(not_foo.covers(ge5));

  Filter not_five, is_bar;
  not_five.where("x", Op::kNe, Value::of(std::int64_t{5}));
  is_bar.where("x", Op::kEq, Value::of(std::string("bar")));
  Event s;
  s.set("x", "bar");
  EXPECT_TRUE(is_bar.matches(s));
  EXPECT_FALSE(not_five.matches(s));
  EXPECT_FALSE(not_five.covers(is_bar));
}

TEST(Filter, CoversStringBoundIsNotNumericZero) {
  Filter below_z, minus_five;
  below_z.where("x", Op::kLt, Value::of(std::string("z")));
  minus_five.where("x", Op::kEq, Value::of(std::int64_t{-5}));
  Event e;
  e.set("x", std::int64_t{-5});
  EXPECT_TRUE(minus_five.matches(e));
  EXPECT_FALSE(below_z.matches(e));  // numeric -5 not comparable to "z"
  EXPECT_FALSE(below_z.covers(minus_five));
}

TEST(Filter, CoversStringRangeContainment) {
  // Lexicographic bounds participate in containment instead of being
  // conservatively rejected (or mis-modelled as numeric zeroes).
  Filter broad, narrow;
  broad.where("s", Op::kGe, Value::of(std::string("b")))
      .where("s", Op::kLe, Value::of(std::string("x")));
  narrow.where("s", Op::kGe, Value::of(std::string("c")))
      .where("s", Op::kLt, Value::of(std::string("m")));
  EXPECT_TRUE(broad.covers(narrow));
  EXPECT_FALSE(narrow.covers(broad));
  Filter edge;
  edge.where("s", Op::kGt, Value::of(std::string("b")));
  EXPECT_TRUE(broad.covers(broad));
  EXPECT_FALSE(edge.covers(broad));  // "b" itself admitted only by broad
}

TEST(Filter, CoversSoundnessFuzzMixedTypes) {
  // Seeded property fuzz across all six operators with int, double, and
  // string values sharing attribute names, so kind collisions, boundary
  // strictness, and non-finite values are exercised:
  //   covers(f, g) && g.matches(e)  ⟹  f.matches(e).
  Rng rng(0xC0BE5);
  const std::array<Op, 6> ops = {Op::kEq, Op::kNe, Op::kLt,
                                 Op::kLe, Op::kGt, Op::kGe};
  const std::array<const char*, 2> attrs = {"x", "y"};

  auto random_value = [&rng]() {
    switch (rng.uniform(6)) {
      case 0: return Value::of(rng.uniform_in(-3, 3));
      case 1: return Value::of(static_cast<double>(rng.uniform_in(-6, 6)) / 2.0);
      case 2:
        return Value::of(std::string(1, static_cast<char>('a' + rng.uniform(4))));
      case 3:
        return Value::of(std::numeric_limits<double>::infinity() *
                         (rng.chance(0.5) ? 1.0 : -1.0));
      case 4: return Value::of(std::numeric_limits<double>::quiet_NaN());
      default: return Value::of(rng.uniform_in(-40, 40));
    }
  };
  auto random_filter = [&]() {
    Filter f;
    const std::uint64_t n = 1 + rng.uniform(3);
    for (std::uint64_t i = 0; i < n; ++i) {
      f.where(attrs[rng.uniform(attrs.size())], ops[rng.uniform(ops.size())],
              random_value());
    }
    return f;
  };
  auto describe = [](const Filter& f) {
    std::string out;
    for (const auto& c : f.constraints()) {
      out += c.attribute;
      out += to_string(c.op);
      if (c.value.type() == Value::Type::kString) {
        out += "\"" + c.value.as_string() + "\"";
      } else {
        out += std::to_string(c.value.numeric());
      }
      out += " ";
    }
    return out;
  };

  std::uint64_t cover_pairs = 0;
  std::uint64_t implications_checked = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const Filter f = random_filter();
    const Filter g = random_filter();
    if (!f.covers(g)) continue;
    ++cover_pairs;
    for (int trial = 0; trial < 25; ++trial) {
      Event e;
      for (const char* attr : attrs) {
        if (rng.chance(0.85)) e.attributes[attr] = random_value();
      }
      if (!g.matches(e)) continue;
      ++implications_checked;
      ASSERT_TRUE(f.matches(e))
          << "covers() unsound: outer {" << describe(f) << "} claims to cover {"
          << describe(g) << "} but misses a matching event";
    }
  }
  // The generator must actually produce containment and matching events,
  // or the property above is vacuous.
  EXPECT_GT(cover_pairs, 50u);
  EXPECT_GT(implications_checked, 100u);
}

TEST(Filter, SerializationRoundTrip) {
  Filter f;
  f.where("temp", Op::kGt, Value::of(3.5))
      .where("city", Op::kEq, Value::of(std::string("bern")));
  auto parsed = Filter::deserialize(f.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->constraints().size(), 2u);
  EXPECT_EQ(parsed->constraints()[1].attribute, "city");
}

TEST(Event, SerializationRoundTrip) {
  Event e;
  e.set("a", std::int64_t{1});
  e.set("b", 2.5);
  e.set("c", "three");
  auto parsed = Event::deserialize(e.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed->find("a") == Value::of(std::int64_t{1}));
  EXPECT_TRUE(*parsed->find("c") == Value::of(std::string("three")));
  EXPECT_EQ(parsed->find("zzz"), nullptr);
}

// ------------------------------------------------------------------ Engines

Filter range_filter(const std::string& attr, std::int64_t lo, std::int64_t hi) {
  Filter f;
  f.where(attr, Op::kGe, Value::of(lo)).where(attr, Op::kLe, Value::of(hi));
  return f;
}

Event point_event(const std::string& attr, std::int64_t v) {
  Event e;
  e.set(attr, v);
  return e;
}

TEST(NaiveEngine, MatchesAndUnsubscribes) {
  NaiveEngine engine;
  engine.subscribe(1, range_filter("x", 0, 10));
  engine.subscribe(2, range_filter("x", 5, 15));
  engine.subscribe(3, range_filter("y", 0, 10));

  auto matched = engine.match(point_event("x", 7));
  std::sort(matched.begin(), matched.end());
  EXPECT_EQ(matched, (std::vector<SubscriptionId>{1, 2}));

  EXPECT_TRUE(engine.unsubscribe(2));
  EXPECT_FALSE(engine.unsubscribe(2));
  matched = engine.match(point_event("x", 7));
  EXPECT_EQ(matched, (std::vector<SubscriptionId>{1}));
  EXPECT_EQ(engine.size(), 2u);
}

TEST(PosetEngine, BuildsContainmentHierarchy) {
  PosetEngine engine;
  engine.subscribe(1, range_filter("x", 0, 100));   // root
  engine.subscribe(2, range_filter("x", 10, 90));   // child of 1
  engine.subscribe(3, range_filter("x", 20, 80));   // child of 2
  engine.subscribe(4, range_filter("y", 0, 10));    // separate root

  EXPECT_EQ(engine.root_count(), 2u);
  EXPECT_EQ(engine.max_depth(), 3u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(PosetEngine, AdoptsCoveredSiblingsOnInsert) {
  PosetEngine engine;
  engine.subscribe(1, range_filter("x", 10, 20));
  engine.subscribe(2, range_filter("x", 30, 40));
  EXPECT_EQ(engine.root_count(), 2u);
  // A broad filter covering both becomes their parent.
  engine.subscribe(3, range_filter("x", 0, 100));
  EXPECT_EQ(engine.root_count(), 1u);
  EXPECT_EQ(engine.max_depth(), 2u);
  EXPECT_TRUE(engine.check_invariants());
}

TEST(PosetEngine, PruningSkipsCoveredSubtrees) {
  PosetEngine engine;
  engine.subscribe(1, range_filter("x", 0, 10));
  for (SubscriptionId id = 2; id <= 50; ++id) {
    engine.subscribe(id, range_filter("x", 1, 5));  // all under 1
  }
  engine.reset_stats();
  // Event outside the root range: only the root is inspected.
  auto matched = engine.match(point_event("x", 999));
  EXPECT_TRUE(matched.empty());
  EXPECT_EQ(engine.stats().nodes_visited, 1u);
}

TEST(PosetEngine, UnsubscribeSplicesChildren) {
  PosetEngine engine;
  engine.subscribe(1, range_filter("x", 0, 100));
  engine.subscribe(2, range_filter("x", 10, 90));
  engine.subscribe(3, range_filter("x", 20, 80));
  ASSERT_TRUE(engine.unsubscribe(2));  // middle node
  EXPECT_TRUE(engine.check_invariants());

  auto matched = engine.match(point_event("x", 50));
  std::sort(matched.begin(), matched.end());
  EXPECT_EQ(matched, (std::vector<SubscriptionId>{1, 3}));
}

TEST(PosetEngine, MatchesEquivalentToNaiveOnRandomWorkload) {
  ScbrWorkload workload({.attribute_universe = 6,
                         .attributes_per_filter = 2,
                         .value_range = 200,
                         .width_fraction = 0.4,
                         .hierarchy_fraction = 0.5,
                         .parent_pool = 128},
                        11);
  NaiveEngine naive;
  PosetEngine poset;
  for (SubscriptionId id = 1; id <= 300; ++id) {
    const Filter f = workload.next_filter();
    naive.subscribe(id, f);
    poset.subscribe(id, f);
  }
  ASSERT_TRUE(poset.check_invariants());

  for (int i = 0; i < 200; ++i) {
    const Event e = workload.next_event();
    auto a = naive.match(e);
    auto b = poset.match(e);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "engines disagree on event " << i;
  }
}

TEST(PosetEngine, EquivalenceSurvivesChurn) {
  ScbrWorkload workload({.attribute_universe = 5,
                         .attributes_per_filter = 2,
                         .value_range = 100,
                         .width_fraction = 0.5,
                         .hierarchy_fraction = 0.6,
                         .parent_pool = 64},
                        13);
  NaiveEngine naive;
  PosetEngine poset;
  Rng rng(17);
  std::vector<SubscriptionId> live;
  SubscriptionId next_id = 1;

  for (int round = 0; round < 500; ++round) {
    if (live.empty() || rng.chance(0.7)) {
      const Filter f = workload.next_filter();
      naive.subscribe(next_id, f);
      poset.subscribe(next_id, f);
      live.push_back(next_id++);
    } else {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform(live.size()));
      const SubscriptionId id = live[pick];
      EXPECT_TRUE(naive.unsubscribe(id));
      EXPECT_TRUE(poset.unsubscribe(id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 50 == 0) {
      ASSERT_TRUE(poset.check_invariants()) << "round " << round;
      const Event e = workload.next_event();
      auto a = naive.match(e);
      auto b = poset.match(e);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "round " << round;
    }
  }
}

TEST(PosetEngine, FewerComparisonsThanNaiveOnHierarchicalWorkload) {
  ScbrWorkload workload({.attribute_universe = 8,
                         .attributes_per_filter = 3,
                         .value_range = 1000,
                         .width_fraction = 0.2,
                         .hierarchy_fraction = 0.8,
                         .parent_pool = 512},
                        19);
  NaiveEngine naive;
  PosetEngine poset;
  for (SubscriptionId id = 1; id <= 2000; ++id) {
    const Filter f = workload.next_filter();
    naive.subscribe(id, f);
    poset.subscribe(id, f);
  }
  for (int i = 0; i < 100; ++i) {
    const Event e = workload.next_event();
    (void)naive.match(e);
    (void)poset.match(e);
  }
  EXPECT_LT(poset.stats().nodes_visited, naive.stats().nodes_visited / 2)
      << "poset should prune at least half the inspections";
}

TEST(Engines, DatabaseBytesTracksSubscriptions) {
  NaiveEngine engine;
  EXPECT_EQ(engine.database_bytes(), 0u);
  engine.subscribe(1, range_filter("x", 0, 10));
  const std::size_t one = engine.database_bytes();
  EXPECT_GT(one, 0u);
  engine.subscribe(2, range_filter("x", 0, 10));
  EXPECT_EQ(engine.database_bytes(), 2 * one);
  engine.unsubscribe(1);
  EXPECT_EQ(engine.database_bytes(), one);
}

// ----------------------------------------------------------- Sharded engine

TEST(ShardedEngine, EquivalentToNaiveUnderChurn) {
  ScbrWorkload workload({.attribute_universe = 6,
                         .attributes_per_filter = 2,
                         .value_range = 200,
                         .width_fraction = 0.4,
                         .hierarchy_fraction = 0.6,
                         .parent_pool = 128},
                        23);
  NaiveEngine naive;
  ShardedPosetEngine sharded;
  Rng rng(29);
  std::vector<SubscriptionId> live;
  SubscriptionId next_id = 1;

  for (int round = 0; round < 600; ++round) {
    if (live.empty() || rng.chance(0.7)) {
      const Filter f = workload.next_filter();
      naive.subscribe(next_id, f);
      sharded.subscribe(next_id, f);
      live.push_back(next_id++);
    } else {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform(live.size()));
      const SubscriptionId id = live[pick];
      EXPECT_TRUE(naive.unsubscribe(id));
      EXPECT_TRUE(sharded.unsubscribe(id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 60 == 0) {
      ASSERT_TRUE(sharded.check_invariants()) << "round " << round;
      const Event e = workload.next_event();
      auto a = naive.match(e);
      auto b = sharded.match(e);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "round " << round;
      EXPECT_EQ(sharded.matches_any(e), !a.empty()) << "round " << round;
    }
  }
  EXPECT_EQ(sharded.size(), live.size());
  EXPECT_GT(sharded.shard_count(), 1u);
}

TEST(ShardedEngine, CoveredByAnyCrossesShards) {
  ShardedPosetEngine engine;
  // Coverer over {x} lives in a different shard than probes over {x,y}.
  Filter broad;
  broad.where("x", Op::kGe, Value::of(std::int64_t{0}))
      .where("x", Op::kLe, Value::of(std::int64_t{100}));
  engine.subscribe(1, broad);

  Filter narrow;
  narrow.where("x", Op::kGe, Value::of(std::int64_t{10}))
      .where("x", Op::kLe, Value::of(std::int64_t{20}))
      .where("y", Op::kEq, Value::of(std::int64_t{5}));
  EXPECT_TRUE(engine.covered_by_any(narrow));

  Filter outside;
  outside.where("x", Op::kGe, Value::of(std::int64_t{200}))
      .where("y", Op::kEq, Value::of(std::int64_t{5}));
  EXPECT_FALSE(engine.covered_by_any(outside));

  Filter other_attr;
  other_attr.where("z", Op::kEq, Value::of(std::int64_t{1}));
  EXPECT_FALSE(engine.covered_by_any(other_attr));

  EXPECT_TRUE(engine.unsubscribe(1));
  EXPECT_FALSE(engine.covered_by_any(narrow));
}

TEST(ShardedEngine, FindAndForEachAreDeterministic) {
  ShardedPosetEngine engine;
  engine.subscribe(7, range_filter("a", 0, 10));
  engine.subscribe(3, range_filter("b", 0, 10));
  engine.subscribe(5, range_filter("a", 2, 8));
  ASSERT_NE(engine.find(7), nullptr);
  EXPECT_EQ(engine.find(99), nullptr);

  std::vector<SubscriptionId> seen;
  engine.for_each([&](SubscriptionId id, const Filter&) { seen.push_back(id); });
  // Shards iterate in signature order ("a" before "b"), slots in
  // insertion order within a shard.
  EXPECT_EQ(seen, (std::vector<SubscriptionId>{7, 5, 3}));
}

// ------------------------------------------------------------------- Router

struct RouterFixture {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  DeterministicEntropy entropy{55};
  KeyService keys{attestation, entropy};

  sgx::Enclave* enclave = nullptr;

  RouterFixture() {
    platform.provision(attestation);
    sgx::EnclaveImage image;
    image.name = "scbr-router";
    image.code = to_bytes("router-binary");
    DeterministicEntropy signer(808);
    sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
    auto created = platform.create_enclave(image);
    EXPECT_TRUE(created.ok());
    enclave = *created;
    keys.authorize_router(enclave->mrenclave());
  }

  // The router owns RCU cells (epoch domains pin their address), so it is
  // neither movable nor copyable; the fixture keeps each one alive.
  std::vector<std::unique_ptr<ScbrRouter>> routers;

  ScbrRouter& make_router() {
    routers.push_back(
        std::make_unique<ScbrRouter>(*enclave, std::make_unique<PosetEngine>()));
    EXPECT_TRUE(routers.back()->provision(keys).ok());
    return *routers.back();
  }
};

TEST(Router, EndToEndEncryptedPubSub) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  auto bob = fx.keys.register_client("bob");
  ScbrRouter& router = fx.make_router();

  // Bob subscribes to temperature alerts.
  Filter f = range_filter("temp", 30, 100);
  auto sub = router.subscribe("bob", encrypt_subscription(bob, f, 1));
  ASSERT_TRUE(sub.ok());

  // Alice publishes a matching event.
  Event e;
  e.set("temp", std::int64_t{42});
  e.set("meter", "m-17");
  auto deliveries = router.publish("alice", encrypt_publication(alice, e, 1));
  ASSERT_TRUE(deliveries.ok());
  ASSERT_EQ(deliveries->size(), 1u);
  EXPECT_EQ((*deliveries)[0].subscriber, "bob");

  // Bob decrypts his delivery; Alice's key cannot.
  auto received = decrypt_delivery(bob, (*deliveries)[0].wire);
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(*received->find("temp") == Value::of(std::int64_t{42}));
  EXPECT_FALSE(decrypt_delivery(alice, (*deliveries)[0].wire).ok());
}

TEST(Router, NonMatchingEventNotDelivered) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  auto bob = fx.keys.register_client("bob");
  ScbrRouter& router = fx.make_router();
  ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, range_filter("temp", 30, 100), 1)).ok());

  Event cold;
  cold.set("temp", std::int64_t{10});
  auto deliveries = router.publish("alice", encrypt_publication(alice, cold, 1));
  ASSERT_TRUE(deliveries.ok());
  EXPECT_TRUE(deliveries->empty());
}

TEST(Router, RejectsUnknownClient) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  ScbrRouter& router = fx.make_router();  // provisioned before mallory joins

  ClientCredentials mallory;
  mallory.name = "mallory";
  mallory.symmetric_key = Bytes(16, 0x66);
  DeterministicEntropy me(666);
  mallory.signing_key = crypto::ed25519_keypair(me.array<32>());

  auto r = router.subscribe("mallory", encrypt_subscription(mallory, range_filter("x", 0, 1), 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kPermissionDenied);
}

TEST(Router, RejectsTamperedPublication) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  ScbrRouter& router = fx.make_router();
  Event e;
  e.set("temp", std::int64_t{42});
  Bytes wire = encrypt_publication(alice, e, 1);
  wire[wire.size() / 2] ^= 1;
  auto r = router.publish("alice", wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
}

TEST(Router, RejectsForgedSignature) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  ScbrRouter& router = fx.make_router();

  // Attacker knows Alice's symmetric key (e.g. leaked) but not her
  // signing key: publication must still be rejected.
  ClientCredentials forged = alice;
  DeterministicEntropy fe(4242);
  forged.signing_key = crypto::ed25519_keypair(fe.array<32>());
  Event e;
  e.set("cmd", "open-breaker");
  auto r = router.publish("alice", encrypt_publication(forged, e, 9));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
}

TEST(Router, UnsubscribeEnforcesOwnership) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  auto bob = fx.keys.register_client("bob");
  ScbrRouter& router = fx.make_router();
  auto sub = router.subscribe("bob", encrypt_subscription(bob, range_filter("x", 0, 1), 1));
  ASSERT_TRUE(sub.ok());
  EXPECT_FALSE(router.unsubscribe("alice", *sub).ok());
  EXPECT_TRUE(router.unsubscribe("bob", *sub).ok());
  EXPECT_FALSE(router.unsubscribe("bob", *sub).ok());
}

TEST(Router, UnauthorizedEnclaveCannotBeProvisioned) {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  platform.provision(attestation);
  DeterministicEntropy entropy(77);
  KeyService keys(attestation, entropy);
  // No authorize_router() call: a valid enclave, but not a router build.
  sgx::EnclaveImage image;
  image.name = "impostor";
  image.code = to_bytes("not-a-router");
  DeterministicEntropy signer(9);
  sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
  auto enclave = platform.create_enclave(image);
  ASSERT_TRUE(enclave.ok());

  ScbrRouter router(**enclave, std::make_unique<PosetEngine>());
  auto r = router.provision(keys);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kPermissionDenied);
}

TEST(Router, RejectsReplayedPublication) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  auto bob = fx.keys.register_client("bob");
  ScbrRouter& router = fx.make_router();
  ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, range_filter("temp", 0, 100), 1)).ok());

  Event e;
  e.set("temp", std::int64_t{42});
  const Bytes wire = encrypt_publication(alice, e, 5);
  auto first = router.publish("alice", wire);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 1u);

  // Captured wire replayed verbatim: rejected, no duplicate delivery.
  auto replay = router.publish("alice", wire);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, ErrorCode::kProtocolError);

  // Stale (lower) counters are rejected too.
  auto stale = router.publish("alice", encrypt_publication(alice, e, 3));
  EXPECT_FALSE(stale.ok());
  // Fresh counters keep working.
  EXPECT_TRUE(router.publish("alice", encrypt_publication(alice, e, 6)).ok());
}

TEST(Router, ReplayedSubscriptionRejected) {
  RouterFixture fx;
  auto bob = fx.keys.register_client("bob");
  ScbrRouter& router = fx.make_router();
  const Bytes wire = encrypt_subscription(bob, range_filter("x", 0, 1), 7);
  ASSERT_TRUE(router.subscribe("bob", wire).ok());
  EXPECT_FALSE(router.subscribe("bob", wire).ok());
  EXPECT_EQ(router.engine().size(), 1u);  // no duplicate subscription
}

TEST(Router, CounterSpacesPerClientIndependent) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  auto carol = fx.keys.register_client("carol");
  ScbrRouter& router = fx.make_router();
  Event e;
  e.set("x", std::int64_t{1});
  // Both clients can use counter 1: replay state is per client.
  EXPECT_TRUE(router.publish("alice", encrypt_publication(alice, e, 1)).ok());
  EXPECT_TRUE(router.publish("carol", encrypt_publication(carol, e, 1)).ok());
}

TEST(Router, MetricsTrackOperationsAndAttacks) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  auto bob = fx.keys.register_client("bob");
  ScbrRouter& router = fx.make_router();

  ASSERT_TRUE(router.subscribe("bob", encrypt_subscription(bob, range_filter("x", 0, 100), 1)).ok());
  Event e;
  e.set("x", std::int64_t{5});
  const Bytes wire = encrypt_publication(alice, e, 1);
  ASSERT_TRUE(router.publish("alice", wire).ok());
  (void)router.publish("alice", wire);  // replay
  Bytes tampered = encrypt_publication(alice, e, 2);
  tampered[tampered.size() / 2] ^= 1;
  (void)router.publish("alice", tampered);  // auth failure

  const RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.subscriptions, 1u);
  EXPECT_EQ(m.publications, 1u);
  EXPECT_EQ(m.deliveries, 1u);
  EXPECT_EQ(m.replays_blocked, 1u);
  EXPECT_EQ(m.auth_failures, 1u);
}

TEST(Router, SubscribeBatchMatchesSequentialAtAnyThreadCount) {
  // The same mixed batch — valid subscriptions, a tampered wire, a
  // replayed counter, an unknown client — must produce identical ids,
  // metrics, and engine state whether applied via subscribe() calls,
  // an inline batch, or a pooled batch.
  RouterFixture fx;
  auto bob = fx.keys.register_client("bob");
  auto carol = fx.keys.register_client("carol");

  std::vector<ScbrRouter::SubscribeRequest> batch;
  for (std::uint64_t i = 0; i < 8; ++i) {
    batch.push_back({i % 2 ? "bob" : "carol",
                     encrypt_subscription(i % 2 ? bob : carol,
                                          range_filter("x", 10 * i, 10 * i + 100),
                                          i / 2 + 1)});
  }
  batch[3].wire[batch[3].wire.size() / 2] ^= 1;          // tampered
  batch.push_back({"bob", batch[1].wire});               // replayed counter
  batch.push_back({"mallory", batch[0].wire});           // unknown client

  ScbrRouter& sequential = fx.make_router();
  std::vector<Result<SubscriptionId>> want;
  for (const auto& req : batch) {
    want.push_back(sequential.subscribe(req.client, req.wire));
  }

  common::ThreadPool pool(4);
  for (common::ThreadPool* p : {static_cast<common::ThreadPool*>(nullptr), &pool}) {
    ScbrRouter& batched = fx.make_router();
    auto got = batched.subscribe_batch(batch, p);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].ok(), want[i].ok()) << "slot " << i;
      if (want[i].ok()) {
        EXPECT_EQ(*got[i], *want[i]) << "slot " << i;
      } else {
        EXPECT_EQ(got[i].error().code, want[i].error().code) << "slot " << i;
      }
    }
    EXPECT_EQ(batched.engine().size(), sequential.engine().size());
    EXPECT_EQ(batched.metrics().subscriptions, sequential.metrics().subscriptions);
    EXPECT_EQ(batched.metrics().auth_failures, sequential.metrics().auth_failures);
    EXPECT_EQ(batched.metrics().replays_blocked,
              sequential.metrics().replays_blocked);

    // The installed table routes: a publication matches the same set.
    Event e;
    e.set("x", std::int64_t{15});
    auto deliveries =
        batched.publish("carol", encrypt_publication(carol, e, 50 + (p != nullptr)));
    ASSERT_TRUE(deliveries.ok());
    auto want_deliveries = sequential.publish(
        "carol", encrypt_publication(carol, e, 50 + (p != nullptr)));
    ASSERT_TRUE(want_deliveries.ok());
    ASSERT_EQ(deliveries->size(), want_deliveries->size());
    for (std::size_t d = 0; d < deliveries->size(); ++d) {
      EXPECT_EQ((*deliveries)[d].subscription, (*want_deliveries)[d].subscription);
      EXPECT_EQ((*deliveries)[d].subscriber, (*want_deliveries)[d].subscriber);
    }
  }
}

TEST(Router, WireCarriesNoPlaintext) {
  RouterFixture fx;
  auto alice = fx.keys.register_client("alice");
  Event e;
  e.set("customer", "ACME-CORP-SECRET");
  const Bytes wire = encrypt_publication(alice, e, 1);
  const std::string s(wire.begin(), wire.end());
  EXPECT_EQ(s.find("ACME-CORP-SECRET"), std::string::npos);
}

// ----------------------------------------------------------------- Workload

TEST(Workload, HierarchyFractionProducesContainment) {
  ScbrWorkload workload({.attribute_universe = 8,
                         .attributes_per_filter = 3,
                         .value_range = 1000,
                         .width_fraction = 0.3,
                         .hierarchy_fraction = 1.0,  // everything narrows
                         .parent_pool = 100},
                        23);
  std::vector<Filter> filters;
  for (int i = 0; i < 50; ++i) filters.push_back(workload.next_filter());
  // Each filter after the first must be covered by at least one other.
  std::size_t covered = 0;
  for (std::size_t i = 1; i < filters.size(); ++i) {
    for (std::size_t j = 0; j < filters.size(); ++j) {
      if (i != j && filters[j].covers(filters[i])) {
        ++covered;
        break;
      }
    }
  }
  EXPECT_EQ(covered, filters.size() - 1);
}

TEST(Workload, EventsCoverAttributeUniverse) {
  ScbrWorkload workload({.attribute_universe = 5,
                         .attributes_per_filter = 2,
                         .value_range = 10,
                         .width_fraction = 0.5,
                         .hierarchy_fraction = 0.0,
                         .parent_pool = 10},
                        29);
  const Event e = workload.next_event();
  EXPECT_EQ(e.attributes.size(), 5u);
  for (const auto& [name, value] : e.attributes) {
    EXPECT_GE(value.as_int(), 0);
    EXPECT_LE(value.as_int(), 10);
  }
}

TEST(Workload, DeterministicForSameSeed) {
  WorkloadConfig config;
  ScbrWorkload a(config, 99), b(config, 99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_filter().serialize(), b.next_filter().serialize());
    EXPECT_EQ(a.next_event().serialize(), b.next_event().serialize());
  }
}

}  // namespace
}  // namespace securecloud::scbr
