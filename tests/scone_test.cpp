// SCONE runtime tests: untrusted FS, SPSC ring, syscall shielding,
// FS protection (tamper/rollback), SCF delivery, stdio, user threading,
// and the full runtime startup flow.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/rng.hpp"
#include "scone/fs_protection.hpp"
#include "scone/ring_buffer.hpp"
#include "scone/runtime.hpp"
#include "scone/scf.hpp"
#include "scone/stdio.hpp"
#include "scone/syscall.hpp"
#include "scone/untrusted_fs.hpp"
#include "scone/uthread.hpp"
#include "sgx/platform.hpp"

namespace securecloud::scone {
namespace {

using crypto::DeterministicEntropy;

// ------------------------------------------------------ UntrustedFileSystem

TEST(UntrustedFs, BasicCrud) {
  UntrustedFileSystem fs;
  ASSERT_TRUE(fs.write_file("/a", to_bytes("hello")).ok());
  EXPECT_TRUE(fs.exists("/a"));
  auto r = fs.read_file("/a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "hello");
  ASSERT_TRUE(fs.rename("/a", "/b").ok());
  EXPECT_FALSE(fs.exists("/a"));
  ASSERT_TRUE(fs.remove("/b").ok());
  EXPECT_EQ(fs.file_count(), 0u);
}

TEST(UntrustedFs, ReadMissingFileFails) {
  UntrustedFileSystem fs;
  EXPECT_EQ(fs.read_file("/nope").error().code, ErrorCode::kNotFound);
  EXPECT_FALSE(fs.remove("/nope").ok());
  EXPECT_FALSE(fs.rename("/nope", "/x").ok());
}

TEST(UntrustedFs, PartialReadWrite) {
  UntrustedFileSystem fs;
  ASSERT_TRUE(fs.write_at("/f", 4, to_bytes("data")).ok());
  auto size = fs.size_of("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 8u);
  auto head = fs.read_at("/f", 0, 4);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, Bytes(4, 0));  // zero-filled hole
  auto tail = fs.read_at("/f", 4, 100);  // clamped
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(to_string(*tail), "data");
}

TEST(UntrustedFs, ListByPrefix) {
  UntrustedFileSystem fs;
  (void)fs.write_file("/image/a", to_bytes("1"));
  (void)fs.write_file("/image/b", to_bytes("2"));
  (void)fs.write_file("/other/c", to_bytes("3"));
  EXPECT_EQ(fs.list("/image/").size(), 2u);
  EXPECT_EQ(fs.list().size(), 3u);
}

// ------------------------------------------------------------------ SpscRing

TEST(SpscRing, PushPopOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200'000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kCount) {
      auto v = ring.try_pop();
      if (v) {
        sum += *v;
        ++received;
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    while (!ring.try_push(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  // A capacity of 3 must not alias slot 3 onto slot 0 through the index
  // mask: the constructor rounds up (minimum 2) instead.
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);

  SpscRing<int> ring(3);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full at the rounded capacity
  for (int i = 0; i < 4; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(SpscRing, SizeNeverUnderflowsUnderConcurrentPops) {
  // Regression: size() used to load head_ before tail_, so a pop landing
  // between the two loads made head - tail wrap to ~SIZE_MAX. Loading
  // the consumer cursor first can only miscount racing ops, never
  // underflow — so any observed size in the SIZE_MAX/2 range is the bug.
  SpscRing<std::uint64_t> ring(16);
  constexpr std::uint64_t kCount = 10'000;
  std::atomic<bool> underflow{false};
  std::atomic<bool> done{false};

  // The observer hammers size() in a tight loop — deliberately no yield,
  // so on any core count a preemption can land *between* the two cursor
  // loads while the consumer advances tail_ (the pre-fix failure mode).
  std::thread observer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (ring.size() > SIZE_MAX / 2) {
        underflow.store(true, std::memory_order_relaxed);
      }
    }
  });
  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kCount) {
      if (ring.try_pop()) {
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  done.store(true, std::memory_order_relaxed);
  observer.join();
  EXPECT_FALSE(underflow.load());
}

// ------------------------------------------------------------------ Syscalls

TEST(Syscalls, SyncExecutesAndChargesTransition) {
  UntrustedFileSystem fs;
  SyscallBackend backend(fs);
  SimClock clock;
  sgx::CostModel cost;
  SyncSyscalls sys(backend, clock, cost);

  SyscallRequest w;
  w.op = SyscallOp::kWrite;
  w.path = "/f";
  w.data = to_bytes("abc");
  auto wr = sys.call(w);
  EXPECT_EQ(wr.error, 0);
  EXPECT_EQ(clock.cycles(), cost.ocall_cycles);

  SyscallRequest r;
  r.op = SyscallOp::kRead;
  r.path = "/f";
  r.length = 3;
  auto rr = sys.call(r);
  EXPECT_EQ(rr.error, 0);
  EXPECT_EQ(to_string(rr.data), "abc");
  EXPECT_EQ(clock.cycles(), 2 * cost.ocall_cycles);
}

TEST(Syscalls, AsyncMuchCheaperThanSyncInSimulatedCycles) {
  UntrustedFileSystem fs;
  SyscallBackend backend(fs);
  sgx::CostModel cost;

  SimClock sync_clock, async_clock;
  SyncSyscalls sync_sys(backend, sync_clock, cost);
  {
    AsyncSyscalls async_sys(backend, async_clock);
    for (int i = 0; i < 100; ++i) {
      SyscallRequest nop;
      nop.op = SyscallOp::kNop;
      sync_sys.call(nop);
      async_sys.call(nop);
    }
  }
  EXPECT_GT(sync_clock.cycles(), 10 * async_clock.cycles());
}

TEST(Syscalls, AsyncReturnsCorrectResults) {
  UntrustedFileSystem fs;
  SyscallBackend backend(fs);
  SimClock clock;
  AsyncSyscalls sys(backend, clock);

  SyscallRequest w;
  w.op = SyscallOp::kWrite;
  w.path = "/data";
  w.data = to_bytes("async payload");
  EXPECT_EQ(sys.call(w).error, 0);

  SyscallRequest r;
  r.op = SyscallOp::kRead;
  r.path = "/data";
  r.length = 100;
  auto rr = sys.call(r);
  EXPECT_EQ(rr.error, 0);
  EXPECT_EQ(to_string(rr.data), "async payload");

  SyscallRequest e;
  e.op = SyscallOp::kExists;
  e.path = "/data";
  EXPECT_EQ(sys.call(e).value, 1u);

  SyscallRequest s;
  s.op = SyscallOp::kFileSize;
  s.path = "/data";
  EXPECT_EQ(sys.call(s).value, 13u);
}

TEST(Syscalls, AsyncSubmitPollOverlap) {
  UntrustedFileSystem fs;
  (void)fs.write_file("/f", Bytes(100, 0x55));
  SyscallBackend backend(fs);
  SimClock clock;
  AsyncSyscalls sys(backend, clock);

  // Submit a batch, then poll for all completions.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    SyscallRequest r;
    r.op = SyscallOp::kRead;
    r.path = "/f";
    r.offset = static_cast<std::uint64_t>(i) * 10;
    r.length = 10;
    auto id = sys.submit(r);
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  std::size_t received = 0;
  while (received < ids.size()) {
    if (auto response = sys.poll()) {
      EXPECT_EQ(response->error, 0);
      EXPECT_EQ(response->data.size(), 10u);
      ++received;
    }
  }
}

TEST(Syscalls, ShieldClampsOversizedKernelReply) {
  // A malicious kernel returning more bytes than requested must not be
  // able to overflow the enclave-side buffer.
  UntrustedFileSystem fs;
  SyscallBackend backend(fs);
  SyscallRequest request;
  request.op = SyscallOp::kRead;
  request.length = 4;

  struct Shim : SyscallInterface {
    SyscallResponse call(SyscallRequest r) override {
      SyscallResponse evil;
      evil.id = 999;              // wrong id
      evil.error = -77;           // negative error
      evil.data = Bytes(64, 0xee);  // 16x the requested bytes
      return shield(r, std::move(evil));
    }
  } shim;

  auto shielded = shim.call(request);
  EXPECT_EQ(shielded.id, request.id);
  EXPECT_GE(shielded.error, 0);
  EXPECT_LE(shielded.data.size(), 4u);
}

TEST(Syscalls, ShieldStripsPayloadFromNonReadOps) {
  struct Shim : SyscallInterface {
    SyscallResponse call(SyscallRequest r) override {
      SyscallResponse evil;
      evil.data = Bytes(32, 0xaa);  // write ops must not inject data
      return shield(r, std::move(evil));
    }
  } shim;
  SyscallRequest w;
  w.op = SyscallOp::kWrite;
  EXPECT_TRUE(shim.call(w).data.empty());
}

// ------------------------------------------------------------- FsProtection

struct ProtectedFixture {
  UntrustedFileSystem host;
  DeterministicEntropy entropy{42};

  ShieldedFileSystem make(std::uint32_t chunk_size = 64) {
    FsProtectionBuilder builder(host, entropy, chunk_size);
    return ShieldedFileSystem(host, std::move(builder).take(), entropy);
  }
};

TEST(FsProtection, BuildReadRoundTrip) {
  UntrustedFileSystem host;
  DeterministicEntropy entropy(1);
  FsProtectionBuilder builder(host, entropy, 64);
  const Bytes content = to_bytes(std::string(1000, 'x') + "END");
  ASSERT_TRUE(builder.protect_file("/app/config", content).ok());

  ShieldedFileSystem fs(host, std::move(builder).take(), entropy);
  auto read = fs.read_all("/app/config");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
}

TEST(FsProtection, HostSeesOnlyCiphertext) {
  UntrustedFileSystem host;
  DeterministicEntropy entropy(2);
  FsProtectionBuilder builder(host, entropy, 4096);
  const std::string secret = "TOP-SECRET smart meter aggregation key";
  ASSERT_TRUE(builder.protect_file("/keys", to_bytes(secret)).ok());

  // No stored file contains the plaintext.
  for (const auto& path : host.list()) {
    const auto content = host.read_file(path);
    ASSERT_TRUE(content.ok());
    const std::string haystack(content->begin(), content->end());
    EXPECT_EQ(haystack.find("TOP-SECRET"), std::string::npos) << path;
  }
}

TEST(FsProtection, DetectsChunkTampering) {
  UntrustedFileSystem host;
  DeterministicEntropy entropy(3);
  FsProtectionBuilder builder(host, entropy, 64);
  ASSERT_TRUE(builder.protect_file("/f", Bytes(300, 0x7a)).ok());
  ShieldedFileSystem fs(host, std::move(builder).take(), entropy);

  // Attacker flips one ciphertext byte of chunk 2.
  Bytes* raw = host.raw("/f.chunk.2");
  ASSERT_NE(raw, nullptr);
  (*raw)[10] ^= 0x01;

  auto r = fs.read_all("/f");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);

  // Other chunks are still readable.
  EXPECT_TRUE(fs.read("/f", 0, 64).ok());
}

TEST(FsProtection, DetectsChunkRollback) {
  UntrustedFileSystem host;
  DeterministicEntropy entropy(4);
  FsProtectionBuilder builder(host, entropy, 64);
  ASSERT_TRUE(builder.protect_file("/f", Bytes(64, 0x01)).ok());
  ShieldedFileSystem fs(host, std::move(builder).take(), entropy);

  // Attacker snapshots the (valid) v1 ciphertext...
  const Bytes old_ct = *host.raw("/f.chunk.0");
  // ...the enclave overwrites the chunk (v2)...
  ASSERT_TRUE(fs.write("/f", 0, Bytes(64, 0x02)).ok());
  // ...and the attacker replays the old ciphertext.
  *host.raw("/f.chunk.0") = old_ct;

  auto r = fs.read("/f", 0, 64);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kIntegrityViolation);
}

TEST(FsProtection, DetectsCrossChunkSwap) {
  // Two chunks of the same file swapped in place: AAD binds the index.
  UntrustedFileSystem host;
  DeterministicEntropy entropy(5);
  FsProtectionBuilder builder(host, entropy, 64);
  ASSERT_TRUE(builder.protect_file("/f", Bytes(128, 0x11)).ok());
  ShieldedFileSystem fs(host, std::move(builder).take(), entropy);

  std::swap(*host.raw("/f.chunk.0"), *host.raw("/f.chunk.1"));
  EXPECT_FALSE(fs.read_all("/f").ok());
}

TEST(FsProtection, DetectsCrossFileSwap) {
  // Identical plaintexts in two files still produce unswappable chunks
  // (per-file keys + path in AAD).
  UntrustedFileSystem host;
  DeterministicEntropy entropy(6);
  FsProtectionBuilder builder(host, entropy, 64);
  ASSERT_TRUE(builder.protect_file("/a", Bytes(64, 0x33)).ok());
  ASSERT_TRUE(builder.protect_file("/b", Bytes(64, 0x33)).ok());
  ShieldedFileSystem fs(host, std::move(builder).take(), entropy);

  std::swap(*host.raw("/a.chunk.0"), *host.raw("/b.chunk.0"));
  EXPECT_FALSE(fs.read_all("/a").ok());
  EXPECT_FALSE(fs.read_all("/b").ok());
}

TEST(FsProtection, WriteReadBackAcrossChunkBoundaries) {
  ProtectedFixture fx;
  auto fs = fx.make(64);
  ASSERT_TRUE(fs.create("/state").ok());

  ASSERT_TRUE(fs.write("/state", 0, Bytes(200, 0xaa)).ok());
  // Overwrite spanning chunks 0-2 at an unaligned offset.
  ASSERT_TRUE(fs.write("/state", 50, to_bytes(std::string(100, 'Z'))).ok());

  auto all = fs.read_all("/state");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 200u);
  EXPECT_EQ((*all)[49], 0xaa);
  EXPECT_EQ((*all)[50], 'Z');
  EXPECT_EQ((*all)[149], 'Z');
  EXPECT_EQ((*all)[150], 0xaa);
}

TEST(FsProtection, WritePastEofZeroFills) {
  ProtectedFixture fx;
  auto fs = fx.make(64);
  ASSERT_TRUE(fs.create("/sparse").ok());
  ASSERT_TRUE(fs.write("/sparse", 0, to_bytes("head")).ok());
  ASSERT_TRUE(fs.write("/sparse", 300, to_bytes("tail")).ok());

  auto size = fs.size_of("/sparse");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 304u);

  auto gap = fs.read("/sparse", 100, 50);
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(*gap, Bytes(50, 0));

  auto tail = fs.read("/sparse", 300, 4);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(to_string(*tail), "tail");
}

TEST(FsProtection, WriteAllTruncates) {
  ProtectedFixture fx;
  auto fs = fx.make(64);
  ASSERT_TRUE(fs.create("/t").ok());
  ASSERT_TRUE(fs.write_all("/t", Bytes(500, 0x01)).ok());
  ASSERT_TRUE(fs.write_all("/t", to_bytes("short")).ok());
  auto all = fs.read_all("/t");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(to_string(*all), "short");
}

TEST(FsProtection, RemoveDeletesChunksFromHost) {
  ProtectedFixture fx;
  auto fs = fx.make(64);
  ASSERT_TRUE(fs.create("/tmp").ok());
  ASSERT_TRUE(fs.write_all("/tmp", Bytes(300, 0x5c)).ok());
  EXPECT_GT(fx.host.file_count(), 0u);
  ASSERT_TRUE(fs.remove("/tmp").ok());
  EXPECT_EQ(fx.host.list("/tmp.chunk.").size(), 0u);
  EXPECT_FALSE(fs.exists("/tmp"));
}

TEST(FsProtection, SerializationRoundTrip) {
  UntrustedFileSystem host;
  DeterministicEntropy entropy(7);
  FsProtectionBuilder builder(host, entropy, 128);
  ASSERT_TRUE(builder.protect_file("/x", Bytes(1000, 0x0f)).ok());
  ASSERT_TRUE(builder.protect_file("/y", to_bytes("small")).ok());
  const FsProtection original = std::move(builder).take();

  auto parsed = FsProtection::deserialize(original.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->files.size(), 2u);
  EXPECT_EQ(parsed->files.at("/x").file_size, 1000u);
  EXPECT_EQ(parsed->files.at("/x").chunk_tags, original.files.at("/x").chunk_tags);
}

TEST(FsProtection, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FsProtection::deserialize(Bytes{}).ok());
  EXPECT_FALSE(FsProtection::deserialize(to_bytes("not an fspf")).ok());
  // Truncated valid prefix.
  UntrustedFileSystem host;
  DeterministicEntropy entropy(8);
  FsProtectionBuilder builder(host, entropy);
  ASSERT_TRUE(builder.protect_file("/x", Bytes(100, 1)).ok());
  Bytes wire = builder.protection().serialize();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(FsProtection::deserialize(wire).ok());
}

TEST(FsProtection, SealedFspfRoundTripAndWrongKey) {
  UntrustedFileSystem host;
  DeterministicEntropy entropy(9);
  FsProtectionBuilder builder(host, entropy);
  ASSERT_TRUE(builder.protect_file("/x", Bytes(10, 1)).ok());
  const FsProtection protection = std::move(builder).take();

  const Bytes key = entropy.bytes(32);
  const Bytes sealed = seal_protection_file(protection, key, entropy);
  auto opened = open_protection_file(sealed, key);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->files.size(), 1u);

  const Bytes wrong_key = entropy.bytes(32);
  EXPECT_FALSE(open_protection_file(sealed, wrong_key).ok());
}

TEST(FsProtection, SignedFspfVerifiesAndDetectsTampering) {
  UntrustedFileSystem host;
  DeterministicEntropy entropy(10);
  FsProtectionBuilder builder(host, entropy);
  ASSERT_TRUE(builder.protect_file("/x", Bytes(10, 1)).ok());
  const FsProtection protection = std::move(builder).take();

  const auto signer = crypto::ed25519_keypair(entropy.array<32>());
  Bytes signed_blob = sign_protection_file(protection, signer);
  auto verified = verify_protection_file(signed_blob, signer.public_key);
  ASSERT_TRUE(verified.ok());

  signed_blob[signed_blob.size() / 2] ^= 1;
  EXPECT_FALSE(verify_protection_file(signed_blob, signer.public_key).ok());
}

// -------------------------------------------------------------------- Stdio

TEST(Stdio, WriterReaderRoundTrip) {
  const Bytes key(16, 0x21);
  ProtectedStreamWriter writer(key);
  ProtectedStreamReader reader(key);
  auto r1 = reader.read(writer.write(to_bytes("line one")));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(to_string(*r1), "line one");
  auto r2 = reader.read(writer.write(to_bytes("line two")));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(to_string(*r2), "line two");
}

TEST(Stdio, RejectsReplayAndReorder) {
  const Bytes key(16, 0x21);
  ProtectedStreamWriter writer(key);
  ProtectedStreamReader reader(key);
  const Bytes w1 = writer.write(to_bytes("1"));
  const Bytes w2 = writer.write(to_bytes("2"));
  EXPECT_FALSE(reader.read(w2).ok());  // reorder
  EXPECT_TRUE(reader.read(w1).ok());
  EXPECT_FALSE(reader.read(w1).ok());  // replay
}

TEST(Stdio, WrongKeyFails) {
  ProtectedStreamWriter writer(Bytes(16, 0x01));
  ProtectedStreamReader reader(Bytes(16, 0x02));
  EXPECT_FALSE(reader.read(writer.write(to_bytes("x"))).ok());
}

TEST(Stdio, PipeDeliversInOrder) {
  ProtectedPipe pipe;
  ProtectedStreamWriter writer(Bytes(16, 0x03));
  pipe.push(writer.write(to_bytes("a")));
  pipe.push(writer.write(to_bytes("b")));
  EXPECT_EQ(pipe.pending(), 2u);
  ProtectedStreamReader reader(Bytes(16, 0x03));
  EXPECT_EQ(to_string(*reader.read(*pipe.pop())), "a");
  EXPECT_EQ(to_string(*reader.read(*pipe.pop())), "b");
  EXPECT_FALSE(pipe.pop().has_value());
}

// ----------------------------------------------------------------- UThreads

TEST(UserScheduler, RunsTasksToCompletion) {
  SimClock clock;
  UserScheduler scheduler(clock);
  int a_steps = 0, b_steps = 0;
  scheduler.spawn([&] { return ++a_steps < 3 ? StepResult::kYield : StepResult::kDone; });
  scheduler.spawn([&] { return ++b_steps < 5 ? StepResult::kYield : StepResult::kDone; });
  scheduler.run();
  EXPECT_EQ(a_steps, 3);
  EXPECT_EQ(b_steps, 5);
  EXPECT_EQ(scheduler.runnable(), 0u);
}

TEST(UserScheduler, InterleavesFairly) {
  SimClock clock;
  UserScheduler scheduler(clock);
  std::string trace;
  scheduler.spawn([&] {
    trace += 'a';
    return trace.size() < 6 ? StepResult::kYield : StepResult::kDone;
  });
  scheduler.spawn([&] {
    trace += 'b';
    return trace.size() < 6 ? StepResult::kYield : StepResult::kDone;
  });
  scheduler.run();
  EXPECT_EQ(trace.substr(0, 4), "abab");  // round-robin
}

TEST(UserScheduler, InEnclaveSwitchesFarCheaperThanKernel) {
  SimClock user_clock, kernel_clock;
  UserScheduler user(user_clock, /*in_enclave=*/true);
  UserScheduler kernel(kernel_clock, /*in_enclave=*/false);
  for (int t = 0; t < 4; ++t) {
    auto count = std::make_shared<int>(0);
    user.spawn([count] { return ++*count < 100 ? StepResult::kYield : StepResult::kDone; });
  }
  for (int t = 0; t < 4; ++t) {
    auto count = std::make_shared<int>(0);
    kernel.spawn([count] { return ++*count < 100 ? StepResult::kYield : StepResult::kDone; });
  }
  const auto user_switches = user.run();
  const auto kernel_switches = kernel.run();
  EXPECT_EQ(user_switches, kernel_switches);
  EXPECT_GT(kernel_clock.cycles(), 100 * user_clock.cycles());
}

// ----------------------------------------------------------- SCF + runtime

struct RuntimeFixture {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  DeterministicEntropy entropy{77};
  UntrustedFileSystem host;

  RuntimeFixture() { platform.provision(attestation); }

  sgx::EnclaveImage image(const std::string& name) {
    sgx::EnclaveImage img;
    img.name = name;
    img.code = to_bytes("code:" + name);
    DeterministicEntropy signer_entropy(500);
    sign_image(img, crypto::ed25519_keypair(signer_entropy.array<32>()));
    return img;
  }

  /// Builds a protected image in the host FS + SCF registered for it.
  StartupConfig build_image(const sgx::Measurement& mrenclave,
                            ConfigurationService& service,
                            const std::map<std::string, Bytes>& files) {
    FsProtectionBuilder builder(host, entropy, 256);
    for (const auto& [path, content] : files) {
      EXPECT_TRUE(builder.protect_file(path, content).ok());
    }
    StartupConfig scf;
    scf.fs_protection_key = entropy.bytes(32);
    scf.stdin_key = entropy.bytes(16);
    scf.stdout_key = entropy.bytes(16);
    scf.args = {"--mode=test"};
    scf.env = {{"REGION", "eu-central"}};

    const Bytes sealed =
        seal_protection_file(builder.protection(), scf.fs_protection_key, entropy);
    EXPECT_TRUE(host.write_file(SconeRuntime::kFspfPath, sealed).ok());
    scf.fs_protection_hash = crypto::Sha256::hash(sealed);
    service.register_scf(mrenclave, scf);
    return scf;
  }
};

TEST(Scf, SerializationRoundTrip) {
  StartupConfig scf;
  scf.fs_protection_key = Bytes(32, 0x01);
  scf.fs_protection_hash.fill(0xab);
  scf.stdin_key = Bytes(16, 0x02);
  scf.stdout_key = Bytes(16, 0x03);
  scf.args = {"a", "b"};
  scf.env = {{"K", "V"}};
  auto parsed = StartupConfig::deserialize(scf.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->fs_protection_key, scf.fs_protection_key);
  EXPECT_EQ(parsed->fs_protection_hash, scf.fs_protection_hash);
  EXPECT_EQ(parsed->args, scf.args);
  EXPECT_EQ(parsed->env.at("K"), "V");
}

TEST(Scf, DeliveredOnlyToAttestedEnclave) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("svc"));
  ASSERT_TRUE(enclave.ok());
  fx.build_image((*enclave)->mrenclave(), service, {});

  auto scf = fetch_scf(**enclave, service, fx.platform.entropy());
  ASSERT_TRUE(scf.ok());
  EXPECT_EQ(scf->args.front(), "--mode=test");
}

TEST(Scf, UnregisteredEnclaveDenied) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("unknown-svc"));
  ASSERT_TRUE(enclave.ok());
  // No SCF registered for this measurement.
  auto scf = fetch_scf(**enclave, service, fx.platform.entropy());
  ASSERT_FALSE(scf.ok());
  EXPECT_EQ(scf.error().code, ErrorCode::kPermissionDenied);
}

TEST(Scf, UnprovisionedPlatformDenied) {
  sgx::Platform rogue;  // never provisioned with the attestation service
  sgx::AttestationService attestation;
  DeterministicEntropy entropy(1);
  ConfigurationService service(attestation, entropy);

  sgx::EnclaveImage img;
  img.name = "svc";
  img.code = to_bytes("code");
  DeterministicEntropy se(2);
  sign_image(img, crypto::ed25519_keypair(se.array<32>()));
  auto enclave = rogue.create_enclave(img);
  ASSERT_TRUE(enclave.ok());

  auto scf = fetch_scf(**enclave, service, rogue.entropy());
  ASSERT_FALSE(scf.ok());
  EXPECT_EQ(scf.error().code, ErrorCode::kAttestationFailure);
}

TEST(Scf, QuoteMustBindChannelKey) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("svc"));
  ASSERT_TRUE(enclave.ok());
  fx.build_image((*enclave)->mrenclave(), service, {});

  // MITM: valid quote, but the channel key is the attacker's.
  crypto::ChannelHandshake attacker(crypto::ChannelHandshake::Role::kInitiator,
                                    fx.entropy);
  const auto report = (*enclave)->create_report(
      sgx::report_data_from_hash(crypto::Sha256::hash(to_bytes("something else"))));
  auto quote = fx.platform.quote(report);
  ASSERT_TRUE(quote.ok());
  auto r = service.request_scf(quote->serialize(), attacker.local_public_key());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kAttestationFailure);
}

TEST(Runtime, EndToEndRunWithShieldedState) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("svc"));
  ASSERT_TRUE(enclave.ok());
  const StartupConfig scf = fx.build_image(
      (*enclave)->mrenclave(), service,
      {{"/app/input", to_bytes("7 11 13")}});

  auto outcome = SconeRuntime::run(
      **enclave, fx.host, service, [](AppContext& ctx) -> Result<Bytes> {
        auto input = ctx.fs.read_all("/app/input");
        if (!input.ok()) return input.error();
        ctx.out.print("processing " + to_string(*input));
        // Persist derived state through the shielded FS.
        SC_RETURN_IF_ERROR(ctx.fs.create("/app/output"));
        SC_RETURN_IF_ERROR(ctx.fs.write_all("/app/output", to_bytes("sum=31")));
        return to_bytes("ok:" + ctx.args.front());
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(to_string(outcome->app_result), "ok:--mode=test");

  // stdout records decrypt with the SCF key, in order.
  ProtectedStreamReader reader(scf.stdout_key);
  ASSERT_EQ(outcome->stdout_records.size(), 1u);
  auto line = reader.read(outcome->stdout_records[0]);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(to_string(*line), "processing 7 11 13");

  // The output file exists on the host only as ciphertext.
  bool found_plaintext = false;
  for (const auto& path : fx.host.list()) {
    auto content = fx.host.read_file(path);
    const std::string s(content->begin(), content->end());
    if (s.find("sum=31") != std::string::npos) found_plaintext = true;
  }
  EXPECT_FALSE(found_plaintext);
}

TEST(Runtime, EncryptedStdinDelivered) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("svc"));
  ASSERT_TRUE(enclave.ok());
  const StartupConfig scf = fx.build_image((*enclave)->mrenclave(), service, {});

  // The image owner encrypts stdin records with the SCF stdin key.
  ProtectedStreamWriter stdin_writer(scf.stdin_key);
  std::vector<Bytes> stdin_records;
  stdin_records.push_back(stdin_writer.write(to_bytes("first line")));
  stdin_records.push_back(stdin_writer.write(to_bytes("second line")));

  auto outcome = SconeRuntime::run(
      **enclave, fx.host, service,
      [](AppContext& ctx) -> Result<Bytes> {
        std::string all;
        for (;;) {
          auto record = ctx.in.read();
          if (!record.ok()) return record.error();
          if (!record->has_value()) break;
          all += to_string(**record) + "|";
        }
        return to_bytes(all);
      },
      stdin_records);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(to_string(outcome->app_result), "first line|second line|");
}

TEST(Runtime, TamperedStdinRejectedInsideEnclave) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("svc"));
  ASSERT_TRUE(enclave.ok());
  const StartupConfig scf = fx.build_image((*enclave)->mrenclave(), service, {});

  ProtectedStreamWriter stdin_writer(scf.stdin_key);
  std::vector<Bytes> stdin_records;
  stdin_records.push_back(stdin_writer.write(to_bytes("rm -rf /")));
  stdin_records[0][stdin_records[0].size() / 2] ^= 1;  // host tampers

  auto outcome = SconeRuntime::run(
      **enclave, fx.host, service,
      [](AppContext& ctx) -> Result<Bytes> {
        auto record = ctx.in.read();
        if (!record.ok()) return record.error();  // must hit this path
        return Error::internal("tampered input was delivered");
      },
      stdin_records);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kIntegrityViolation);
}

TEST(Runtime, AbortsOnFspfSubstitution) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("svc"));
  ASSERT_TRUE(enclave.ok());
  fx.build_image((*enclave)->mrenclave(), service, {{"/f", to_bytes("data")}});

  // Attacker swaps the FSPF for an older/different (even validly
  // encrypted) copy: hash check must fail.
  Bytes* fspf = fx.host.raw(SconeRuntime::kFspfPath);
  ASSERT_NE(fspf, nullptr);
  (*fspf)[fspf->size() - 1] ^= 1;

  auto outcome = SconeRuntime::run(**enclave, fx.host, service,
                                   [](AppContext&) -> Result<Bytes> { return Bytes{}; });
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kIntegrityViolation);
}

TEST(Runtime, UpdatedFspfHashReflectsWrites) {
  RuntimeFixture fx;
  ConfigurationService service(fx.attestation, fx.entropy);
  auto enclave = fx.platform.create_enclave(fx.image("svc"));
  ASSERT_TRUE(enclave.ok());
  const StartupConfig scf =
      fx.build_image((*enclave)->mrenclave(), service, {{"/f", to_bytes("v1")}});

  auto outcome = SconeRuntime::run(
      **enclave, fx.host, service, [](AppContext& ctx) -> Result<Bytes> {
        SC_RETURN_IF_ERROR(ctx.fs.write_all("/f", to_bytes("v2")));
        return Bytes{};
      });
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->new_fspf_hash, scf.fs_protection_hash);

  // The stored FSPF matches the returned hash (owner can re-register).
  auto stored = fx.host.read_file(SconeRuntime::kFspfPath);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(crypto::Sha256::hash(*stored), outcome->new_fspf_hash);
}

}  // namespace
}  // namespace securecloud::scone
