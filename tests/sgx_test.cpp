// SGX simulator tests: cache model, EPC residency + secure paging,
// memory models, measurement, enclave lifecycle, sealing, attestation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sgx/attestation.hpp"
#include "sgx/cache_model.hpp"
#include "sgx/enclave.hpp"
#include "sgx/epc.hpp"
#include "sgx/memory_model.hpp"
#include "sgx/platform.hpp"

namespace securecloud::sgx {
namespace {

using crypto::DeterministicEntropy;

// ------------------------------------------------------------- CacheModel

TEST(CacheModel, HitAfterFill) {
  CacheModel cache(64 * 16 * 4, 64, 16);  // 4 sets
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheModel, LruEvictionWithinSet) {
  CacheModel cache(64 * 2 * 1, 64, 2);  // 1 set, 2 ways
  cache.access(0);
  cache.access(64);
  cache.access(0);        // refresh line 0
  cache.access(128);      // evicts line 64 (LRU)
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(64));
}

TEST(CacheModel, WorkingSetLargerThanCacheAlwaysMisses) {
  CacheModel cache(1024, 64, 4);  // 16 lines total
  // Stream over 64 lines twice: second pass must still miss everywhere
  // in a strict-LRU cache (cyclic access defeats LRU).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t line = 0; line < 64; ++line) {
      cache.access(line * 64);
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 128u);
}

TEST(CacheModel, InvalidateRangeDropsLines) {
  CacheModel cache(64 * 16 * 4, 64, 16);
  cache.access(0);
  cache.access(64);
  cache.access(4096);
  cache.invalidate_range(0, 4096);  // first page only
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(64));
  EXPECT_TRUE(cache.access(4096));
}

// ------------------------------------------------------------- EpcManager

CostModel small_epc_cost() {
  CostModel cost;
  cost.epc_size_bytes = 16 * 4096;
  cost.epc_metadata_bytes = 0;
  return cost;
}

TEST(EpcManager, ResidentPagesDoNotFault) {
  const CostModel cost = small_epc_cost();
  SimClock clock;
  EpcManager epc(cost, clock);
  EXPECT_TRUE(epc.touch(0));        // first touch faults
  EXPECT_FALSE(epc.touch(0));       // now resident
  EXPECT_FALSE(epc.touch(100));     // same page
  EXPECT_EQ(epc.stats().faults, 1u);
}

TEST(EpcManager, EvictsLruWhenFull) {
  const CostModel cost = small_epc_cost();  // 16 pages
  SimClock clock;
  EpcManager epc(cost, clock);
  for (std::uint64_t p = 0; p < 16; ++p) epc.touch(p * 4096);
  EXPECT_EQ(epc.resident_pages(), 16u);

  epc.touch(0);            // refresh page 0
  epc.touch(16 * 4096);    // must evict page 1 (LRU), not page 0
  EXPECT_EQ(epc.stats().evictions, 1u);
  ASSERT_EQ(epc.last_evicted().size(), 1u);
  EXPECT_EQ(epc.last_evicted()[0], 1u);

  EXPECT_FALSE(epc.touch(0));      // page 0 still resident
  EXPECT_TRUE(epc.touch(1 * 4096));  // page 1 was evicted
}

TEST(EpcManager, FaultsChargeCycles) {
  const CostModel cost = small_epc_cost();
  SimClock clock;
  EpcManager epc(cost, clock);
  epc.touch(0);
  EXPECT_EQ(clock.cycles(), cost.epc_fault_cycles);
  epc.touch(0);
  EXPECT_EQ(clock.cycles(), cost.epc_fault_cycles);  // hit: free
}

TEST(EpcManager, DirtyEvictionCostsMore) {
  const CostModel cost = small_epc_cost();
  SimClock clean_clock, dirty_clock;
  {
    EpcManager epc(cost, clean_clock);
    for (std::uint64_t p = 0; p <= 16; ++p) epc.touch(p * 4096, /*write=*/false);
  }
  {
    EpcManager epc(cost, dirty_clock);
    for (std::uint64_t p = 0; p <= 16; ++p) epc.touch(p * 4096, /*write=*/true);
  }
  EXPECT_GT(dirty_clock.cycles(), clean_clock.cycles());
}

TEST(EpcManager, RemoveRangeFreesPages) {
  const CostModel cost = small_epc_cost();
  SimClock clock;
  EpcManager epc(cost, clock);
  for (std::uint64_t p = 0; p < 8; ++p) epc.touch(p * 4096);
  epc.remove_range(0, 4 * 4096);
  EXPECT_EQ(epc.resident_pages(), 4u);
}

// -------------------------------------------------------- SecurePageStore

TEST(SecurePageStore, EvictLoadRoundTrip) {
  SecurePageStore store(Bytes(16, 0x42));
  const Bytes page(4096, 0xab);
  store.evict(7, page);
  auto loaded = store.load(7);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, page);
}

TEST(SecurePageStore, DetectsTampering) {
  SecurePageStore store(Bytes(16, 0x42));
  store.evict(7, Bytes(4096, 0xab));
  ASSERT_TRUE(store.tamper_with(7, 100));
  auto loaded = store.load(7);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kIntegrityViolation);
}

TEST(SecurePageStore, DetectsRollback) {
  SecurePageStore store(Bytes(16, 0x42));
  store.evict(7, Bytes(4096, 0x01));  // version 1
  store.evict(7, Bytes(4096, 0x02));  // version 2 (current)
  ASSERT_TRUE(store.rollback_to_previous(7));
  auto loaded = store.load(7);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kProtocolError);
}

TEST(SecurePageStore, DistinctPagesIndependent) {
  SecurePageStore store(Bytes(16, 0x42));
  store.evict(1, Bytes(4096, 0x01));
  store.evict(2, Bytes(4096, 0x02));
  ASSERT_TRUE(store.tamper_with(1, 0));
  EXPECT_FALSE(store.load(1).ok());
  auto ok = store.load(2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0], 0x02);
}

TEST(SecurePageStore, NeverEvictedPageNotFound) {
  SecurePageStore store(Bytes(16, 0x42));
  EXPECT_EQ(store.load(99).error().code, ErrorCode::kNotFound);
}

// ------------------------------------------------------------ MemoryModel

TEST(MemoryModel, EnclaveAccessWithinEpcCostsMoreThanPlainOnlyOnMisses) {
  CostModel cost;
  cost.epc_size_bytes = 1024 * 4096;
  cost.epc_metadata_bytes = 0;
  SimClock plain_clock, enclave_clock;
  PlainMemory plain(cost, plain_clock);
  EnclaveMemory enclave(cost, enclave_clock);

  // Working set fits both LLC and EPC: after warmup, costs are equal
  // (cache hits cost the same inside and outside).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
      plain.access(addr, 8);
      enclave.access(addr, 8);
    }
  }
  // First pass misses make the enclave slower overall...
  EXPECT_GT(enclave_clock.cycles(), plain_clock.cycles());

  // ...but a hot second pass costs the same per access.
  const std::uint64_t p0 = plain_clock.cycles(), e0 = enclave_clock.cycles();
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
    plain.access(addr, 8);
    enclave.access(addr, 8);
  }
  EXPECT_EQ(plain_clock.cycles() - p0, enclave_clock.cycles() - e0);
}

TEST(MemoryModel, WorkingSetBeyondEpcCausesPaging) {
  CostModel cost;
  cost.epc_size_bytes = 64 * 4096;  // tiny EPC: 64 pages
  cost.epc_metadata_bytes = 0;
  SimClock clock;
  EnclaveMemory mem(cost, clock);

  // Stream 128 pages cyclically: every page access faults (LRU thrash).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t p = 0; p < 128; ++p) {
      mem.access(p * 4096, 8);
    }
  }
  EXPECT_EQ(mem.epc_stats().faults, 256u);
}

TEST(MemoryModel, EnclaveOverheadGrowsWithWorkingSet) {
  // The Fig. 3 mechanism in miniature: inside/outside cost ratio is
  // modest while the working set fits the EPC and large once it spills.
  CostModel cost;
  cost.epc_size_bytes = 256 * 4096;  // 1 MiB EPC
  cost.epc_metadata_bytes = 0;
  cost.llc_size_bytes = 64 * 1024;   // 64 KiB LLC so DRAM dominates

  auto measure_ratio = [&](std::size_t working_set_pages) {
    SimClock pc, ec;
    PlainMemory plain(cost, pc);
    EnclaveMemory enclave(cost, ec);
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t addr = rng.uniform(working_set_pages * 4096);
      plain.access(addr, 8);
      enclave.access(addr, 8);
    }
    return static_cast<double>(ec.cycles()) / static_cast<double>(pc.cycles());
  };

  const double fits = measure_ratio(128);     // within EPC
  const double spills = measure_ratio(1024);  // 4x the EPC
  EXPECT_LT(fits, 8.0);
  EXPECT_GT(spills, 2.0 * fits);
}

TEST(MemoryModel, ComputeCyclesChargedEqually) {
  CostModel cost;
  SimClock pc, ec;
  PlainMemory plain(cost, pc);
  EnclaveMemory enclave(cost, ec);
  plain.compute(1000);
  enclave.compute(1000);
  EXPECT_EQ(pc.cycles(), ec.cycles());
}

// ------------------------------------------------------------ Measurement

TEST(Measurement, DeterministicForSameImage) {
  MeasurementBuilder a(8192), b(8192);
  const Bytes page(4096, 0x11);
  a.add_page(0, PageType::kCode, page);
  b.add_page(0, PageType::kCode, page);
  EXPECT_EQ(std::move(a).finalize(), std::move(b).finalize());
}

TEST(Measurement, SensitiveToContentOffsetTypeAndSize) {
  const Bytes page(4096, 0x11);
  Bytes page2 = page;
  page2[0] ^= 1;

  MeasurementBuilder base(8192);
  base.add_page(0, PageType::kCode, page);
  const auto m_base = std::move(base).finalize();

  MeasurementBuilder diff_content(8192);
  diff_content.add_page(0, PageType::kCode, page2);
  EXPECT_NE(std::move(diff_content).finalize(), m_base);

  MeasurementBuilder diff_offset(8192);
  diff_offset.add_page(4096, PageType::kCode, page);
  EXPECT_NE(std::move(diff_offset).finalize(), m_base);

  MeasurementBuilder diff_type(8192);
  diff_type.add_page(0, PageType::kData, page);
  EXPECT_NE(std::move(diff_type).finalize(), m_base);

  MeasurementBuilder diff_size(16384);
  diff_size.add_page(0, PageType::kCode, page);
  EXPECT_NE(std::move(diff_size).finalize(), m_base);
}

// ---------------------------------------------------------------- Enclave

PlatformConfig named_platform(const std::string& id, std::uint64_t seed) {
  PlatformConfig config;
  config.platform_id = id;
  config.entropy_seed = seed;
  return config;
}

EnclaveImage make_test_image(const std::string& name, std::uint64_t key_seed = 1000) {
  EnclaveImage image;
  image.name = name;
  image.code = to_bytes("pretend machine code for " + name);
  image.initial_data = to_bytes("initial data");
  image.heap_size = 64 * 4096;
  DeterministicEntropy entropy(key_seed);
  sign_image(image, crypto::ed25519_keypair(entropy.array<32>()));
  return image;
}

TEST(Enclave, CreateRequiresValidSignature) {
  Platform platform;
  EnclaveImage image = make_test_image("svc");
  auto enclave = platform.create_enclave(image);
  ASSERT_TRUE(enclave.ok());
  EXPECT_EQ((*enclave)->name(), "svc");

  // Tampering with the code after signing must be rejected (EINIT).
  image.code[0] ^= 0xff;
  auto bad = platform.create_enclave(image);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kAttestationFailure);
}

TEST(Enclave, MeasurementIdentifiesImage) {
  Platform platform;
  auto e1 = platform.create_enclave(make_test_image("svc-a"));
  auto e2 = platform.create_enclave(make_test_image("svc-a"));
  auto e3 = platform.create_enclave(make_test_image("svc-b"));
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  EXPECT_EQ((*e1)->mrenclave(), (*e2)->mrenclave());
  EXPECT_NE((*e1)->mrenclave(), (*e3)->mrenclave());
}

TEST(Enclave, EcallDispatchAndUnknownId) {
  Platform platform;
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  Enclave& e = **enclave;

  e.register_ecall(1, [](ByteView arg) -> Result<Bytes> {
    Bytes out(arg.begin(), arg.end());
    std::reverse(out.begin(), out.end());
    return out;
  });

  auto r = e.ecall(1, to_bytes("abc"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "cba");

  EXPECT_FALSE(e.ecall(99, {}).ok());
}

TEST(Enclave, TransitionsChargeCycles) {
  Platform platform;
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  Enclave& e = **enclave;
  e.register_ecall(1, [](ByteView) -> Result<Bytes> { return Bytes{}; });

  const std::uint64_t before = platform.clock().cycles();
  ASSERT_TRUE(e.ecall(1, {}).ok());
  EXPECT_EQ(platform.clock().cycles() - before, platform.cost().ecall_cycles);
  EXPECT_EQ(e.transition_count(), 1u);

  bool ran = false;
  e.ocall([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.transition_count(), 2u);
}

// ---------------------------------------------------------------- Sealing

TEST(Sealing, RoundTripSameEnclave) {
  Platform platform;
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  const Bytes blob = (*enclave)->seal(to_bytes("secret"), SealPolicy::kMrEnclave);
  auto back = (*enclave)->unseal(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(to_string(*back), "secret");
}

TEST(Sealing, MrEnclavePolicyRejectsDifferentEnclave) {
  Platform platform;
  auto e1 = platform.create_enclave(make_test_image("svc-a", 1000));
  auto e2 = platform.create_enclave(make_test_image("svc-b", 1000));
  ASSERT_TRUE(e1.ok() && e2.ok());
  const Bytes blob = (*e1)->seal(to_bytes("secret"), SealPolicy::kMrEnclave);
  EXPECT_FALSE((*e2)->unseal(blob).ok());
}

TEST(Sealing, MrSignerPolicyAllowsSameSigner) {
  Platform platform;
  auto e1 = platform.create_enclave(make_test_image("svc-a", 1000));
  auto e2 = platform.create_enclave(make_test_image("svc-b", 1000));  // same signer
  auto e3 = platform.create_enclave(make_test_image("svc-c", 2000));  // other signer
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());

  const Bytes blob = (*e1)->seal(to_bytes("shared secret"), SealPolicy::kMrSigner);
  auto ok = (*e2)->unseal(blob);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(to_string(*ok), "shared secret");
  EXPECT_FALSE((*e3)->unseal(blob).ok());
}

TEST(Sealing, SealedBlobNotPortableAcrossPlatforms) {
  Platform p1(named_platform("p1", 1));
  Platform p2(named_platform("p2", 2));
  auto e1 = p1.create_enclave(make_test_image("svc"));
  auto e2 = p2.create_enclave(make_test_image("svc"));  // identical enclave!
  ASSERT_TRUE(e1.ok() && e2.ok());
  ASSERT_EQ((*e1)->mrenclave(), (*e2)->mrenclave());

  const Bytes blob = (*e1)->seal(to_bytes("secret"), SealPolicy::kMrEnclave);
  EXPECT_FALSE((*e2)->unseal(blob).ok());  // fuse keys differ
}

TEST(Sealing, RejectsMalformedBlob) {
  Platform platform;
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  EXPECT_FALSE((*enclave)->unseal(Bytes{}).ok());
  EXPECT_FALSE((*enclave)->unseal(Bytes(3, 0x07)).ok());
  Bytes blob = (*enclave)->seal(to_bytes("x"), SealPolicy::kMrEnclave);
  blob[blob.size() - 1] ^= 1;  // corrupt tag
  EXPECT_FALSE((*enclave)->unseal(blob).ok());
}

// ------------------------------------------------------------ Attestation

TEST(Attestation, EndToEndQuoteVerification) {
  Platform platform(named_platform("cloud-host-7", 1));
  AttestationService ias;
  platform.provision(ias);

  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());

  const ReportData rd = report_data_from_hash(crypto::Sha256::hash(to_bytes("channel")));
  const Report report = (*enclave)->create_report(rd);
  auto quote = platform.quote(report);
  ASSERT_TRUE(quote.ok());

  // Relying party verifies via the service and checks identity.
  auto verified = ias.verify(*quote);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified->mrenclave, (*enclave)->mrenclave());
  EXPECT_EQ(verified->report_data, rd);
}

TEST(Attestation, QuoteSurvivesSerialization) {
  Platform platform;
  AttestationService ias;
  platform.provision(ias);
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  auto quote = platform.quote((*enclave)->create_report(ReportData{}));
  ASSERT_TRUE(quote.ok());

  const Bytes wire = quote->serialize();
  auto verified = ias.verify_wire(wire);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified->mrenclave, (*enclave)->mrenclave());
}

TEST(Attestation, RejectsTamperedQuote) {
  Platform platform;
  AttestationService ias;
  platform.provision(ias);
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  auto quote = platform.quote((*enclave)->create_report(ReportData{}));
  ASSERT_TRUE(quote.ok());

  Quote tampered = *quote;
  tampered.report.mrenclave[0] ^= 1;  // claim to be a different enclave
  EXPECT_FALSE(ias.verify(tampered).ok());
}

TEST(Attestation, RejectsUnknownPlatform) {
  Platform rogue(named_platform("rogue", 666));
  AttestationService ias;  // rogue never provisioned
  auto enclave = rogue.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  auto quote = rogue.quote((*enclave)->create_report(ReportData{}));
  ASSERT_TRUE(quote.ok());
  auto r = ias.verify(*quote);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kAttestationFailure);
}

TEST(Attestation, RevokedPlatformRejected) {
  Platform platform(named_platform("p", 1));
  AttestationService ias;
  platform.provision(ias);
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  auto quote = platform.quote((*enclave)->create_report(ReportData{}));
  ASSERT_TRUE(quote.ok());
  ASSERT_TRUE(ias.verify(*quote).ok());
  ias.revoke_platform("p");
  EXPECT_FALSE(ias.verify(*quote).ok());
}

TEST(Attestation, QuotingEnclaveRejectsForeignReport) {
  // A report MAC'd on platform A cannot be quoted by platform B.
  Platform pa(named_platform("a", 1));
  Platform pb(named_platform("b", 2));
  auto enclave = pa.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  const Report report = (*enclave)->create_report(ReportData{});
  auto r = pb.quote(report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kAttestationFailure);
}

TEST(Attestation, MalformedQuoteWireRejected) {
  AttestationService ias;
  EXPECT_FALSE(ias.verify_wire(Bytes{}).ok());
  EXPECT_FALSE(ias.verify_wire(to_bytes("garbage data")).ok());
}

// ---------------------------------------------------------------- Platform

TEST(Platform, EnclaveDestructionFreesEpc) {
  PlatformConfig config;
  config.cost.epc_size_bytes = 256 * 4096;
  config.cost.epc_metadata_bytes = 0;
  Platform platform(config);
  auto enclave = platform.create_enclave(make_test_image("svc"));
  ASSERT_TRUE(enclave.ok());
  const std::uint64_t id = (*enclave)->id();
  EXPECT_GT(platform.memory().epc().resident_pages(), 0u);
  platform.destroy_enclave(id);
  EXPECT_EQ(platform.find_enclave(id), nullptr);
}

TEST(Platform, EnclavesGetDisjointHeaps) {
  Platform platform;
  auto e1 = platform.create_enclave(make_test_image("a"));
  auto e2 = platform.create_enclave(make_test_image("b"));
  ASSERT_TRUE(e1.ok() && e2.ok());
  const auto b1 = (*e1)->heap_base(), s1 = (*e1)->heap_size();
  const auto b2 = (*e2)->heap_base();
  EXPECT_GE(b2, b1 + s1);
}

}  // namespace
}  // namespace securecloud::sgx
