// Smart-grid application tests: meter fleet generation, theft detection
// over secure map/reduce, power-quality monitoring, and fault detection
// with orchestration.
#include <gtest/gtest.h>

#include "smartgrid/fault.hpp"
#include "smartgrid/meter.hpp"
#include "smartgrid/quality.hpp"
#include "smartgrid/theft_detection.hpp"

namespace securecloud::smartgrid {
namespace {

using crypto::DeterministicEntropy;

GridConfig small_grid() {
  GridConfig config;
  config.households = 20;
  config.feeders = 2;
  config.interval_s = 300;  // 5-min granularity keeps tests fast
  config.horizon_s = 24 * 3600;
  return config;
}

// -------------------------------------------------------------------- Meter

TEST(MeterFleet, DeterministicSeries) {
  const MeterFleet a(small_grid(), 7), b(small_grid(), 7);
  const auto sa = a.household_series(3);
  const auto sb = b.household_series(3);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].power_w, sb[i].power_w);
  }
}

TEST(MeterFleet, SeriesShape) {
  const MeterFleet fleet(small_grid(), 7);
  const auto series = fleet.household_series(0);
  EXPECT_EQ(series.size(), 24 * 3600 / 300u);
  for (const auto& r : series) {
    EXPECT_EQ(r.meter_id, "meter-0");
    EXPECT_EQ(r.feeder_id, "feeder-0");
    EXPECT_GT(r.power_w, 0);
    EXPECT_NEAR(r.voltage_v, 230, 25);
  }
}

TEST(MeterFleet, TheftReducesReportedConsumption) {
  GridConfig config = small_grid();
  config.thefts.push_back({.household = 5, .start_s = 12 * 3600, .reported_fraction = 0.3});
  const MeterFleet fleet(config, 7);
  EXPECT_TRUE(fleet.is_thief(5));
  EXPECT_FALSE(fleet.is_thief(4));

  const auto series = fleet.household_series(5);
  double before = 0, after = 0;
  std::size_t n_before = 0, n_after = 0;
  for (const auto& r : series) {
    if (r.timestamp_s < 12 * 3600) {
      before += r.power_w;
      ++n_before;
    } else {
      after += r.power_w;
      ++n_after;
    }
  }
  EXPECT_LT(after / static_cast<double>(n_after),
            0.6 * before / static_cast<double>(n_before));
}

TEST(MeterFleet, QualityEventDepressesVoltageOnFeederOnly) {
  GridConfig config = small_grid();
  config.quality_events.push_back(
      {.feeder = 0, .start_s = 6 * 3600, .duration_s = 3600, .voltage_factor = 0.8});
  const MeterFleet fleet(config, 7);

  const auto affected = fleet.household_series(0);   // feeder-0
  const auto unaffected = fleet.household_series(1); // feeder-1
  for (std::size_t i = 0; i < affected.size(); ++i) {
    const auto t = affected[i].timestamp_s;
    if (t >= 6 * 3600 && t < 7 * 3600) {
      EXPECT_LT(affected[i].voltage_v, 200);
      EXPECT_GT(unaffected[i].voltage_v, 220);
    }
  }
}

TEST(MeterReading, SerializationRoundTrip) {
  MeterReading r;
  r.meter_id = "meter-9";
  r.feeder_id = "feeder-1";
  r.timestamp_s = 12345;
  r.power_w = 432.5;
  r.voltage_v = 229.9;
  auto back = MeterReading::deserialize(r.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->meter_id, "meter-9");
  EXPECT_DOUBLE_EQ(back->power_w, 432.5);
  EXPECT_FALSE(MeterReading::deserialize(to_bytes("junk")).ok());
}

// ---------------------------------------------------------- TheftDetection

TEST(TheftDetection, FlagsInjectedThievesOnly) {
  GridConfig config = small_grid();
  config.thefts.push_back({.household = 3, .start_s = 12 * 3600, .reported_fraction = 0.3});
  config.thefts.push_back({.household = 11, .start_s = 13 * 3600, .reported_fraction = 0.4});
  const MeterFleet fleet(config, 21);

  sgx::Platform platform;
  DeterministicEntropy entropy(22);
  TheftDetector detector(platform, entropy);
  const auto partitions = detector.prepare_partitions(fleet, 4);

  TheftDetectionConfig dconfig;
  dconfig.split_s = 12 * 3600;
  auto report = detector.run(dconfig, partitions);
  ASSERT_TRUE(report.ok());

  const auto quality = evaluate_against_ground_truth(*report, fleet);
  EXPECT_EQ(quality.true_positives, 2u);
  EXPECT_EQ(quality.false_negatives, 0u);
  EXPECT_LE(quality.false_positives, 1u);  // noise tolerance
  EXPECT_EQ(report->findings.size(), fleet.config().households);
  // The thieves have the lowest ratios.
  EXPECT_TRUE(report->findings[0].flagged);
}

TEST(TheftDetection, CleanFleetHasNoFlags) {
  const MeterFleet fleet(small_grid(), 23);
  sgx::Platform platform;
  DeterministicEntropy entropy(24);
  TheftDetector detector(platform, entropy);
  auto report = detector.run({.split_s = 12 * 3600, .ratio_threshold = 0.65,
                              .job = {.num_mappers = 2, .num_reducers = 2}},
                             detector.prepare_partitions(fleet, 2));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->flagged.empty());
}

// ----------------------------------------------------------------- Quality

TEST(QualityMonitor, DetectsSagWithDebounce) {
  QualityMonitor monitor({.nominal_v = 230, .band_fraction = 0.1, .debounce = 3});
  MeterReading r;
  r.feeder_id = "feeder-0";

  // Two out-of-band readings: below debounce, no alert.
  r.voltage_v = 180;
  r.timestamp_s = 10;
  EXPECT_FALSE(monitor.observe(r).has_value());
  r.timestamp_s = 20;
  EXPECT_FALSE(monitor.observe(r).has_value());
  // Third consecutive: alert opens.
  r.timestamp_s = 30;
  auto alert = monitor.observe(r);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->issue, QualityIssue::kSag);
  EXPECT_EQ(alert->feeder_id, "feeder-0");
  EXPECT_EQ(alert->start_s, 30u);

  // Recovery closes it.
  r.voltage_v = 230;
  r.timestamp_s = 40;
  EXPECT_FALSE(monitor.observe(r).has_value());
  ASSERT_EQ(monitor.closed_alerts().size(), 1u);
  EXPECT_EQ(monitor.closed_alerts()[0].end_s, 40u);
  EXPECT_TRUE(monitor.open_alerts().empty());
}

TEST(QualityMonitor, NoiseDoesNotTrigger) {
  QualityMonitor monitor;
  MeterReading r;
  r.feeder_id = "f";
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    r.timestamp_s = static_cast<std::uint64_t>(i);
    r.voltage_v = 230 + rng.normal(0, 2.0);
    EXPECT_FALSE(monitor.observe(r).has_value());
  }
  EXPECT_TRUE(monitor.closed_alerts().empty());
}

TEST(QualityMonitor, DetectsSwell) {
  QualityMonitor monitor({.nominal_v = 230, .band_fraction = 0.1, .debounce = 1});
  MeterReading r;
  r.feeder_id = "f";
  r.voltage_v = 260;
  auto alert = monitor.observe(r);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->issue, QualityIssue::kSwell);
}

TEST(QualityMonitor, FeedersTrackedIndependently) {
  QualityMonitor monitor({.nominal_v = 230, .band_fraction = 0.1, .debounce = 2});
  MeterReading sag;
  sag.feeder_id = "bad";
  sag.voltage_v = 180;
  MeterReading fine;
  fine.feeder_id = "good";
  fine.voltage_v = 231;
  EXPECT_FALSE(monitor.observe(sag).has_value());
  EXPECT_FALSE(monitor.observe(fine).has_value());
  auto alert = monitor.observe(sag);  // second consecutive on "bad"
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->feeder_id, "bad");
}

TEST(QualityMonitor, EndToEndOnInjectedFleet) {
  GridConfig config = small_grid();
  config.quality_events.push_back(
      {.feeder = 1, .start_s = 8 * 3600, .duration_s = 1800, .voltage_factor = 0.8});
  const MeterFleet fleet(config, 31);

  QualityMonitor monitor;
  // Feed one household per feeder (the feeder signal is shared).
  for (const auto& r : fleet.household_series(0)) (void)monitor.observe(r);
  std::optional<QualityAlert> seen;
  for (const auto& r : fleet.household_series(1)) {
    if (auto alert = monitor.observe(r)) seen = alert;
  }
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->feeder_id, "feeder-1");
  EXPECT_EQ(seen->issue, QualityIssue::kSag);
  EXPECT_GE(seen->start_s, 8 * 3600u);
  EXPECT_LE(seen->start_s, 8 * 3600u + 1800u);
}

// ------------------------------------------------------------------- Fault

TEST(FaultDetector, DetectsFeederCollapse) {
  SimClock clock;
  FaultDetector detector({.window = 8, .drop_fraction = 0.15, .min_samples = 4,
                          .process_cycles = 2000},
                         clock);
  // Healthy flow around 10 kW.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(detector.observe("f", static_cast<std::uint64_t>(i), 10'000).has_value());
  }
  auto alert = detector.observe("f", 10, 50);  // collapse
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->feeder_id, "f");
  EXPECT_EQ(alert->detected_at_s, 10u);
  EXPECT_NEAR(alert->before_w, 10'000, 1);
  EXPECT_DOUBLE_EQ(alert->after_w, 50);
}

TEST(FaultDetector, DetectionWithinMilliseconds) {
  // The §VI requirement: anomaly detection within milliseconds. With the
  // enclave-resident detector the per-sample decision is microseconds.
  SimClock clock(2.6);
  FaultDetector detector({}, clock);
  for (int i = 0; i < 20; ++i) (void)detector.observe("f", static_cast<std::uint64_t>(i), 5'000);
  auto alert = detector.observe("f", 20, 0);
  ASSERT_TRUE(alert.has_value());
  EXPECT_LT(alert->detection_latency_ns, 1'000'000u);  // << 1 ms
}

TEST(FaultDetector, NoRepeatAlertWhileFaulted) {
  SimClock clock;
  FaultDetector detector({.window = 8, .drop_fraction = 0.15, .min_samples = 4,
                          .process_cycles = 100},
                         clock);
  for (int i = 0; i < 10; ++i) (void)detector.observe("f", static_cast<std::uint64_t>(i), 10'000);
  EXPECT_TRUE(detector.observe("f", 10, 10).has_value());
  EXPECT_FALSE(detector.observe("f", 11, 10).has_value());  // still down
  // Recovery then a second fault re-alerts.
  for (int i = 12; i < 20; ++i) (void)detector.observe("f", static_cast<std::uint64_t>(i), 9'000);
  EXPECT_TRUE(detector.observe("f", 20, 10).has_value());
}

TEST(FaultDetector, GradualDeclineDoesNotTrigger) {
  SimClock clock;
  FaultDetector detector({.window = 16, .drop_fraction = 0.15, .min_samples = 8,
                          .process_cycles = 100},
                         clock);
  double flow = 10'000;
  bool alerted = false;
  for (int i = 0; i < 200; ++i) {
    flow *= 0.99;  // slow diurnal ramp-down
    if (detector.observe("f", static_cast<std::uint64_t>(i), flow)) alerted = true;
  }
  EXPECT_FALSE(alerted);
}

TEST(Orchestrator, ReactsToFaultAndRecovery) {
  Orchestrator orchestrator;
  FaultAlert alert;
  alert.feeder_id = "feeder-2";
  orchestrator.on_fault(alert);
  EXPECT_TRUE(orchestrator.is_isolated("feeder-2"));
  EXPECT_TRUE(orchestrator.is_boosted("feeder-2"));
  EXPECT_FALSE(orchestrator.is_isolated("feeder-1"));
  orchestrator.on_recovery("feeder-2");
  EXPECT_FALSE(orchestrator.is_isolated("feeder-2"));
  EXPECT_EQ(orchestrator.actions_taken(), 2u);
}

}  // namespace
}  // namespace securecloud::smartgrid
