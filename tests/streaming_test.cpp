// Tumbling-window stream aggregation tests.
#include <gtest/gtest.h>

#include "bigdata/streaming.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"
#include "smartgrid/meter.hpp"

namespace securecloud::bigdata {
namespace {

struct Collector {
  std::vector<WindowResult> results;
  TumblingWindowAggregator::Emit emit() {
    return [this](const WindowResult& r) { results.push_back(r); };
  }
  const WindowResult* find(const std::string& key, std::uint64_t start) const {
    for (const auto& r : results) {
      if (r.key == key && r.window_start_s == start) return &r;
    }
    return nullptr;
  }
};

TEST(Streaming, AggregatesWithinWindow) {
  Collector collector;
  TumblingWindowAggregator agg(60, 0, collector.emit());
  agg.observe("m1", 10, 100);
  agg.observe("m1", 20, 200);
  agg.observe("m1", 50, 300);
  agg.flush();

  ASSERT_EQ(collector.results.size(), 1u);
  const auto& r = collector.results[0];
  EXPECT_EQ(r.key, "m1");
  EXPECT_EQ(r.window_start_s, 0u);
  EXPECT_EQ(r.window_end_s, 60u);
  EXPECT_DOUBLE_EQ(r.sum, 600);
  EXPECT_DOUBLE_EQ(r.min, 100);
  EXPECT_DOUBLE_EQ(r.max, 300);
  EXPECT_EQ(r.count, 3u);
  EXPECT_DOUBLE_EQ(r.mean(), 200);
}

TEST(Streaming, WindowClosesWhenWatermarkPasses) {
  Collector collector;
  TumblingWindowAggregator agg(60, 0, collector.emit());
  agg.observe("m1", 10, 1);
  EXPECT_TRUE(collector.results.empty());
  agg.observe("m1", 65, 2);  // next window: closes [0,60)
  ASSERT_EQ(collector.results.size(), 1u);
  EXPECT_EQ(collector.results[0].window_start_s, 0u);
  EXPECT_EQ(agg.open_windows(), 1u);
}

TEST(Streaming, AllowedLatenessHoldsWindowOpen) {
  Collector collector;
  TumblingWindowAggregator agg(60, 30, collector.emit());
  agg.observe("m1", 10, 1);
  agg.observe("m1", 70, 2);   // within grace: [0,60) still open
  EXPECT_TRUE(collector.results.empty());
  agg.observe("m1", 45, 10);  // late but within grace: accepted
  agg.observe("m1", 95, 3);   // watermark 95 >= 0+60+30: closes [0,60)
  ASSERT_EQ(collector.results.size(), 1u);
  EXPECT_EQ(collector.results[0].count, 2u);  // t=10 and t=45
  EXPECT_EQ(agg.late_dropped(), 0u);
}

TEST(Streaming, TooLateEventsDropped) {
  Collector collector;
  TumblingWindowAggregator agg(60, 0, collector.emit());
  agg.observe("m1", 10, 1);
  agg.observe("m1", 120, 2);  // closes [0,60)
  agg.observe("m1", 15, 99);  // hopelessly late
  EXPECT_EQ(agg.late_dropped(), 1u);
  agg.flush();
  // The dropped event never appears anywhere.
  double total = 0;
  for (const auto& r : collector.results) total += r.sum;
  EXPECT_DOUBLE_EQ(total, 3);
}

TEST(Streaming, ZeroWindowSizeClampedToOne) {
  // Regression: window_size_s == 0 used to divide by zero in window_of()
  // on the first observe. Clamped to 1: every second its own window.
  Collector collector;
  TumblingWindowAggregator agg(0, 0, collector.emit());
  agg.observe("m1", 10, 5);
  agg.observe("m1", 11, 7);  // closes [10,11)
  ASSERT_EQ(collector.results.size(), 1u);
  EXPECT_EQ(collector.results[0].window_start_s, 10u);
  EXPECT_EQ(collector.results[0].window_end_s, 11u);
  EXPECT_DOUBLE_EQ(collector.results[0].sum, 5);
  agg.flush();
  ASSERT_EQ(collector.results.size(), 2u);
  EXPECT_DOUBLE_EQ(collector.results[1].sum, 7);
}

TEST(Streaming, EventExactlyAtGraceBoundaryDropped) {
  // Boundary: with window [0,60) and lateness 30, an event for that
  // window is dropped exactly when watermark >= 90 — an event arriving
  // when watermark == window + size + lateness is one tick too late.
  Collector collector;
  TumblingWindowAggregator agg(60, 30, collector.emit());
  agg.observe("m1", 10, 1);
  agg.observe("m1", 89, 2);  // watermark 89: [0,60) still within grace
  agg.observe("m1", 50, 3);  // accepted into [0,60)
  EXPECT_EQ(agg.late_dropped(), 0u);
  EXPECT_TRUE(collector.results.empty());

  agg.observe("m1", 90, 4);  // watermark 90 == 0+60+30: closes [0,60)
  ASSERT_EQ(collector.results.size(), 1u);
  EXPECT_EQ(collector.results[0].count, 2u);  // t=10 and t=50

  agg.observe("m1", 55, 5);  // same window, exactly at the boundary: dropped
  EXPECT_EQ(agg.late_dropped(), 1u);
  ASSERT_EQ(collector.results.size(), 1u);  // nothing re-emitted
}

TEST(Streaming, KeysAggregateIndependently) {
  Collector collector;
  TumblingWindowAggregator agg(60, 0, collector.emit());
  agg.observe("a", 10, 1);
  agg.observe("b", 20, 10);
  agg.observe("a", 30, 2);
  agg.flush();
  ASSERT_EQ(collector.results.size(), 2u);
  EXPECT_DOUBLE_EQ(collector.find("a", 0)->sum, 3);
  EXPECT_DOUBLE_EQ(collector.find("b", 0)->sum, 10);
}

TEST(Streaming, TotalsConserveAcrossWindows) {
  // Property: sum over all emitted windows == sum of accepted inputs.
  Collector collector;
  TumblingWindowAggregator agg(30, 10, collector.emit());
  Rng rng(5);
  double fed = 0;
  std::uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.uniform(5);  // non-decreasing, slightly jittered below
    const std::uint64_t jittered = t >= 8 ? t - rng.uniform(8) : t;
    const double v = static_cast<double>(rng.uniform(100));
    const std::size_t before = agg.late_dropped();
    agg.observe("k" + std::to_string(rng.uniform(3)), jittered, v);
    if (agg.late_dropped() == before) fed += v;
  }
  agg.flush();
  double emitted = 0;
  for (const auto& r : collector.results) emitted += r.sum;
  EXPECT_DOUBLE_EQ(emitted, fed);
}

TEST(Streaming, FlushReturnsDropCountAndExportsCounter) {
  // Regression: flush() used to return void and drops were only visible
  // by polling late_dropped() before the aggregator was torn down. The
  // streams pipeline reads the count from flush() at EOS and obs
  // dashboards read the counter.
  obs::Registry registry;
  Collector collector;
  TumblingWindowAggregator agg(60, 0, collector.emit());
  agg.set_obs(&registry);
  agg.observe("m1", 10, 1);
  agg.observe("m1", 120, 2);  // closes [0,60)
  agg.observe("m1", 15, 99);  // hopelessly late
  agg.observe("m1", 20, 99);  // and again
  EXPECT_EQ(registry.counter("streaming_late_dropped_total").value(), 2u);
  EXPECT_EQ(agg.flush(), 2u);
  // Re-flushing an empty aggregator still reports the lifetime count.
  EXPECT_EQ(agg.flush(), 2u);
}

TEST(Streaming, MeterFeedEndToEnd) {
  // 15-minute mean consumption per meter over a day's readings.
  smartgrid::GridConfig grid;
  grid.households = 4;
  grid.interval_s = 60;
  const smartgrid::MeterFleet fleet(grid, 13);

  Collector collector;
  TumblingWindowAggregator agg(900, 0, collector.emit());
  // Streams arrive interleaved in time order (as a real ingest would).
  const auto all = fleet.all_series();
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    for (const auto& series : all) {
      agg.observe(series[i].meter_id, series[i].timestamp_s, series[i].power_w);
    }
  }
  agg.flush();

  // 4 meters x 96 windows/day.
  EXPECT_EQ(collector.results.size(), 4u * 96u);
  for (const auto& r : collector.results) {
    EXPECT_EQ(r.count, 15u);  // 15 one-minute readings per window
    EXPECT_GT(r.mean(), 0);
  }
}

}  // namespace
}  // namespace securecloud::bigdata
