// SecureStreams pipeline tests: wire-format codec, builder typing rules,
// end-to-end delivery through attested enclave stages, credit-based
// backpressure (stalls, zero loss, bounded queues), event-time windowing
// with late-drop accounting, the golden streaming-equals-batch theft
// equivalence, the chaos acceptance property (armed loss/reorder changes
// nothing the protocol promises, bit-identically at any thread count),
// and critical-path attribution of the bottleneck stage.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/fault_injector.hpp"
#include "common/thread_pool.hpp"
#include "net/fabric.hpp"
#include "smartgrid/streaming_ops.hpp"
#include "smartgrid/theft_detection.hpp"
#include "streams/pipeline.hpp"
#include "streams/record.hpp"

namespace securecloud::streams {
namespace {

using common::FaultArm;
using common::FaultInjector;
using common::FaultKind;

struct Rig {
  SimClock clock;
  net::Fabric fabric{clock};
  sgx::AttestationService service;
};

/// Source over a fixed record vector (shared state survives the copy the
/// builder takes of the callable).
SourceFn vector_source(std::vector<Record> records) {
  auto state = std::make_shared<std::pair<std::vector<Record>, std::size_t>>(
      std::move(records), 0);
  return [state]() -> std::optional<Record> {
    if (state->second >= state->first.size()) return std::nullopt;
    return state->first[state->second++];
  };
}

Record make_record(std::string key, std::uint64_t ts, double value) {
  Record r;
  r.key = std::move(key);
  r.timestamp_s = ts;
  r.value = value;
  return r;
}

// ------------------------------------------------------------- wire format

TEST(StreamRecord, FrameCodecRoundTrips) {
  Record a = make_record("meter-7", 1234, -17.25);
  a.origin_ns = 999;
  a.payload = to_bytes("extra");
  Record b = make_record("", 0, 0.1 + 0.2);  // not exactly representable

  auto data = decode_frame(encode_data_frame({a, b}));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->type, FrameType::kData);
  ASSERT_EQ(data->batch.size(), 2u);
  EXPECT_EQ(data->batch[0], a);  // doubles travel as bit patterns: exact
  EXPECT_EQ(data->batch[1], b);

  auto wm = decode_frame(encode_watermark_frame(86400));
  ASSERT_TRUE(wm.ok());
  EXPECT_EQ(wm->type, FrameType::kWatermark);
  EXPECT_EQ(wm->watermark_s, 86400u);

  auto eos = decode_frame(encode_eos_frame());
  ASSERT_TRUE(eos.ok());
  EXPECT_EQ(eos->type, FrameType::kEos);

  auto credit = decode_frame(encode_credit_frame(48));
  ASSERT_TRUE(credit.ok());
  EXPECT_EQ(credit->type, FrameType::kCredit);
  EXPECT_EQ(credit->credits, 48u);
}

TEST(StreamRecord, DecodeIsStrict) {
  EXPECT_FALSE(decode_frame({}).ok());                    // empty
  EXPECT_FALSE(decode_frame(to_bytes("\x09junk")).ok());  // unknown tag

  Bytes trailing = encode_credit_frame(5);
  trailing.push_back(0x00);  // trailing byte is a typed error, not ignored
  EXPECT_FALSE(decode_frame(trailing).ok());

  Bytes truncated = encode_data_frame({make_record("k", 1, 2.0)});
  truncated.pop_back();
  EXPECT_FALSE(decode_frame(truncated).ok());
}

// ----------------------------------------------------------------- builder

TEST(StreamPipeline, BuilderRejectsMalformedChains) {
  const auto noop_sink = [](const Record&, std::uint64_t) {};
  const auto empty_source = []() -> std::optional<Record> { return std::nullopt; };

  // Too short: a source alone is not a pipeline.
  EXPECT_FALSE(PipelineBuilder().source("s", empty_source).build().ok());

  // Source must be first, sink must be last.
  EXPECT_FALSE(PipelineBuilder()
                   .sink("out", noop_sink)
                   .source("s", empty_source)
                   .build()
                   .ok());
  EXPECT_FALSE(PipelineBuilder()
                   .source("s", empty_source)
                   .sink("out", noop_sink)
                   .map("m", [](const Record& r) { return r; })
                   .build()
                   .ok());

  // Names become fabric node names: required and unique.
  EXPECT_FALSE(PipelineBuilder()
                   .source("", empty_source)
                   .sink("out", noop_sink)
                   .build()
                   .ok());
  EXPECT_FALSE(PipelineBuilder()
                   .source("x", empty_source)
                   .sink("x", noop_sink)
                   .build()
                   .ok());

  // A stage without its operator function is rejected by kind.
  EXPECT_FALSE(PipelineBuilder()
                   .source("s", empty_source)
                   .map("m", nullptr)
                   .sink("out", noop_sink)
                   .build()
                   .ok());

  auto ok = PipelineBuilder()
                .source("s", empty_source)
                .window("w", {.size_s = 60})
                .sink("out", noop_sink)
                .build();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 3u);
}

// ---------------------------------------------------------------- delivery

TEST(StreamPipeline, DeliversEveryRecordInOrderThroughEnclaveStages) {
  Rig rig;
  std::vector<Record> input;
  for (int i = 0; i < 100; ++i) {
    input.push_back(make_record("k" + std::to_string(i % 5),
                                static_cast<std::uint64_t>(i), i * 1.5));
  }
  std::vector<Record> got;
  auto stages = PipelineBuilder()
                    .source("gen", vector_source(input))
                    .map("double",
                         [](const Record& r) {
                           Record out = r;
                           out.value = r.value * 2;
                           return out;
                         })
                    .filter("evens",
                            [](const Record& r) { return r.timestamp_s % 2 == 0; })
                    .sink("collect",
                          [&](const Record& r, std::uint64_t) { got.push_back(r); })
                    .build();
  ASSERT_TRUE(stages.ok());

  Pipeline pipeline(rig.fabric, std::move(*stages));
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  ASSERT_TRUE(pipeline.run().ok());

  // Every even-timestamped record arrives, doubled, in source order.
  ASSERT_EQ(got.size(), 50u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].timestamp_s, 2 * i);
    EXPECT_DOUBLE_EQ(got[i].value, static_cast<double>(2 * i) * 1.5 * 2);
    EXPECT_GT(got[i].origin_ns, 0u);  // stamped when the source emitted it
  }

  const PipelineStats stats = pipeline.stats();
  ASSERT_EQ(stats.stages.size(), 4u);
  EXPECT_EQ(stats.records_delivered, 50u);
  EXPECT_EQ(stats.stages[0].records_out, 100u);
  EXPECT_EQ(stats.stages[1].records_in, 100u);
  EXPECT_EQ(stats.stages[1].records_out, 100u);
  EXPECT_EQ(stats.stages[2].records_in, 100u);
  EXPECT_EQ(stats.stages[2].records_out, 50u);  // filter halves the stream
  EXPECT_EQ(stats.stages[3].records_in, 50u);
  EXPECT_GT(stats.stages[0].watermarks, 0u);
  // Everything consumed was granted back upstream by end of stream.
  EXPECT_EQ(stats.stages[1].credits_granted, 100u);
  EXPECT_EQ(stats.stages[3].credits_granted, 50u);
  EXPECT_TRUE(pipeline.health().ok());
  EXPECT_GT(stats.wall_ns, 0u);
}

TEST(StreamPipeline, RunRequiresSetupAndIsSingleShot) {
  Rig rig;
  auto stages = PipelineBuilder()
                    .source("s", vector_source({make_record("k", 1, 1)}))
                    .sink("out", [](const Record&, std::uint64_t) {})
                    .build();
  ASSERT_TRUE(stages.ok());
  Pipeline pipeline(rig.fabric, std::move(*stages));
  EXPECT_FALSE(pipeline.run().ok());  // not set up yet
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  EXPECT_FALSE(pipeline.setup(rig.service).ok());  // double setup rejected
  ASSERT_TRUE(pipeline.run().ok());
  EXPECT_FALSE(pipeline.run().ok());  // single-shot
}

// ------------------------------------------------------------- windowing

TEST(StreamPipeline, WindowStageClosesOnWatermarksAndFlushesOnEos) {
  Rig rig;
  // Two keys, interleaved, 5 s apart: ts 0,5,...,295. Key "a" gets the
  // multiples of 10, key "b" the rest — 6 readings per key per window.
  std::vector<Record> input;
  double fed = 0;
  for (int i = 0; i < 60; ++i) {
    const double v = 10.0 + i;
    input.push_back(make_record(i % 2 == 0 ? "a" : "b",
                                static_cast<std::uint64_t>(5 * i), v));
    fed += v;
  }
  std::vector<Record> got;
  auto stages = PipelineBuilder()
                    .source("gen", vector_source(input))
                    .window("tumble", {.size_s = 60})
                    .sink("collect",
                          [&](const Record& r, std::uint64_t) { got.push_back(r); })
                    .build();
  ASSERT_TRUE(stages.ok());
  Pipeline pipeline(rig.fabric, std::move(*stages));
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  ASSERT_TRUE(pipeline.run().ok());

  // 5 windows per key over [0,300); the sink sees only window records.
  ASSERT_EQ(got.size(), 10u);
  double emitted = 0;
  for (const Record& r : got) {
    WindowPayload payload;
    ASSERT_TRUE(get_window_payload(r, payload));
    EXPECT_EQ(payload.window_start_s % 60, 0u);
    EXPECT_EQ(payload.window_end_s, payload.window_start_s + 60);
    EXPECT_EQ(payload.count, 6u);
    EXPECT_DOUBLE_EQ(r.value, payload.sum);
    EXPECT_EQ(r.timestamp_s, payload.window_start_s);
    EXPECT_GT(r.origin_ns, 0u);  // re-stamped at the window-close instant
    emitted += payload.sum;
  }
  // Conservation: every accepted reading lands in exactly one window.
  EXPECT_DOUBLE_EQ(emitted, fed);
  EXPECT_EQ(pipeline.stats().stages[1].late_dropped, 0u);
}

TEST(StreamPipeline, HopelesslyLateRecordsAreCountedNotDelivered) {
  Rig rig;
  // One record far behind the watermark its own batch already advanced:
  // window [0,60) is long closed by the time t=10 is observed.
  std::vector<Record> input = {
      make_record("k", 0, 1),   make_record("k", 100, 2),
      make_record("k", 200, 4), make_record("k", 10, 1000),  // hopeless
      make_record("k", 300, 8),
  };
  std::vector<Record> got;
  auto stages = PipelineBuilder()
                    .source("gen", vector_source(input))
                    .window("tumble", {.size_s = 60})
                    .sink("collect",
                          [&](const Record& r, std::uint64_t) { got.push_back(r); })
                    .build();
  ASSERT_TRUE(stages.ok());
  Pipeline pipeline(rig.fabric, std::move(*stages));
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  ASSERT_TRUE(pipeline.run().ok());

  // The late record is the *only* sanctioned loss in the whole design,
  // and it is accounted, never silent.
  EXPECT_EQ(pipeline.stats().stages[1].late_dropped, 1u);
  double emitted = 0;
  for (const Record& r : got) emitted += r.value;
  EXPECT_DOUBLE_EQ(emitted, 15);  // 1+2+4+8; the 1000 never appears
}

// ------------------------------------------------------------ backpressure

TEST(StreamPipeline, SlowSinkStallsSourceWithoutDroppingAnything) {
  Rig rig;
  std::vector<Record> input;
  for (int i = 0; i < 400; ++i) {
    input.push_back(make_record("k" + std::to_string(i % 3),
                                static_cast<std::uint64_t>(i), 1.0));
  }
  std::uint64_t delivered = 0;
  auto stages = PipelineBuilder()
                    .source("fast-gen", vector_source(input), 100)
                    .map("relay", [](const Record& r) { return r; }, 100)
                    // Sink is ~3 orders of magnitude slower than the source:
                    // without flow control it would be buried.
                    .sink("slow-sink",
                          [&](const Record&, std::uint64_t) { ++delivered; },
                          100'000)
                    .build();
  ASSERT_TRUE(stages.ok());

  PipelineConfig config;
  config.credit_window = 8;
  config.grant_batch = 4;
  config.batch_size = 4;
  Pipeline pipeline(rig.fabric, std::move(*stages), config);
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  ASSERT_TRUE(pipeline.run().ok());

  const PipelineStats stats = pipeline.stats();
  // Zero loss is the whole point of credit backpressure.
  EXPECT_EQ(delivered, 400u);
  EXPECT_EQ(stats.records_delivered, 400u);
  // And the producers actually stalled — deterministically, not by luck.
  EXPECT_GE(stats.credit_stalls, 1u);
  EXPECT_GT(stats.stall_ns, 0u);
  EXPECT_GE(stats.stages[1].credit_stalls, 1u);  // the relay hit the wall too
  EXPECT_TRUE(pipeline.health().ok());
}

// ------------------------------------------------- streaming == batch golden

TEST(StreamPipeline, StreamingTheftFlagsEqualBatchDetector) {
  smartgrid::GridConfig grid;
  grid.households = 20;
  grid.feeders = 2;
  grid.interval_s = 300;
  grid.horizon_s = 24 * 3600;
  grid.thefts.push_back(
      {.household = 3, .start_s = 12 * 3600, .reported_fraction = 0.3});
  grid.thefts.push_back(
      {.household = 11, .start_s = 12 * 3600, .reported_fraction = 0.4});
  const smartgrid::MeterFleet fleet(grid, 21);

  // Batch plane: the secure MapReduce theft job.
  sgx::Platform platform;
  crypto::DeterministicEntropy entropy(22);
  smartgrid::TheftDetector detector(platform, entropy);
  smartgrid::TheftDetectionConfig batch_config;
  batch_config.split_s = 12 * 3600;
  auto report = detector.run(batch_config, detector.prepare_partitions(fleet, 4));
  ASSERT_TRUE(report.ok());
  const std::set<std::string> batch_flags(report->flagged.begin(),
                                          report->flagged.end());
  ASSERT_FALSE(batch_flags.empty());

  // Streaming plane: same fleet, same analysis, as pipeline operators.
  // Window size divides split_s, so no window straddles the split.
  Rig rig;
  auto theft = smartgrid::streaming_theft_stage({.split_s = 12 * 3600});
  std::set<std::string> stream_flags;
  auto stages =
      PipelineBuilder()
          .source("meters", smartgrid::meter_stream_source(fleet))
          .window("hourly", {.size_s = 3600})
          .process("theft", theft.process, theft.flush)
          .sink("collect",
                [&](const Record& r, std::uint64_t) {
                  std::string meter;
                  if (smartgrid::is_flag_record(r, meter)) stream_flags.insert(meter);
                })
          .build();
  ASSERT_TRUE(stages.ok());
  Pipeline pipeline(rig.fabric, std::move(*stages));
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  ASSERT_TRUE(pipeline.run().ok());

  EXPECT_EQ(stream_flags, batch_flags);
  EXPECT_EQ(pipeline.stats().stages[1].late_dropped, 0u);
}

// ------------------------------------------------------------------- chaos

struct ChaosResult {
  PipelineStats stats;
  std::vector<Record> sunk;
  std::string obs_v2;
};

/// What a record promises independent of wall-clock pacing: everything
/// except origin_ns (which is stamped at emission time, and emission
/// *timing* legitimately shifts when faults delay credit grants).
std::vector<std::tuple<std::string, std::uint64_t, double, Bytes>> project(
    const std::vector<Record>& records) {
  std::vector<std::tuple<std::string, std::uint64_t, double, Bytes>> out;
  for (const Record& r : records) {
    out.emplace_back(r.key, r.timestamp_s, r.value, r.payload);
  }
  return out;
}

/// Five stages, every operator kind on the data path, driven over a
/// lossy reordering fabric. Faults are armed only after setup so the
/// chaos hits the data plane, not the attestation handshake.
ChaosResult run_chaos(std::size_t threads, bool faulty) {
  Rig rig;
  std::vector<Record> input;
  for (int i = 0; i < 300; ++i) {
    input.push_back(make_record("s" + std::to_string(i % 7),
                                static_cast<std::uint64_t>(i),
                                0.5 * i + (i % 13)));
  }
  ChaosResult result;
  auto stages =
      PipelineBuilder()
          .source("gen", vector_source(input))
          .key_by("shard",
                  [](const Record& r) {
                    return "g" + std::to_string(r.timestamp_s % 3);
                  })
          .window("tumble", {.size_s = 30})
          .filter("nonempty",
                  [](const Record& r) {
                    WindowPayload p;
                    return get_window_payload(r, p) && p.sum >= 100;
                  })
          .sink("collect",
                [&](const Record& r, std::uint64_t) { result.sunk.push_back(r); })
          .build();
  EXPECT_TRUE(stages.ok());

  PipelineConfig config;
  config.credit_window = 16;
  config.grant_batch = 4;
  config.batch_size = 8;
  Pipeline pipeline(rig.fabric, std::move(*stages), config);
  EXPECT_TRUE(pipeline.setup(rig.service).ok());

  FaultInjector faults(31, &rig.clock);
  if (faulty) {
    rig.fabric.set_fault_injector(&faults);
    faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.3, .max_fires = 25});
    faults.arm(FaultKind::kNetReorder,
               FaultArm{.probability = 0.2, .max_fires = 15});
  }

  common::ThreadPool pool(threads);
  pipeline.set_pool(&pool);
  EXPECT_TRUE(pipeline.run().ok());
  EXPECT_TRUE(pipeline.health().ok());

  result.stats = pipeline.stats();
  auto snapshot = pipeline.cluster_snapshot();
  EXPECT_TRUE(snapshot.ok());
  if (snapshot.ok()) result.obs_v2 = snapshot->to_obs_json();
  return result;
}

TEST(StreamPipeline, ChaosIsFaultAndThreadCountInvariant) {
  const ChaosResult clean = run_chaos(1, /*faulty=*/false);
  const ChaosResult faulty_1t = run_chaos(1, /*faulty=*/true);
  const ChaosResult faulty_8t = run_chaos(8, /*faulty=*/true);

  ASSERT_FALSE(clean.sunk.empty());

  // Armed loss/reorder changes nothing the protocol promises: the sink
  // sees the same records in the same order, nothing is lost, nothing is
  // double-delivered. (Timing-derived fields — stalls, wall time,
  // origin_ns stamps — legitimately shift; the data may not.)
  EXPECT_EQ(project(faulty_1t.sunk), project(clean.sunk));
  EXPECT_EQ(faulty_1t.stats.records_delivered, clean.stats.records_delivered);
  for (std::size_t i = 0; i < clean.stats.stages.size(); ++i) {
    EXPECT_EQ(faulty_1t.stats.stages[i].records_in,
              clean.stats.stages[i].records_in);
    EXPECT_EQ(faulty_1t.stats.stages[i].records_out,
              clean.stats.stages[i].records_out);
    EXPECT_EQ(faulty_1t.stats.stages[i].watermarks,
              clean.stats.stages[i].watermarks);
    EXPECT_EQ(faulty_1t.stats.stages[i].credits_granted,
              clean.stats.stages[i].credits_granted);
    EXPECT_EQ(faulty_1t.stats.stages[i].late_dropped,
              clean.stats.stages[i].late_dropped);
  }

  // The faulted run is bit-identical across thread counts: every stat,
  // every origin_ns stamp, every counter in the merged obs v2 export.
  EXPECT_EQ(faulty_8t.stats, faulty_1t.stats);
  EXPECT_EQ(faulty_8t.sunk, faulty_1t.sunk);
  EXPECT_EQ(faulty_8t.obs_v2, faulty_1t.obs_v2);
}

// ----------------------------------------------------------- critical path

TEST(StreamPipeline, CriticalPathNamesTheBottleneckStage) {
  Rig rig;
  rig.fabric.enable_delivery_log();
  std::vector<Record> input;
  for (int i = 0; i < 200; ++i) {
    input.push_back(make_record("k", static_cast<std::uint64_t>(i), 1.0));
  }
  auto stages =
      PipelineBuilder()
          .source("gen", vector_source(input), 200)
          .map("cheap", [](const Record& r) { return r; }, 200)
          // 500x the per-record cost of everything else: the analyzer
          // must charge the chain to this stage.
          .process("detect",
                   [](const Record& r) { return std::vector<Record>{r}; },
                   nullptr, 100'000)
          .sink("out", [](const Record&, std::uint64_t) {}, 200)
          .build();
  ASSERT_TRUE(stages.ok());
  Pipeline pipeline(rig.fabric, std::move(*stages));
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  ASSERT_TRUE(pipeline.run().ok());

  auto snapshot = pipeline.cluster_snapshot();
  ASSERT_TRUE(snapshot.ok());
  const auto names = rig.fabric.node_names();
  obs::CriticalPathOptions opts;
  opts.deliveries = &rig.fabric.deliveries();
  opts.node_names = &names;
  auto report = obs::critical_path(*snapshot, opts);
  ASSERT_TRUE(report.ok());
  // Stage names are fabric node names are span node labels — so the
  // dominant node of the pipeline trace IS the bottleneck stage.
  EXPECT_EQ(report->dominant_node, "detect");
  EXPECT_GT(report->total_cycles, 0u);
}

// ------------------------------------------------------------- TSan hammer

// Fast producer, slow sink, shared registry, pool workers on the pure
// stages: the configuration scripts/tsan_check.sh drives under TSan to
// prove the only cross-thread traffic is the pool's pre-assigned slots
// and relaxed counter bumps.
TEST(StreamsHammer, BackpressureUnderPoolAndSharedRegistry) {
  Rig rig;
  std::vector<Record> input;
  for (int i = 0; i < 600; ++i) {
    input.push_back(make_record("k" + std::to_string(i % 11),
                                static_cast<std::uint64_t>(i), 1.0 * i));
  }
  std::uint64_t delivered = 0;
  auto stages = PipelineBuilder()
                    .source("gen", vector_source(input), 100)
                    .map("scale",
                         [](const Record& r) {
                           Record out = r;
                           out.value *= 3;
                           return out;
                         },
                         100)
                    .filter("keep-two-thirds",
                            [](const Record& r) { return r.timestamp_s % 3 != 0; },
                            100)
                    .sink("slow-sink",
                          [&](const Record&, std::uint64_t) { ++delivered; },
                          50'000)
                    .build();
  ASSERT_TRUE(stages.ok());

  PipelineConfig config;
  config.credit_window = 8;
  config.grant_batch = 4;
  config.batch_size = 4;
  Pipeline pipeline(rig.fabric, std::move(*stages), config);
  obs::Registry registry;
  pipeline.set_obs(&registry);
  common::ThreadPool pool(8);
  pipeline.set_pool(&pool);
  ASSERT_TRUE(pipeline.setup(rig.service).ok());
  ASSERT_TRUE(pipeline.run().ok());

  EXPECT_EQ(delivered, 400u);  // every surviving record, zero loss
  EXPECT_GE(registry.counter("streams_credit_stalls_total").value(), 1u);
  EXPECT_EQ(registry.counter("streams_records_in_total").value(),
            600u + 600u + 400u);  // map + filter + sink arrivals
  EXPECT_TRUE(pipeline.health().ok());
}

}  // namespace
}  // namespace securecloud::streams
