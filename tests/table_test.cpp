// Secure structured table store tests: schema validation, CRUD, secondary
// indexes, range scans, residual predicates, index maintenance, and the
// confidentiality/integrity properties inherited from the KV layer.
#include <gtest/gtest.h>

#include "bigdata/table.hpp"

namespace securecloud::bigdata {
namespace {

using crypto::DeterministicEntropy;
using scbr::Value;

TableSchema meter_schema() {
  TableSchema schema;
  schema.name = "meters";
  schema.primary_key = "meter_id";
  schema.columns = {
      {"meter_id", Value::Type::kString, true},
      {"feeder", Value::Type::kString, true},
      {"avg_power_w", Value::Type::kDouble, true},
      {"readings", Value::Type::kInt, false},
  };
  return schema;
}

Row meter_row(const std::string& id, const std::string& feeder, double power,
              std::int64_t readings) {
  return Row{
      {"meter_id", Value::of(id)},
      {"feeder", Value::of(feeder)},
      {"avg_power_w", Value::of(power)},
      {"readings", Value::of(readings)},
  };
}

struct TableFixture {
  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy{21};
  SecureTable table;

  TableFixture()
      : table(*SecureTable::create(storage, Bytes(16, 0x33), meter_schema(), entropy)) {}
};

TEST(SecureTable, SchemaValidation) {
  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy(1);

  TableSchema no_pk = meter_schema();
  no_pk.primary_key = "nonexistent";
  EXPECT_FALSE(SecureTable::create(storage, Bytes(16, 1), no_pk, entropy).ok());

  TableSchema dup = meter_schema();
  dup.columns.push_back({"feeder", Value::Type::kString, false});
  EXPECT_FALSE(SecureTable::create(storage, Bytes(16, 1), dup, entropy).ok());

  TableSchema unnamed = meter_schema();
  unnamed.name = "";
  EXPECT_FALSE(SecureTable::create(storage, Bytes(16, 1), unnamed, entropy).ok());
}

TEST(SecureTable, UpsertGetEraseRoundTrip) {
  TableFixture fx;
  ASSERT_TRUE(fx.table.upsert(meter_row("m-1", "f-0", 450.5, 1000)).ok());
  EXPECT_EQ(fx.table.size(), 1u);

  auto row = fx.table.get(Value::of(std::string("m-1")));
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->at("feeder") == Value::of(std::string("f-0")));
  EXPECT_TRUE(row->at("avg_power_w") == Value::of(450.5));

  ASSERT_TRUE(fx.table.erase(Value::of(std::string("m-1"))).ok());
  EXPECT_FALSE(fx.table.get(Value::of(std::string("m-1"))).ok());
  EXPECT_FALSE(fx.table.erase(Value::of(std::string("m-1"))).ok());
}

TEST(SecureTable, RowValidation) {
  TableFixture fx;
  Row missing = meter_row("m-1", "f-0", 1.0, 1);
  missing.erase("feeder");
  EXPECT_FALSE(fx.table.upsert(missing).ok());

  Row mistyped = meter_row("m-1", "f-0", 1.0, 1);
  mistyped["avg_power_w"] = Value::of(std::string("not a double"));
  EXPECT_FALSE(fx.table.upsert(mistyped).ok());

  Row extra = meter_row("m-1", "f-0", 1.0, 1);
  extra["bogus"] = Value::of(std::int64_t{1});
  EXPECT_FALSE(fx.table.upsert(extra).ok());
}

TEST(SecureTable, UpsertReplacesAndMaintainsIndexes) {
  TableFixture fx;
  ASSERT_TRUE(fx.table.upsert(meter_row("m-1", "f-0", 100, 10)).ok());
  ASSERT_TRUE(fx.table.upsert(meter_row("m-1", "f-9", 999, 20)).ok());
  EXPECT_EQ(fx.table.size(), 1u);

  // The old index entry (f-0) must be gone.
  auto old_scan = fx.table.scan("feeder", Value::of(std::string("f-0")),
                                Value::of(std::string("f-0")));
  ASSERT_TRUE(old_scan.ok());
  EXPECT_TRUE(old_scan->empty());
  auto new_scan = fx.table.scan("feeder", Value::of(std::string("f-9")),
                                Value::of(std::string("f-9")));
  ASSERT_TRUE(new_scan.ok());
  EXPECT_EQ(new_scan->size(), 1u);
}

TEST(SecureTable, RangeScanOverDoubleIndexIsOrdered) {
  TableFixture fx;
  ASSERT_TRUE(fx.table.upsert(meter_row("m-1", "f-0", 300, 1)).ok());
  ASSERT_TRUE(fx.table.upsert(meter_row("m-2", "f-0", 100, 1)).ok());
  ASSERT_TRUE(fx.table.upsert(meter_row("m-3", "f-1", 200, 1)).ok());
  ASSERT_TRUE(fx.table.upsert(meter_row("m-4", "f-1", 900, 1)).ok());

  auto rows = fx.table.scan("avg_power_w", Value::of(50.0), Value::of(350.0));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  // Ordered by the scanned column.
  EXPECT_TRUE((*rows)[0].at("avg_power_w") == Value::of(100.0));
  EXPECT_TRUE((*rows)[1].at("avg_power_w") == Value::of(200.0));
  EXPECT_TRUE((*rows)[2].at("avg_power_w") == Value::of(300.0));
}

TEST(SecureTable, OrderedEncodingHandlesNegativesAndFractions) {
  scone::UntrustedFileSystem storage;
  DeterministicEntropy entropy(2);
  TableSchema schema;
  schema.name = "t";
  schema.primary_key = "k";
  schema.columns = {{"k", Value::Type::kInt, true}, {"v", Value::Type::kDouble, true}};
  auto table = SecureTable::create(storage, Bytes(16, 2), schema, entropy);
  ASSERT_TRUE(table.ok());
  for (const std::int64_t k : {-100, -1, 0, 1, 100}) {
    ASSERT_TRUE(table
                    ->upsert(Row{{"k", Value::of(k)},
                                 {"v", Value::of(static_cast<double>(k) * 0.5)}})
                    .ok());
  }
  auto rows = table->scan("k", Value::of(std::int64_t{-50}), Value::of(std::int64_t{50}));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0].at("k").as_int(), -1);
  EXPECT_EQ((*rows)[2].at("k").as_int(), 1);

  auto negative_doubles = table->scan("v", Value::of(-100.0), Value::of(-0.1));
  ASSERT_TRUE(negative_doubles.ok());
  EXPECT_EQ(negative_doubles->size(), 2u);  // -50.0 and -0.5
}

TEST(SecureTable, ResidualPredicateFiltersInsideEnclave) {
  TableFixture fx;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.table
                    .upsert(meter_row("m-" + std::to_string(i),
                                      i % 2 ? "f-odd" : "f-even", 100.0 * i, i))
                    .ok());
  }
  auto rows = fx.table.scan("avg_power_w", Value::of(0.0), Value::of(10'000.0),
                            [](const Row& row) {
                              return row.at("feeder") == Value::of(std::string("f-odd"));
                            });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
}

TEST(SecureTable, ScanRejectsBadColumns) {
  TableFixture fx;
  EXPECT_FALSE(fx.table.scan("nope", Value::of(0.0), Value::of(1.0)).ok());
  // "readings" exists but is not indexed.
  EXPECT_FALSE(fx.table
                   .scan("readings", Value::of(std::int64_t{0}), Value::of(std::int64_t{1}))
                   .ok());
  // Wrong bound types.
  EXPECT_FALSE(fx.table.scan("avg_power_w", Value::of(std::string("a")),
                             Value::of(std::string("b")))
                   .ok());
}

TEST(SecureTable, HostSeesNoPlaintext) {
  TableFixture fx;
  ASSERT_TRUE(fx.table.upsert(meter_row("customer-villa-17", "f-0", 9999, 1)).ok());
  for (const auto& path : fx.storage.list()) {
    EXPECT_EQ(path.find("villa"), std::string::npos);
    const auto content = fx.storage.read_file(path);
    const std::string s(content->begin(), content->end());
    EXPECT_EQ(s.find("villa"), std::string::npos);
  }
}

TEST(SecureTable, TamperedRowSurfacesOnScan) {
  TableFixture fx;
  ASSERT_TRUE(fx.table.upsert(meter_row("m-1", "f-0", 100, 1)).ok());
  for (const auto& path : fx.storage.list()) {
    (*fx.storage.raw(path))[30] ^= 1;
  }
  auto rows = fx.table.scan("avg_power_w", Value::of(0.0), Value::of(1'000.0));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.error().code, ErrorCode::kIntegrityViolation);
}

}  // namespace
}  // namespace securecloud::bigdata
