// Telemetry plane (obs v3) tests: time-series rollup rings, the
// delta-encoded frame codec (round trip + hardening fuzz), sampler
// delta semantics, monitor sequencing and alert dedup, histogram
// quantiles, the chaos determinism contract (timeline + alerts
// bit-identical at 1 vs 8 threads under armed loss/reorder), the
// straggler-drift acceptance scenario with its live postmortem pull,
// streams-pipeline emission, and a TSan hammer over the concurrent
// sampling surface.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.hpp"
#include "common/thread_pool.hpp"
#include "bigdata/distributed_mapreduce.hpp"
#include "net/fabric.hpp"
#include "obs/anomaly.hpp"
#include "obs/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"
#include "sgx/attestation.hpp"
#include "streams/pipeline.hpp"

namespace securecloud::obs {
namespace {

using common::FaultArm;
using common::FaultInjector;
using common::FaultKind;

// ------------------------------------------------------------ time series

TEST(TimeSeries, RollsObservationsIntoTumblingWindows) {
  TimeSeries ts(100, 8);
  ts.observe(10, 5);
  ts.observe(20, -3);
  ts.observe(99, 7);   // same window
  ts.observe(150, 2);  // next window
  ASSERT_EQ(ts.windows().size(), 2u);

  const RollupWindow& w0 = ts.windows()[0];
  EXPECT_EQ(w0.start_cycles, 0u);
  EXPECT_EQ(w0.min, -3);
  EXPECT_EQ(w0.max, 7);
  EXPECT_EQ(w0.sum, 9);
  EXPECT_EQ(w0.last, 7);
  EXPECT_EQ(w0.count, 3u);

  const RollupWindow& w1 = ts.windows()[1];
  EXPECT_EQ(w1.start_cycles, 100u);
  EXPECT_EQ(w1.count, 1u);
  EXPECT_EQ(w1.last, 2);
}

TEST(TimeSeries, EvictsFrontWindowsPastCapacity) {
  TimeSeries ts(10, 3);
  for (std::uint64_t i = 0; i < 6; ++i) ts.observe(i * 10, static_cast<std::int64_t>(i));
  EXPECT_EQ(ts.windows().size(), 3u);
  EXPECT_EQ(ts.evicted(), 3u);
  // The survivors are the newest three windows.
  EXPECT_EQ(ts.windows().front().start_cycles, 30u);
  EXPECT_EQ(ts.windows().back().start_cycles, 50u);
}

TEST(TimeSeries, EarlierStampFoldsIntoOpenWindow) {
  TimeSeries ts(100, 4);
  ts.observe(250, 1);
  ts.observe(120, 9);  // older than the open window: folds, never rewrites
  ASSERT_EQ(ts.windows().size(), 1u);
  EXPECT_EQ(ts.windows()[0].count, 2u);
  EXPECT_EQ(ts.windows()[0].max, 9);
}

TEST(TimeSeries, ZeroParamsClampToOne) {
  TimeSeries ts(0, 0);
  EXPECT_EQ(ts.window_cycles(), 1u);
  EXPECT_EQ(ts.capacity(), 1u);
  ts.observe(0, 1);
  ts.observe(1, 2);
  EXPECT_EQ(ts.windows().size(), 1u);
  EXPECT_EQ(ts.evicted(), 1u);
}

// ------------------------------------------------------ histogram quantile

TEST(HistogramQuantile, EmptyAndClampedInputs) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.observe(0);
  EXPECT_EQ(h.quantile(-1.0), 0.0);
  EXPECT_EQ(h.quantile(2.0), 0.0);  // all mass in bucket 0 => 0
}

TEST(HistogramQuantile, InterpolatesWithinLogBuckets) {
  Histogram h;
  // 100 observations of exactly 1000: all land in one bucket
  // [512, 1024), so every quantile interpolates inside it.
  for (int i = 0; i < 100; ++i) h.observe(1000);
  EXPECT_GE(h.quantile(0.5), 512.0);
  EXPECT_LE(h.quantile(0.5), 1024.0);
  EXPECT_LE(h.quantile(0.01), h.quantile(0.99));

  // Bimodal: half tiny, half huge — the median straddles the low mode
  // and p99 must land in the high mode's bucket.
  Histogram bi;
  for (int i = 0; i < 50; ++i) bi.observe(1);
  for (int i = 0; i < 50; ++i) bi.observe(1 << 20);
  EXPECT_LT(bi.quantile(0.25), 2.0);
  EXPECT_GE(bi.quantile(0.99), static_cast<double>(1 << 19));
}

TEST(HistogramQuantile, MatchesBucketUpperBoundAtP100) {
  Histogram h;
  h.observe(3);  // bucket [2,4)
  const double p100 = h.quantile(1.0);
  EXPECT_GE(p100, 2.0);
  EXPECT_LE(p100, 4.0);
}

// ------------------------------------------------------------ frame codec

TelemetryFrame sample_frame() {
  TelemetryFrame f;
  f.node = "worker-3";
  f.seq = 12;
  f.at_cycles = 987654;
  f.counters["net_flow_payloads_delivered_total"] = 41;
  f.counters["dist_worker_tasks_done_total"] = 2;
  f.gauges["net_flow_chunks_in_flight"] = 7;
  f.gauges["trace_active_spans"] = -1;
  return f;
}

TEST(TelemetryCodec, FrameRoundTrips) {
  const TelemetryFrame f = sample_frame();
  auto back = deserialize_telemetry_frame(serialize_telemetry_frame(f));
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(*back, f);
}

TEST(TelemetryCodec, EveryPrefixIsATypedError) {
  const Bytes wire = serialize_telemetry_frame(sample_frame());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(),
                       wire.begin() + static_cast<std::ptrdiff_t>(len));
    auto r = deserialize_telemetry_frame(prefix);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
  // Trailing garbage is also rejected: the frame is exactly delimited.
  Bytes trailing = wire;
  trailing.push_back(0x00);
  EXPECT_FALSE(deserialize_telemetry_frame(trailing).ok());
}

TEST(TelemetryCodec, ByteFlipsNeverCrash) {
  const Bytes wire = serialize_telemetry_frame(sample_frame());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80},
                              std::uint8_t{0xFF}}) {
      Bytes mutated = wire;
      mutated[i] ^= flip;
      // A flip in a string body can be a valid alternate encoding; a
      // flip in a length or count must be a typed error. Either way:
      // total function, no UB, no unbounded allocation.
      auto r = deserialize_telemetry_frame(mutated);
      if (!r.ok()) EXPECT_FALSE(r.error().message.empty());
    }
  }
}

// --------------------------------------------------------------- sampler

TEST(TelemetrySampler, FirstFrameIsFullThenDeltas) {
  SimClock clock;
  NodeObs node("n0", clock, 1);
  node.registry.counter("a_total").inc(5);
  (void)node.registry.counter("idle_total");  // interned, never bumped
  node.registry.gauge("g").set(3);

  TelemetrySampler sampler(&node);
  const TelemetryFrame f0 = sampler.sample(100);
  EXPECT_EQ(f0.seq, 0u);
  // Frame 0 ships everything, zeros included, so the monitor learns the
  // node's full metric set up front.
  EXPECT_EQ(f0.counters.at("a_total"), 5u);
  EXPECT_EQ(f0.counters.at("idle_total"), 0u);
  EXPECT_EQ(f0.gauges.at("g"), 3);
  // Synthesized gauges always ride along.
  EXPECT_TRUE(f0.gauges.count("trace_active_spans"));
  EXPECT_TRUE(f0.gauges.count("obs_flight_events"));

  // Nothing moved: the next frame is just a header.
  const TelemetryFrame f1 = sampler.sample(200);
  EXPECT_EQ(f1.seq, 1u);
  EXPECT_TRUE(f1.counters.empty());
  EXPECT_TRUE(f1.gauges.empty());

  // Only the moved counter ships, as a delta.
  node.registry.counter("a_total").inc(2);
  node.registry.gauge("g").set(-1);
  const TelemetryFrame f2 = sampler.sample(300);
  EXPECT_EQ(f2.counters.size(), 1u);
  EXPECT_EQ(f2.counters.at("a_total"), 2u);
  EXPECT_EQ(f2.gauges.at("g"), -1);
}

TEST(TelemetrySampler, RegistryResetRebaselines) {
  SimClock clock;
  NodeObs node("n0", clock, 1);
  node.registry.counter("a_total").inc(10);
  TelemetrySampler sampler(&node);
  (void)sampler.sample(1);

  node.registry.reset();
  node.registry.counter("a_total").inc(4);
  const TelemetryFrame f = sampler.sample(2);
  // Shrunk counter: ship the full value, never underflow.
  EXPECT_EQ(f.counters.at("a_total"), 4u);
}

// --------------------------------------------------------------- monitor

TEST(TelemetryMonitor, AccumulatesDeltasAndRejectsOutOfSequence) {
  TelemetryMonitor monitor({.window_cycles = 100, .ring_capacity = 4});
  TelemetryFrame f;
  f.node = "n0";
  f.seq = 0;
  f.at_cycles = 50;
  f.counters["c_total"] = 3;
  ASSERT_TRUE(monitor.ingest(f).ok());
  f.seq = 1;
  f.at_cycles = 150;
  f.counters["c_total"] = 4;
  ASSERT_TRUE(monitor.ingest(f).ok());
  EXPECT_EQ(monitor.counter_value("n0", "c_total"), 7u);
  EXPECT_EQ(monitor.frames_ingested(), 2u);

  // Replay and gap both drop with a typed error.
  EXPECT_FALSE(monitor.ingest(f).ok());
  f.seq = 5;
  EXPECT_FALSE(monitor.ingest(f).ok());
  EXPECT_EQ(monitor.frames_dropped(), 2u);
  EXPECT_EQ(monitor.counter_value("n0", "c_total"), 7u);
}

TEST(TelemetryMonitor, StragglerDetectorAlertsOnceWithDedup) {
  TelemetryMonitor monitor;
  monitor.add_detector(
      std::make_unique<StragglerDriftDetector>("tasks_total", 2, 2));
  std::vector<Alert> hooked;
  monitor.set_on_alert([&](const Alert& a) { hooked.push_back(a); });

  const auto feed = [&](const std::string& node, std::uint64_t seq,
                        std::uint64_t tasks_delta) {
    TelemetryFrame f;
    f.node = node;
    f.seq = seq;
    f.at_cycles = 10 * (seq + 1);
    f.counters["tasks_total"] = tasks_delta;
    ASSERT_TRUE(monitor.ingest(f).ok());
  };

  // Round 0: everyone at zero — no alert (median below min_progress).
  feed("fast-a", 0, 0);
  feed("fast-b", 0, 0);
  feed("slow", 0, 0);
  EXPECT_TRUE(monitor.alerts().empty());

  // Fast nodes reach 3 while slow stays at 0: lag 3 >= 2, median 3 >= 2.
  feed("fast-a", 1, 3);
  feed("fast-b", 1, 3);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  const Alert& alert = monitor.alerts()[0];
  EXPECT_EQ(alert.detector, "straggler_drift");
  EXPECT_EQ(alert.node, "slow");
  EXPECT_EQ(alert.metric, "tasks_total");
  EXPECT_EQ(alert.value, 0);
  EXPECT_EQ(alert.seq, 0u);
  ASSERT_EQ(hooked.size(), 1u);
  EXPECT_EQ(hooked[0], alert);

  // The straggler keeps lagging across more frames: still one alert.
  feed("fast-a", 2, 3);
  feed("fast-b", 2, 3);
  feed("slow", 1, 0);
  EXPECT_EQ(monitor.alerts().size(), 1u);
}

TEST(TelemetryMonitor, FaultStormDetectorFiresOnWindowBurst) {
  TelemetryMonitor monitor({.window_cycles = 100, .ring_capacity = 8});
  monitor.add_detector(make_fault_storm_detector(100, 10));

  TelemetryFrame f;
  f.node = "n0";
  f.seq = 0;
  f.at_cycles = 10;
  f.counters["net_flow_nacks_sent_total"] = 4;
  ASSERT_TRUE(monitor.ingest(f).ok());
  EXPECT_TRUE(monitor.alerts().empty());

  // Same window: 4 NACKs + 7 retransmits = 11 >= 10 — storm.
  f.seq = 1;
  f.at_cycles = 60;
  f.counters.clear();
  f.counters["net_flow_retransmits_total"] = 7;
  ASSERT_TRUE(monitor.ingest(f).ok());
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].detector, "fault_storm");
}

TEST(TelemetryMonitor, TimelineJsonIsStable) {
  TelemetryMonitor monitor({.window_cycles = 100, .ring_capacity = 4});
  TelemetryFrame f;
  f.node = "n0";
  f.seq = 0;
  f.at_cycles = 42;
  f.counters["c_total"] = 1;
  f.gauges["g"] = -5;
  ASSERT_TRUE(monitor.ingest(f).ok());

  const std::string json = monitor.timeline_json();
  EXPECT_NE(json.find("\"schema\":\"securecloud.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"node\":\"n0\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_EQ(json, monitor.timeline_json());  // pure function of state
}

// ----------------------------------------- distributed chaos determinism

std::vector<bigdata::KeyValue> word_count_map(ByteView record) {
  std::vector<bigdata::KeyValue> pairs;
  std::string word;
  for (std::uint8_t c : record) {
    if (c == ' ') {
      if (!word.empty()) pairs.push_back({word, 1.0});
      word.clear();
    } else {
      word += static_cast<char>(c);
    }
  }
  if (!word.empty()) pairs.push_back({word, 1.0});
  return pairs;
}

double sum_reduce(const std::string&, const std::vector<double>& values) {
  double total = 0;
  for (double v : values) total += v;
  return total;
}

struct TelemetryRun {
  bool ok = false;
  std::string timeline;
  std::string dashboard;
  std::vector<Alert> alerts;
  std::size_t postmortems = 0;
  std::size_t straggler_flight_events = 0;
};

// One full telemetry-armed job: worker-1 carries a 4x compute skew, and
// with_faults arms loss+reorder chaos after setup.
TelemetryRun run_telemetry_job(std::uint64_t seed, std::size_t threads,
                               bool with_faults) {
  SimClock clock;
  net::Fabric fabric(clock);
  FaultInjector faults(seed, &clock);
  sgx::AttestationService service;

  bigdata::DistributedMapReduceConfig config;
  config.num_workers = 3;
  config.num_reducers = 4;
  config.map_compute_ns_per_record = 1'000'000;
  config.telemetry.enabled = true;
  config.telemetry.interval_ns = 250'000;
  bigdata::DistributedMapReduce driver(fabric, config);
  driver.enable_cluster_obs();
  if (!driver.setup(service).ok()) return {};

  (void)fabric.set_compute_skew(driver.worker_node(1), 4);
  fabric.set_fault_injector(&faults);
  if (with_faults) {
    faults.arm(FaultKind::kNetLoss, FaultArm{.probability = 0.25, .max_fires = 20});
    faults.arm(FaultKind::kNetReorder,
               FaultArm{.probability = 0.2, .max_fires = 12});
  }

  std::vector<std::vector<Bytes>> encrypted;
  for (int p = 0; p < 9; ++p) {
    const std::string text = "telemetry chaos partition " + std::to_string(p);
    encrypted.push_back(
        driver.encrypt_partition({Bytes(text.begin(), text.end())}));
  }

  common::ThreadPool pool(threads);
  driver.set_pool(threads <= 1 ? nullptr : &pool);
  auto result = driver.run(encrypted, word_count_map, sum_reduce);
  if (!result.ok()) return {};

  TelemetryRun out;
  out.ok = true;
  out.timeline = driver.telemetry_monitor()->timeline_json();
  out.dashboard = driver.telemetry_monitor()->dashboard_text();
  out.alerts = driver.telemetry_monitor()->alerts();
  out.postmortems = driver.alert_postmortems().size();
  if (auto it = driver.alert_postmortems().find("worker-1");
      it != driver.alert_postmortems().end()) {
    out.straggler_flight_events = it->second.flight.size();
  }
  return out;
}

// Satellite: the injected compute-skew straggler raises exactly one
// straggler alert naming the slow node, and the alert's postmortem pull
// returns that node's flight ring while the job is still running.
TEST(TelemetryCluster, StragglerAlertNamesSlowNodeAndPullsFlightRing) {
  const TelemetryRun run = run_telemetry_job(0xD1A6, 1, /*with_faults=*/false);
  ASSERT_TRUE(run.ok);

  std::size_t straggler_alerts = 0;
  for (const Alert& a : run.alerts) {
    if (a.detector != "straggler_drift") continue;
    ++straggler_alerts;
    EXPECT_EQ(a.node, "worker-1");
    EXPECT_EQ(a.metric, "dist_worker_tasks_done_total");
  }
  EXPECT_EQ(straggler_alerts, 1u);
  EXPECT_GE(run.postmortems, 1u);
  EXPECT_GE(run.straggler_flight_events, 1u);
}

// Tentpole acceptance: for a fixed seed, the exported timeline, the
// dashboard, and the alert sequence are bit-identical at 1 vs 8 pool
// threads and across repeats — with loss/reorder chaos armed.
TEST(TelemetryCluster, ChaosTimelineIsThreadCountAndRepeatInvariant) {
  const std::uint64_t kSeed = 0xBEEF;
  const TelemetryRun t1 = run_telemetry_job(kSeed, 1, /*with_faults=*/true);
  const TelemetryRun t8 = run_telemetry_job(kSeed, 8, /*with_faults=*/true);
  const TelemetryRun again = run_telemetry_job(kSeed, 8, /*with_faults=*/true);
  ASSERT_TRUE(t1.ok);
  ASSERT_TRUE(t8.ok);
  ASSERT_TRUE(again.ok);

  EXPECT_FALSE(t1.timeline.empty());
  EXPECT_EQ(t1.timeline, t8.timeline);
  EXPECT_EQ(t8.timeline, again.timeline);
  EXPECT_EQ(t1.dashboard, t8.dashboard);
  EXPECT_EQ(t8.dashboard, again.dashboard);
  EXPECT_EQ(t1.alerts, t8.alerts);
  EXPECT_EQ(t8.alerts, again.alerts);

  // The chaos run still catches the planted straggler.
  bool named = false;
  for (const Alert& a : t1.alerts) {
    if (a.detector == "straggler_drift" && a.node == "worker-1") named = true;
  }
  EXPECT_TRUE(named);
}

// -------------------------------------------------- streams pipeline tap

TEST(TelemetryStreams, PipelineStagesStreamFramesDeterministically) {
  const auto run_once = [](std::size_t threads) {
    SimClock clock;
    net::Fabric fabric(clock);
    sgx::AttestationService service;

    std::vector<streams::Record> records;
    for (int i = 0; i < 200; ++i) {
      streams::Record r;
      r.key = "k" + std::to_string(i % 7);
      r.timestamp_s = static_cast<std::uint64_t>(i);
      r.value = static_cast<double>(i);
      records.push_back(std::move(r));
    }
    auto state = std::make_shared<std::pair<std::vector<streams::Record>,
                                            std::size_t>>(std::move(records),
                                                          0);
    std::size_t delivered = 0;
    auto stages =
        streams::PipelineBuilder()
            .source("src",
                    [state]() -> std::optional<streams::Record> {
                      if (state->second >= state->first.size())
                        return std::nullopt;
                      return state->first[state->second++];
                    })
            .map("scale",
                 [](const streams::Record& r) {
                   streams::Record out = r;
                   out.value *= 2;
                   return out;
                 })
            .sink("snk",
                  [&delivered](const streams::Record&, std::uint64_t) {
                    ++delivered;
                  })
            .build();
    EXPECT_TRUE(stages.ok());

    streams::Pipeline pipeline(fabric, std::move(*stages), {});
    common::ThreadPool pool(threads);
    if (threads > 1) pipeline.set_pool(&pool);
    EXPECT_TRUE(pipeline.setup(service).ok());

    TelemetryMonitor monitor({.window_cycles = 500'000, .ring_capacity = 32});
    EXPECT_TRUE(pipeline.enable_telemetry(&monitor, 100'000).ok());
    EXPECT_TRUE(pipeline.run().ok());
    EXPECT_EQ(delivered, 200u);
    EXPECT_GT(monitor.frames_ingested(), 0u);
    return monitor.timeline_json();
  };

  const std::string one = run_once(1);
  const std::string eight = run_once(8);
  const std::string repeat = run_once(8);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(eight, repeat);
}

TEST(TelemetryStreams, EnableTelemetryValidatesPreconditions) {
  SimClock clock;
  net::Fabric fabric(clock);
  sgx::AttestationService service;
  auto stages = streams::PipelineBuilder()
                    .source("s",
                            []() -> std::optional<streams::Record> {
                              return std::nullopt;
                            })
                    .sink("k", [](const streams::Record&, std::uint64_t) {})
                    .build();
  ASSERT_TRUE(stages.ok());
  streams::Pipeline pipeline(fabric, std::move(*stages), {});

  TelemetryMonitor monitor;
  // Before setup: rejected.
  EXPECT_FALSE(pipeline.enable_telemetry(&monitor, 1000).ok());
  ASSERT_TRUE(pipeline.setup(service).ok());
  // Null monitor / zero interval / zero cap: rejected.
  EXPECT_FALSE(pipeline.enable_telemetry(nullptr, 1000).ok());
  EXPECT_FALSE(pipeline.enable_telemetry(&monitor, 0).ok());
  EXPECT_FALSE(pipeline.enable_telemetry(&monitor, 1000, 0).ok());
  EXPECT_TRUE(pipeline.enable_telemetry(&monitor, 1000).ok());
}

// ------------------------------------------------------------ TSan hammer

// The sampling surface that is genuinely concurrent: pool threads bump
// a node's sharded registry while the serial loop samples and ingests.
// Run under scripts/tsan_check.sh.
TEST(TelemetryHammer, ConcurrentBumpsDuringSamplingAreRaceFree) {
  SimClock clock;
  NodeObs node("hammer", clock, 1);
  TelemetrySampler sampler(&node);
  TelemetryMonitor monitor({.window_cycles = 64, .ring_capacity = 16});

  std::atomic<bool> stop{false};
  std::vector<std::thread> bumpers;
  for (int t = 0; t < 4; ++t) {
    bumpers.emplace_back([&node, &stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        node.registry.counter("hammer_ops_total").inc();
        node.registry.gauge("hammer_gauge").set(t);
        node.registry.histogram("hammer_hist").observe(
            static_cast<std::uint64_t>(t) * 100 + 1);
      }
    });
  }

  std::uint64_t total_delta = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const TelemetryFrame frame = sampler.sample(i * 10);
    auto parsed =
        deserialize_telemetry_frame(serialize_telemetry_frame(frame));
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(monitor.ingest(*parsed).ok());
    if (const auto it = frame.counters.find("hammer_ops_total");
        it != frame.counters.end()) {
      total_delta += it->second;
    }
  }
  stop.store(true);
  for (auto& th : bumpers) th.join();

  // The cumulative fold equals the sum of the deltas we shipped, and a
  // final sample catches everything the bumpers wrote before joining.
  EXPECT_EQ(monitor.counter_value("hammer", "hammer_ops_total"), total_delta);
  const TelemetryFrame last = sampler.sample(1 << 20);
  const std::uint64_t tail =
      last.counters.count("hammer_ops_total")
          ? last.counters.at("hammer_ops_total")
          : 0;
  EXPECT_EQ(total_delta + tail,
            node.registry.counter("hammer_ops_total").value());
  EXPECT_EQ(monitor.frames_ingested(), 500u);
}

}  // namespace
}  // namespace securecloud::obs
