// Work-stealing pool tests (scheduling, stealing, exceptions, nesting)
// plus the determinism contract of every pooled path: SecureMapReduce,
// ScbrRouter::publish_batch, and the secure transfer pipeline must
// produce bit-identical results at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "bigdata/mapreduce.hpp"
#include "bigdata/transfer.hpp"
#include "common/thread_pool.hpp"
#include "scbr/poset_engine.hpp"
#include "scbr/router.hpp"
#include "scbr/workload.hpp"
#include "sgx/platform.hpp"

namespace securecloud {
namespace {

using common::ThreadPool;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, GracefulShutdownDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(done.load(), 500);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i, std::size_t j) {
    for (; i < j; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(0, 1, [&](std::size_t i, std::size_t j) {
    total.fetch_add(static_cast<int>(j - i));
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> items(1'000);
  std::iota(items.begin(), items.end(), 0);
  const auto squares = pool.parallel_map(items, [](const int& x) { return x * x; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, StealsFromLoadedWorker) {
  ThreadPool pool(4);
  // Funnel all work through one worker's deque: a task submitted from a
  // worker thread lands on that worker's own deque. The submitter then
  // blocks its worker until every child ran, so the children can only
  // ever execute via steals by the other three workers.
  std::atomic<int> done{0};
  pool.submit([&] {
    for (int i = 0; i < 128; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    while (done.load() < 128) std::this_thread::yield();
  });
  while (done.load() < 128) std::this_thread::yield();
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1'000,
                        [](std::size_t i, std::size_t) {
                          if (i <= 500 && 500 < i + 1) {
                            throw std::runtime_error("grain failed");
                          }
                        },
                        1),
      std::runtime_error);
  // The pool survives and stays usable after a failed parallel_for.
  std::atomic<int> done{0};
  pool.parallel_for(0, 64, [&](std::size_t i, std::size_t j) {
    done.fetch_add(static_cast<int>(j - i));
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> outer_sums(8);
  pool.parallel_for(0, outer_sums.size(), [&](std::size_t a, std::size_t b) {
    for (; a < b; ++a) {
      pool.parallel_for(0, 100, [&, a](std::size_t i, std::size_t j) {
        outer_sums[a].fetch_add(static_cast<int>(j - i));
      });
    }
  });
  for (const auto& s : outer_sums) EXPECT_EQ(s.load(), 100);
}

TEST(ThreadPool, RunIndexedInlineWithoutPool) {
  std::vector<int> hits(64, 0);
  common::run_indexed(nullptr, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// ------------------------------------------------- MapReduce determinism

namespace mr {

using bigdata::KeyValue;

std::vector<std::vector<Bytes>> make_plaintext_partitions() {
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  std::vector<std::vector<Bytes>> parts;
  std::uint64_t lcg = 3;
  for (int p = 0; p < 12; ++p) {
    std::vector<Bytes> records;
    for (int r = 0; r < 20; ++r) {
      std::string text;
      for (int w = 0; w < 10; ++w) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        text += words[(lcg >> 33) % 5];
        text += ' ';
      }
      records.push_back(to_bytes(text));
    }
    parts.push_back(std::move(records));
  }
  return parts;
}

std::vector<KeyValue> word_count_map(ByteView record) {
  std::vector<KeyValue> out;
  std::string word;
  for (std::uint8_t c : record) {
    if (c == ' ') {
      if (!word.empty()) out.push_back({word, 1.0});
      word.clear();
    } else {
      word += static_cast<char>(c);
    }
  }
  if (!word.empty()) out.push_back({word, 1.0});
  return out;
}

double sum_reduce(const std::string&, const std::vector<double>& vs) {
  double sum = 0;
  for (double v : vs) sum += v;
  return sum;
}

struct JobRun {
  std::map<std::string, double> output;
  bigdata::JobStats stats;
  std::uint64_t platform_cycles = 0;
  std::vector<std::vector<Bytes>> encrypted;
};

JobRun run_with(ThreadPool* pool, bool combiner) {
  sgx::Platform platform;
  crypto::DeterministicEntropy entropy(17);
  bigdata::SecureMapReduce job(platform, entropy);
  job.set_pool(pool);

  JobRun run;
  for (const auto& part : make_plaintext_partitions()) {
    run.encrypted.push_back(job.encrypt_partition(part));
  }
  bigdata::MapReduceConfig config;
  config.num_mappers = 4;
  config.num_reducers = 3;
  config.enable_combiner = combiner;
  auto result = job.run(config, run.encrypted, word_count_map, sum_reduce);
  EXPECT_TRUE(result.ok());
  if (result.ok()) {
    run.output = result->output;
    run.stats = result->stats;
  }
  run.platform_cycles = platform.clock().cycles();
  return run;
}

}  // namespace mr

TEST(ParallelMapReduce, EightThreadRunIdenticalToSequential) {
  for (const bool combiner : {false, true}) {
    const mr::JobRun seq = mr::run_with(nullptr, combiner);
    ThreadPool pool(8);
    const mr::JobRun par = mr::run_with(&pool, combiner);

    EXPECT_EQ(par.encrypted, seq.encrypted);  // bulk seal path, bit-exact
    EXPECT_EQ(par.output, seq.output);
    EXPECT_EQ(par.stats.input_records, seq.stats.input_records);
    EXPECT_EQ(par.stats.intermediate_pairs, seq.stats.intermediate_pairs);
    EXPECT_EQ(par.stats.shuffle_bytes, seq.stats.shuffle_bytes);
    EXPECT_EQ(par.stats.enclave_transitions, seq.stats.enclave_transitions);
    EXPECT_EQ(par.stats.simulated_cycles, seq.stats.simulated_cycles);
    EXPECT_EQ(par.platform_cycles, seq.platform_cycles);
  }
}

TEST(ParallelMapReduce, TamperedRecordFailsAtAnyThreadCount) {
  sgx::Platform platform;
  crypto::DeterministicEntropy entropy(17);
  bigdata::SecureMapReduce job(platform, entropy);
  auto parts = mr::make_plaintext_partitions();
  std::vector<std::vector<Bytes>> encrypted;
  for (const auto& part : parts) encrypted.push_back(job.encrypt_partition(part));
  encrypted[5][3][8] ^= 0x40;

  bigdata::MapReduceConfig config;
  config.num_mappers = 4;
  config.num_reducers = 3;
  ThreadPool pool(8);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    job.set_pool(p);
    auto result = job.run(config, encrypted, mr::word_count_map, mr::sum_reduce);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kIntegrityViolation);
  }
}

// ------------------------------------------------ publish_batch determinism

namespace pb {

struct RouterRun {
  std::vector<std::vector<scbr::Delivery>> deliveries;
  scbr::RouterMetrics metrics;
  std::uint64_t platform_cycles = 0;
};

/// Builds an identical router from fixed seeds and pushes the same batch
/// through it: `mode` 0 = publish() loop, 1 = publish_batch inline,
/// 2 = publish_batch on an 8-thread pool.
RouterRun run_router(int mode) {
  sgx::Platform platform;
  sgx::AttestationService attestation;
  platform.provision(attestation);
  crypto::DeterministicEntropy entropy(55);
  scbr::KeyService keys(attestation, entropy);

  sgx::EnclaveImage image;
  image.name = "scbr-router";
  image.code = to_bytes("router-binary");
  crypto::DeterministicEntropy signer(808);
  sign_image(image, crypto::ed25519_keypair(signer.array<32>()));
  auto enclave = platform.create_enclave(image);
  EXPECT_TRUE(enclave.ok());
  keys.authorize_router((*enclave)->mrenclave());

  auto publisher = keys.register_client("publisher");
  std::vector<scbr::ClientCredentials> subs;
  for (int i = 0; i < 8; ++i) {
    subs.push_back(keys.register_client("sub-" + std::to_string(i)));
  }
  scbr::ScbrRouter router(**enclave, std::make_unique<scbr::PosetEngine>());
  EXPECT_TRUE(router.provision(keys).ok());

  scbr::WorkloadConfig wl;
  wl.attribute_universe = 6;
  wl.attributes_per_filter = 2;
  wl.value_range = 1'000;
  wl.width_fraction = 0.4;
  wl.hierarchy_fraction = 0.5;
  scbr::ScbrWorkload workload(wl, 7);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto& owner = subs[i % subs.size()];
    EXPECT_TRUE(router
                    .subscribe(owner.name, encrypt_subscription(
                                               owner, workload.next_filter(), i + 1))
                    .ok());
  }

  std::vector<scbr::ScbrRouter::PublishRequest> batch;
  for (std::size_t i = 0; i < 48; ++i) {
    batch.push_back({publisher.name,
                     encrypt_publication(publisher, workload.next_event(), i + 1)});
  }
  // One corrupt publication mid-batch: it must fail in its own slot
  // without disturbing anything around it.
  batch[20].wire[batch[20].wire.size() / 2] ^= 0x01;

  RouterRun run;
  if (mode == 0) {
    for (const auto& req : batch) {
      auto r = router.publish(req.client, req.wire);
      run.deliveries.push_back(r.ok() ? *r : std::vector<scbr::Delivery>{});
    }
  } else {
    ThreadPool pool(8);
    auto results = router.publish_batch(batch, mode == 2 ? &pool : nullptr);
    for (auto& r : results) {
      run.deliveries.push_back(r.ok() ? *r : std::vector<scbr::Delivery>{});
    }
  }
  run.metrics = router.metrics();
  run.platform_cycles = platform.clock().cycles();
  return run;
}

bool same_deliveries(const RouterRun& a, const RouterRun& b) {
  if (a.deliveries.size() != b.deliveries.size()) return false;
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    if (a.deliveries[i].size() != b.deliveries[i].size()) return false;
    for (std::size_t d = 0; d < a.deliveries[i].size(); ++d) {
      const auto& x = a.deliveries[i][d];
      const auto& y = b.deliveries[i][d];
      if (x.subscriber != y.subscriber || x.subscription != y.subscription ||
          x.wire != y.wire) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace pb

TEST(PublishBatch, MatchesSequentialPublishBitForBit) {
  const pb::RouterRun loop = pb::run_router(0);
  const pb::RouterRun inline_batch = pb::run_router(1);
  const pb::RouterRun pooled_batch = pb::run_router(2);

  EXPECT_TRUE(pb::same_deliveries(loop, inline_batch));
  EXPECT_TRUE(pb::same_deliveries(loop, pooled_batch));
  for (const pb::RouterRun* run : {&inline_batch, &pooled_batch}) {
    EXPECT_EQ(run->metrics.publications, loop.metrics.publications);
    EXPECT_EQ(run->metrics.deliveries, loop.metrics.deliveries);
    EXPECT_EQ(run->metrics.auth_failures, loop.metrics.auth_failures);
    EXPECT_EQ(run->metrics.replays_blocked, loop.metrics.replays_blocked);
    EXPECT_EQ(run->platform_cycles, loop.platform_cycles);
  }
  EXPECT_GT(loop.metrics.auth_failures, 0u);  // the corrupt slot registered
}

// --------------------------------------------------- transfer determinism

TEST(ParallelTransfer, PooledSendAndReceiveMatchSequential) {
  Bytes payload;
  std::uint64_t lcg = 23;
  while (payload.size() < 700'000) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    payload.insert(payload.end(), 1 + ((lcg >> 41) % 6),
                   static_cast<std::uint8_t>(lcg >> 33));
  }

  bigdata::SecureTransferSender seq_sender(Bytes(16, 0x31), 9);
  const auto seq_chunks = seq_sender.send(payload);

  ThreadPool pool(8);
  bigdata::SecureTransferSender par_sender(Bytes(16, 0x31), 9);
  par_sender.set_pool(&pool);
  const auto par_chunks = par_sender.send(payload);

  EXPECT_EQ(par_chunks, seq_chunks);
  EXPECT_EQ(par_sender.stats().wire_bytes, seq_sender.stats().wire_bytes);
  EXPECT_EQ(par_sender.stats().chunks, seq_sender.stats().chunks);

  // receive() loop and pooled receive_all agree.
  bigdata::SecureTransferReceiver loop_receiver(Bytes(16, 0x31), 9);
  Bytes loop_payload;
  for (const auto& c : seq_chunks) {
    auto got = loop_receiver.receive(c);
    ASSERT_TRUE(got.ok());
    if (got->has_value()) loop_payload = **got;
  }
  bigdata::SecureTransferReceiver batch_receiver(Bytes(16, 0x31), 9);
  auto batch_payloads = batch_receiver.receive_all(par_chunks, &pool);
  ASSERT_TRUE(batch_payloads.ok());
  ASSERT_EQ(batch_payloads->size(), 1u);
  EXPECT_EQ((*batch_payloads)[0], loop_payload);
  EXPECT_EQ(loop_payload, payload);
}

TEST(ParallelTransfer, ReceiveAllRejectsTamperAndReorder) {
  // Noise, so RLE cannot collapse the payload below several chunks.
  Bytes payload(300'000);
  std::uint64_t lcg = 41;
  for (auto& b : payload) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<std::uint8_t>(lcg >> 33);
  }
  bigdata::SecureTransferSender sender(Bytes(16, 0x31), 3);
  auto chunks = sender.send(payload);
  ASSERT_GT(chunks.size(), 2u);

  ThreadPool pool(4);
  {
    auto tampered = chunks;
    tampered[1][tampered[1].size() - 1] ^= 0x80;
    bigdata::SecureTransferReceiver receiver(Bytes(16, 0x31), 3);
    auto r = receiver.receive_all(tampered, &pool);
    EXPECT_FALSE(r.ok());
  }
  {
    auto reordered = chunks;
    std::swap(reordered[0], reordered[1]);
    bigdata::SecureTransferReceiver receiver(Bytes(16, 0x31), 3);
    auto r = receiver.receive_all(reordered, &pool);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kProtocolError);
  }
}

}  // namespace
}  // namespace securecloud
